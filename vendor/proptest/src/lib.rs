//! Vendored, offline subset of the `proptest` API.
//!
//! The build environment has no registry access, so the workspace ships the
//! slice of proptest it actually uses: the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_filter`, range and tuple strategies, `Just`, `prop_oneof!`,
//! `proptest::collection::{vec, btree_set}`, and the `proptest!` test macro.
//!
//! Differences from upstream, acceptable for this workspace: cases are driven
//! by one deterministic RNG (reproducible in CI, no failure-persistence
//! files), and there is no shrinking — a failing case reports the assertion
//! with its concrete values but not a minimized counterexample.

#![forbid(unsafe_code)]

/// Test-runner configuration and RNG.
pub mod test_runner {
    use rand::{rngs::StdRng, RngCore, SeedableRng};

    /// Configuration accepted by `proptest! { #![proptest_config(...)] ... }`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Returns a config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic RNG driving strategy generation.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// A fixed-seed RNG so every test run sees the same case sequence.
        pub fn deterministic() -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(0x7e57_ca5e_0000_0001),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Rejects generated values failing `pred`, retrying.
        fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }

        /// Type-erases this strategy (needed to mix types in `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy producing a clone of one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive values: {}",
                self.whence
            );
        }
    }

    /// Uniform choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident . $n:tt),+)),+ $(,)?) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size bound for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.min..=self.max_inclusive)
        }
    }

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` targeting a size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets of values drawn from `element`.
    ///
    /// Best-effort sizing: duplicates collapse, so the set may come out
    /// smaller than the drawn target if the element space is tight.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(20) + 20 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The glob import used by every property test file.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniformly chooses between strategies (which may be distinct types
/// producing the same `Value`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn` runs its body over `config.cases`
/// random cases drawn from the argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::deterministic();
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn filter_retries_until_pass() {
        let mut rng = TestRng::deterministic();
        let s = (0u32..100).prop_filter("even only", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn oneof_covers_every_option() {
        let mut rng = TestRng::deterministic();
        let s = prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|v| v)];
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3] && seen[4]);
    }

    #[test]
    fn collection_sizes_respect_bounds() {
        let mut rng = TestRng::deterministic();
        let vs = crate::collection::vec(0u8..4, 1..40);
        for _ in 0..50 {
            let v = vs.generate(&mut rng);
            assert!((1..40).contains(&v.len()));
        }
        let ss = crate::collection::btree_set(0usize..11, 0..=5);
        for _ in 0..50 {
            let s = ss.generate(&mut rng);
            assert!(s.len() <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: tuple strategies and assertions work.
        fn macro_smoke(a in 0u8..4, pair in (0usize..5, 0.0f64..1.0)) {
            prop_assert!(a < 4);
            prop_assert!(pair.0 < 5);
            prop_assert!((0.0..1.0).contains(&pair.1));
        }
    }
}
