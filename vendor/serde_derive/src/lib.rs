//! Derive macros for the vendored `serde` subset.
//!
//! The build environment has no registry access, so these derives are written
//! against `proc_macro` directly (no `syn`/`quote`). They support the shapes
//! this workspace actually derives on: non-generic structs (named, tuple,
//! unit) and non-generic enums with unit, tuple, and struct variants. Enum
//! variants are encoded as a `u32` declaration-order tag followed by the
//! fields in order; struct fields are encoded in declaration order.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field shapes of a struct or enum variant.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips `#[...]` attributes (including doc comments) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Counts top-level (angle-depth-0) comma-separated items in a field list.
///
/// Parens/brackets/braces arrive as opaque `Group`s, so only `<`/`>` need
/// depth tracking.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut pending = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if pending {
                    count += 1;
                }
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        count += 1;
    }
    count
}

/// Extracts field names from a named-field list (`a: T, pub b: U, ...`).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "vendored serde_derive: expected field name, got {:?}",
                tokens[i]
            );
        };
        names.push(name.to_string());
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("vendored serde_derive: expected ':' after field name, got {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

fn parse_fields_group(tokens: &[TokenTree], i: usize) -> (Fields, usize) {
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            (Fields::Named(parse_named_fields(g.stream())), i + 1)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            (Fields::Tuple(count_tuple_fields(g.stream())), i + 1)
        }
        _ => (Fields::Unit, i),
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "vendored serde_derive: expected variant name, got {:?}",
                tokens[i]
            );
        };
        let name = name.to_string();
        let (fields, next) = parse_fields_group(&tokens, i + 1);
        i = next;
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("vendored serde_derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!(
            "vendored serde_derive: expected type name, got {:?}",
            tokens[i]
        );
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive: generic types are not supported (type `{name}`)");
        }
    }
    match keyword.as_str() {
        "struct" => {
            let (fields, _) = parse_fields_group(&tokens, i);
            Item::Struct { name, fields }
        }
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("vendored serde_derive: expected enum body, got {other:?}"),
        },
        other => panic!("vendored serde_derive: cannot derive for `{other}` items"),
    }
}

/// Derives `serde::Serialize` (vendored subset).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    match &item {
        Item::Struct { name, fields } => {
            let mut body = String::new();
            match fields {
                Fields::Unit => {}
                Fields::Named(names) => {
                    for f in names {
                        body.push_str(&format!("::serde::Serialize::serialize(&self.{f}, _s);"));
                    }
                }
                Fields::Tuple(n) => {
                    for idx in 0..*n {
                        body.push_str(&format!("::serde::Serialize::serialize(&self.{idx}, _s);"));
                    }
                }
            }
            out.push_str(&format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self, _s: &mut ::serde::Serializer) {{ {body} }}\n\
                 }}\n"
            ));
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (tag, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => {{ _s.write_u32({tag}u32); }}\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("_f{k}")).collect();
                        let mut body = format!("_s.write_u32({tag}u32);");
                        for b in &binds {
                            body.push_str(&format!("::serde::Serialize::serialize({b}, _s);"));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{ {body} }}\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let mut body = format!("_s.write_u32({tag}u32);");
                        for f in fs {
                            body.push_str(&format!("::serde::Serialize::serialize({f}, _s);"));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{ {body} }}\n",
                            fs.join(", ")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self, _s: &mut ::serde::Serializer) {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}\n"
            ));
        }
    }
    out.parse()
        .expect("vendored serde_derive: generated code must parse")
}

/// Derives `serde::Deserialize` (vendored subset).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
            Fields::Named(names) => {
                let inits: Vec<String> = names
                    .iter()
                    .map(|f| format!("{f}: ::serde::Deserialize::deserialize(_d)?"))
                    .collect();
                format!(
                    "::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|_| "::serde::Deserialize::deserialize(_d)?".to_string())
                    .collect();
                format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
            }
        },
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (tag, v) in variants.iter().enumerate() {
                let vname = &v.name;
                let ctor = match &v.fields {
                    Fields::Unit => format!("{name}::{vname}"),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|_| "::serde::Deserialize::deserialize(_d)?".to_string())
                            .collect();
                        format!("{name}::{vname}({})", inits.join(", "))
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| format!("{f}: ::serde::Deserialize::deserialize(_d)?"))
                            .collect();
                        format!("{name}::{vname} {{ {} }}", inits.join(", "))
                    }
                };
                arms.push_str(&format!("{tag}u32 => ::std::result::Result::Ok({ctor}),\n"));
            }
            format!(
                "match _d.read_u32()? {{\n\
                     {arms}\
                     _ => ::std::result::Result::Err(::serde::Error::new(\
                         \"invalid variant tag for {name}\")),\n\
                 }}"
            )
        }
    };
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(_d: &mut ::serde::Deserializer<'_>)\n\
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
    .parse()
    .expect("vendored serde_derive: generated code must parse")
}
