//! Vendored, offline subset of the `criterion` 0.5 API.
//!
//! The build environment has no registry access, so the workspace ships a
//! minimal harness exposing the API surface its benches use: groups,
//! `sample_size`, `throughput`, `bench_function` / `bench_with_input`, and
//! the `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical analysis it reports a simple mean wall-clock time per
//! iteration (and derived throughput) to stdout — enough to spot large
//! regressions from `cargo bench` without external dependencies.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// True when the harness was invoked as `cargo bench -- --test`: every
/// benchmark then runs a single smoke iteration (criterion's test mode),
/// which CI uses to verify benches still compile and execute without paying
/// for full timing runs.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the timed window.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Declares the units processed per iteration for throughput output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            iters: if test_mode() { 1 } else { self.sample_size },
            mean_ns: 0.0,
        };
        f(&mut b);
        if test_mode() {
            println!("{}/{}: ok (test mode, 1 iter)", self.name, id);
            return;
        }
        let mut line = format!(
            "{}/{}: {} /iter ({} iters)",
            self.name,
            id,
            format_ns(b.mean_ns),
            b.iters
        );
        if b.mean_ns > 0.0 {
            match self.throughput {
                Some(Throughput::Elements(n)) => {
                    line.push_str(&format!(", {:.0} elem/s", n as f64 / (b.mean_ns * 1e-9)));
                }
                Some(Throughput::Bytes(n)) => {
                    line.push_str(&format!(", {:.0} B/s", n as f64 / (b.mean_ns * 1e-9)));
                }
                None => {}
            }
        }
        println!("{line}");
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (output is emitted eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver (API parity with criterion's `Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Declares a function that runs each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures_exact_iter_count() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(7).throughput(Throughput::Elements(100));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // Timed iterations (7, or 1 under `-- --test`) plus 1 warm-up.
        let expected = if test_mode() { 2 } else { 8 };
        assert_eq!(calls, expected);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &n| {
            b.iter(|| n * n);
        });
    }
}
