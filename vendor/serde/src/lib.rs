//! Vendored, offline subset of the `serde` API.
//!
//! The build environment has no registry access, so the workspace ships a
//! minimal serde: the [`Serialize`] / [`Deserialize`] traits over a compact
//! little-endian binary format, plus a `derive` feature re-exporting the
//! companion `serde_derive` proc-macros. The wire format is NOT serde's data
//! model — it is a private, versionless binary encoding used only by this
//! workspace (e.g. `CellLibrary::save`/`load`). Floats round-trip exactly
//! (stored as IEEE-754 bits); integers are widened to 64 bits on the wire.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error produced when decoding malformed or truncated bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde decode error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Encoder writing the workspace's compact binary format.
#[derive(Default)]
pub struct Serializer {
    buf: Vec<u8>,
}

impl Serializer {
    /// Creates an empty serializer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes encoding and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one raw byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a 32-bit little-endian word (used for enum variant tags).
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a 64-bit little-endian word.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a 64-bit float as its IEEE-754 bit pattern (exact round-trip).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Writes a length-prefixed byte string.
    pub fn write_bytes(&mut self, v: &[u8]) {
        self.write_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

/// Decoder for the workspace's compact binary format.
pub struct Deserializer<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Deserializer<'a> {
    /// Creates a decoder over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Deserializer { buf: bytes, pos: 0 }
    }

    /// Returns true if every input byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Error::new("unexpected end of input"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one raw byte.
    pub fn read_u8(&mut self) -> Result<u8, Error> {
        Ok(self.take(1)?[0])
    }

    /// Reads a 32-bit little-endian word.
    pub fn read_u32(&mut self) -> Result<u32, Error> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a 64-bit little-endian word.
    pub fn read_u64(&mut self) -> Result<u64, Error> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an IEEE-754 bit pattern back into an `f64`.
    pub fn read_f64(&mut self) -> Result<f64, Error> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn read_bytes(&mut self) -> Result<Vec<u8>, Error> {
        let len = self.read_u64()?;
        let len = usize::try_from(len).map_err(|_| Error::new("length overflows usize"))?;
        Ok(self.take(len)?.to_vec())
    }
}

/// A type encodable to the workspace binary format.
pub trait Serialize {
    /// Appends this value's encoding to the serializer.
    fn serialize(&self, serializer: &mut Serializer);
}

/// A type decodable from the workspace binary format.
pub trait Deserialize: Sized {
    /// Decodes one value, advancing the deserializer.
    fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error>;
}

/// Deserialization helpers (API parity with `serde::de`).
pub mod de {
    pub use super::Error;

    /// A type deserializable without borrowing from the input.
    ///
    /// Our [`super::Deserialize`] has no input lifetime, so every
    /// deserializable type qualifies.
    pub trait DeserializeOwned: super::Deserialize {}

    impl<T: super::Deserialize> DeserializeOwned for T {}
}

/// Encodes a value to bytes.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut s = Serializer::new();
    value.serialize(&mut s);
    s.into_bytes()
}

/// Decodes a value from bytes, requiring all input to be consumed.
pub fn from_bytes<T: de::DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let mut d = Deserializer::new(bytes);
    let v = T::deserialize(&mut d)?;
    if !d.is_empty() {
        return Err(Error::new("trailing bytes after value"));
    }
    Ok(v)
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, serializer: &mut Serializer) {
                serializer.write_u64(*self as u64);
            }
        }
        impl Deserialize for $t {
            fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
                let v = deserializer.read_u64()?;
                <$t>::try_from(v).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, serializer: &mut Serializer) {
                serializer.write_u64((*self as i64) as u64);
            }
        }
        impl Deserialize for $t {
            fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
                let v = deserializer.read_u64()? as i64;
                <$t>::try_from(v).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.write_u8(*self as u8);
    }
}

impl Deserialize for bool {
    fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
        match deserializer.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(Error::new(format!("invalid bool byte {b}"))),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.write_f64(*self);
    }
}

impl Deserialize for f64 {
    fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
        deserializer.read_f64()
    }
}

impl Serialize for f32 {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.write_u32(self.to_bits());
    }
}

impl Deserialize for f32 {
    fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(f32::from_bits(deserializer.read_u32()?))
    }
}

impl Serialize for char {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.write_u32(*self as u32);
    }
}

impl Deserialize for char {
    fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
        char::from_u32(deserializer.read_u32()?).ok_or_else(|| Error::new("invalid char"))
    }
}

impl Serialize for String {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.write_bytes(self.as_bytes());
    }
}

impl Deserialize for String {
    fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
        String::from_utf8(deserializer.read_bytes()?).map_err(|_| Error::new("invalid utf-8"))
    }
}

impl Serialize for str {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.write_bytes(self.as_bytes());
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, serializer: &mut Serializer) {
        (**self).serialize(serializer);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self, serializer: &mut Serializer) {
        (**self).serialize(serializer);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize(deserializer)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, serializer: &mut Serializer) {
        match self {
            None => serializer.write_u8(0),
            Some(v) => {
                serializer.write_u8(1);
                v.serialize(serializer);
            }
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
        match deserializer.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(deserializer)?)),
            b => Err(Error::new(format!("invalid option tag {b}"))),
        }
    }
}

fn read_len(deserializer: &mut Deserializer<'_>) -> Result<usize, Error> {
    let len = deserializer.read_u64()?;
    usize::try_from(len).map_err(|_| Error::new("length overflows usize"))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.write_u64(self.len() as u64);
        for item in self {
            item.serialize(serializer);
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
        let len = read_len(deserializer)?;
        let mut out = Vec::new();
        for _ in 0..len {
            out.push(T::deserialize(deserializer)?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.write_u64(self.len() as u64);
        for item in self {
            item.serialize(serializer);
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, serializer: &mut Serializer) {
        for item in self {
            item.serialize(serializer);
        }
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::deserialize(deserializer)?);
        }
        out.try_into()
            .map_err(|_| Error::new("array length mismatch"))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.write_u64(self.len() as u64);
        for (k, v) in self {
            k.serialize(serializer);
            v.serialize(serializer);
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
        let len = read_len(deserializer)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::deserialize(deserializer)?;
            let v = V::deserialize(deserializer)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.write_u64(self.len() as u64);
        for item in self {
            item.serialize(serializer);
        }
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
        let len = read_len(deserializer)?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::deserialize(deserializer)?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self, serializer: &mut Serializer) {
        // Sort entries by encoded key so equal maps encode identically.
        let mut entries: Vec<(Vec<u8>, &V)> = self.iter().map(|(k, v)| (to_bytes(k), v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        serializer.write_u64(entries.len() as u64);
        for (kb, v) in entries {
            serializer.buf.extend_from_slice(&kb);
            v.serialize(serializer);
        }
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
        let len = read_len(deserializer)?;
        let mut out = HashMap::new();
        for _ in 0..len {
            let k = K::deserialize(deserializer)?;
            let v = V::deserialize(deserializer)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn serialize(&self, serializer: &mut Serializer) {
        let mut entries: Vec<Vec<u8>> = self.iter().map(|t| to_bytes(t)).collect();
        entries.sort();
        serializer.write_u64(entries.len() as u64);
        for e in entries {
            serializer.buf.extend_from_slice(&e);
        }
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
        let len = read_len(deserializer)?;
        let mut out = HashSet::new();
        for _ in 0..len {
            out.insert(T::deserialize(deserializer)?);
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self, serializer: &mut Serializer) {
                $(self.$n.serialize(serializer);)+
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
                Ok(($($t::deserialize(deserializer)?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

impl Serialize for () {
    fn serialize(&self, _serializer: &mut Serializer) {}
}

impl Deserialize for () {
    fn deserialize(_deserializer: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + de::DeserializeOwned + PartialEq + fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u64::MAX);
        round_trip(-5i32);
        round_trip(i64::MIN);
        round_trip(true);
        round_trip(3.75f64);
        round_trip(f64::NAN.to_bits()); // NaN via bits; direct NaN fails PartialEq
        round_trip(String::from("héllo"));
        round_trip('q');
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Some(vec![(1u32, 2u32), (3, 4)]));
        round_trip::<Option<f64>>(None);
        round_trip((1u8, -2i64, 0.5f64, String::from("x")));
        round_trip(BTreeMap::from([
            (1u32, "a".to_string()),
            (2, "b".to_string()),
        ]));
        round_trip(BTreeSet::from([3usize, 1, 4]));
        round_trip(HashMap::from([(7u64, 1.5f64)]));
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        let r: Result<Vec<u64>, Error> = from_bytes(&bytes[..bytes.len() - 1]);
        assert!(r.is_err());
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = to_bytes(&1u64);
        bytes.push(0);
        let r: Result<u64, Error> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn floats_are_bit_exact() {
        let v = 0.1f64 + 0.2;
        let back: f64 = from_bytes(&to_bytes(&v)).unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }
}
