//! Vendored, offline subset of the `parking_lot` 0.12 API.
//!
//! Thin wrappers over `std::sync` primitives with `parking_lot`'s ergonomics:
//! `lock()` returns the guard directly, there is no poisoning (a poisoned
//! `std` lock is transparently recovered), and [`Condvar::wait`] takes the
//! guard by `&mut` reference.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock (non-poisoning `lock()` like `parking_lot`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Always `Some` outside of `Condvar::wait`'s re-slotting window.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock (non-poisoning, like `parking_lot`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
