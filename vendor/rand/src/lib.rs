//! Vendored, offline subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so the workspace ships the
//! small slice of `rand` it actually uses: the [`Rng`] extension trait with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng`], and a deterministic
//! [`rngs::StdRng`] (xoshiro256** seeded through SplitMix64). The statistical
//! quality is adequate for the Monte-Carlo workloads here; the stream is NOT
//! compatible with upstream `rand`, which is acceptable because every consumer
//! seeds explicitly and asserts on statistics, not exact draws.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range a value can be drawn uniformly from ([`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, span)` via Lemire rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// User-facing random-value methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS-independent entropy (here: a hash of the
    /// current time, good enough for non-cryptographic workloads).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** with SplitMix64
    /// seed expansion.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Returns a fresh, time-seeded generator (API parity with `rand`).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&f));
            let k = rng.gen_range(1..16u8);
            assert!((1..16).contains(&k));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
