//! A universal error-corrected memory (paper §4.2.2): any stabilizer code up
//! to 30 qubits runs on the same USC hardware with serialized checks, so
//! even non-planar codes (Reed-Muller) work without routing overhead.
//!
//! Run with: `cargo run --release --example uec_memory`

use hetarch::prelude::*;

fn main() {
    let compute = catalog::coherence_limited_compute(0.5e-3);
    let storage = catalog::coherence_limited_storage(50e-3);
    let usc = UscCell::new(compute, storage)
        .expect("USC satisfies the design rules")
        .characterize();
    println!(
        "USC: {} registers x {} modes, weight-2 Z-check fidelity {:.4} in {:.2} µs\n",
        usc.registers,
        usc.capacity / usc.registers,
        usc.check2.fidelity,
        usc.check2.duration * 1e6
    );

    let noise = UecNoise::default(); // CX 1%, storage SWAP 0.5%
    let shots = 20_000;

    println!(
        "{:8} {:>4} {:>6} {:>14} {:>14} {:>12}",
        "code", "n", "d", "cycle (µs)", "logical/cycle", "hom/cycle"
    );
    let codes: Vec<StabilizerCode> = vec![
        steane(),
        color_17(),
        reed_muller_15(),
        rotated_surface_code(3),
        rotated_surface_code(4),
    ];
    for code in codes {
        let module = UecModule::new(code.clone(), usc.clone(), noise);
        let het = module.logical_error_rate(shots, 42);
        let hom = if code.name().starts_with("SC") {
            hom_surface_logical_error(code.distance(), 0.5e-3, noise, shots, 43)
        } else {
            HomModule::new(code.clone(), 0.5e-3, noise)
                .logical_error_rate(shots, 43)
                .logical_error_rate
        };
        println!(
            "{:8} {:>4} {:>6} {:>14.2} {:>14.4} {:>12.4}",
            code.name(),
            code.num_qubits(),
            code.distance(),
            het.cycle_duration * 1e6,
            het.logical_error_rate,
            hom
        );
    }

    // Chaining USC-EXT cells scales capacity past 30 qubits (Fig. 8).
    println!("\nUSC-EXT chaining:");
    for n_ext in 0..=2 {
        let chain = UscChain::new(
            catalog::coherence_limited_compute(0.5e-3),
            catalog::coherence_limited_storage(50e-3),
            n_ext,
        )
        .expect("chain satisfies the design rules");
        println!(
            "  USC + {} EXT: capacity {} data qubits, {} ancillas",
            n_ext,
            chain.capacity(),
            chain.num_ancillas()
        );
    }
}
