//! Quickstart: assemble devices into a design-rule-checked standard cell,
//! characterize it with exact density-matrix simulation, and run a first
//! heterogeneous-vs-homogeneous comparison.
//!
//! Run with: `cargo run --release --example quickstart`

use hetarch::prelude::*;

fn main() {
    // --- 1. Devices (paper Table 1). ------------------------------------
    println!("== Device catalog ==");
    for d in catalog::catalog() {
        println!(
            "  {:42} T1 = {:7.3} ms   T2 = {:7.3} ms   capacity {}",
            d.name,
            d.t1 * 1e3,
            d.t2 * 1e3,
            d.capacity
        );
    }

    // --- 2. A standard cell, checked against the design rules. ----------
    let transmon = catalog::fixed_frequency_qubit();
    let resonator = catalog::multimode_resonator_3d();

    let mut layout = DeviceGraph::new();
    let c = layout.add_device("compute", transmon.clone(), false);
    let s = layout.add_device("storage", resonator.clone(), false);
    layout.connect(c, s);
    match validate(&layout, 0) {
        Ok(()) => println!("\nRegister layout passes DR1-DR4"),
        Err(violations) => {
            for v in violations {
                println!("  violation: {v}");
            }
            return;
        }
    }

    // --- 3. Characterize the cell (density-matrix simulation). ----------
    let lib = CellLibrary::new();
    let reg = lib.get::<RegisterCell>(&transmon, &resonator);
    println!(
        "Register cell: load fidelity {:.5} in {:.0} ns, {} modes at Ts = {} ms",
        reg.load.fidelity,
        reg.load.duration * 1e9,
        reg.modes,
        reg.storage_idle.t1 * 1e3
    );

    // --- 4. First experiment: store a Bell pair heterogeneously. --------
    let mut pair = BellDiagonal::perfect();
    let storage_idle = reg.storage_idle;
    let compute_idle = IdleParams::new(transmon.t1, transmon.t2).expect("physical");
    let hold = 200e-6; // 200 µs in memory
    println!("\n== Holding a Bell pair for {} µs ==", hold * 1e6);
    let het = {
        let p = storage_idle.twirl_probs(hold);
        pair.idle(p, p);
        pair.fidelity()
    };
    let hom = {
        let mut pair = BellDiagonal::perfect();
        let p = compute_idle.twirl_probs(hold);
        pair.idle(p, p);
        pair.fidelity()
    };
    println!("  heterogeneous storage (resonator): F = {het:.4}");
    println!("  homogeneous storage (transmon):    F = {hom:.4}");
    println!(
        "  -> the storage device preserves {:.1}x more fidelity margin",
        (1.0 - hom) / (1.0 - het)
    );
}
