//! The hierarchical design view (paper §2, Figs. 1, 2, 8, 11): build the
//! three case-study modules as design trees, validate every layout against
//! the design rules, and roll up footprint and control overhead from the
//! device level.
//!
//! Run with: `cargo run --release --example module_hierarchy`

use hetarch::modules::hierarchy::{ct_design, distillation_design, uec_design};
use hetarch::prelude::*;

fn main() {
    let lib = CellLibrary::new();
    let compute = catalog::coherence_limited_compute(0.5e-3);
    let storage = catalog::coherence_limited_storage(12.5e-3);

    for (title, tree) in [
        (
            "Fig. 1 — entanglement distillation",
            distillation_design(&lib, &compute, &storage),
        ),
        (
            "Fig. 8 — universal error correction (USC + 1 EXT)",
            uec_design(&lib, &compute, &storage, 1),
        ),
        (
            "Fig. 11 — code teleportation",
            ct_design(&lib, &compute, &storage),
        ),
    ] {
        println!("== {title} ==");
        print!("{}", tree.render());
        match tree.validate_tree() {
            Ok(()) => println!("design rules: all layouts pass DR1-DR4"),
            Err(violations) => {
                for (node, v) in violations {
                    println!("  {node}: {v}");
                }
            }
        }
        let cost = tree.footprint();
        println!(
            "inherited footprint: {:.0} mm^2 planar, {} devices, capacity {} qubits,\n\
             control I/O: {} charge + {} readout lines\n",
            cost.area_mm2,
            tree.num_devices(),
            cost.capacity,
            cost.control.charge_lines,
            cost.control.readout_lines,
        );
    }

    // The cell library characterized each distinct cell exactly once even
    // though the trees above instantiate them many times.
    let stats = lib.stats();
    println!(
        "cell characterizations: {} density-matrix runs, {} cache hits \
         ({:.1} ms of simulation avoided)",
        stats.misses,
        stats.hits,
        stats.sim_seconds_saved * 1e3
    );
}
