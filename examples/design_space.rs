//! Design-space exploration (paper §2, third contribution): sweep storage
//! coherence against delivered distillation rate and footprint, extract the
//! Pareto front, and show the hierarchical-simulation cost advantage.
//!
//! Run with: `cargo run --release --example design_space`

use hetarch::prelude::*;
use hetarch_dse::explore::explore_distill_storage;

fn main() {
    // --- 1. Which storage coherence is "enough" for distillation? -------
    let ts_values = [0.5e-3, 1e-3, 2.5e-3, 5e-3, 12.5e-3, 50e-3];
    for gen_rate in [1e5, 1e6] {
        let ex = explore_distill_storage(gen_rate, &ts_values, 5e-3, 0.9, 13);
        println!("EP generation {} kHz:", gen_rate / 1e3);
        for p in &ex.points {
            println!(
                "  Ts = {:>5.1} ms -> {:>8.1} kHz",
                p.ts * 1e3,
                p.rate_hz / 1e3
            );
        }
        match ex.sufficient_ts {
            Some(ts) => println!("  -> Ts = {:.1} ms already reaches 90% of best\n", ts * 1e3),
            None => println!("  -> no setting delivered pairs\n"),
        }
    }

    // --- 2. Pareto front: delivered rate vs physical footprint. ---------
    // Candidate storage devices trade coherence against footprint.
    let candidates = [
        ("on-chip resonator", catalog::on_chip_multimode_resonator()),
        ("3D multimode", catalog::multimode_resonator_3d()),
        ("3D memory", catalog::memory_3d()),
    ];
    let mut metrics = Vec::new();
    let mut names = Vec::new();
    for (name, storage) in &candidates {
        let mut cfg = DistillConfig::heterogeneous(storage.t1, 1e6, 17);
        // Use each device's real coherence, capacity, footprint and swap
        // *time*, with the §4 coherence-limited gate-error convention.
        let mut storage = storage.clone();
        storage.swap = hetarch::devices::GateSpec::new(storage.swap.time, 0.0);
        let lib = CellLibrary::new();
        cfg.register = (*lib
            .get::<RegisterCell>(&catalog::coherence_limited_compute(0.5e-3), &storage))
        .clone();
        let report = DistillModule::new(cfg).run(3e-3);
        let area = storage.footprint.area_mm2();
        println!(
            "{name:>18}: rate {:>8.1} kHz, area {:>9.1} mm^2",
            report.delivered_rate_hz / 1e3,
            area
        );
        // Minimize (negative rate, area).
        metrics.push(vec![-report.delivered_rate_hz, area]);
        names.push(*name);
    }
    let front = pareto_front(&metrics);
    println!(
        "Pareto-optimal storage choices: {:?}\n",
        front.iter().map(|&i| names[i]).collect::<Vec<_>>()
    );

    // --- 3. The hierarchical-simulation cost ledger. ---------------------
    let mut ledger = CostLedger::new();
    // Cells characterized exactly: Register (2 qubits), ParCheck (2),
    // SeqOp CNOT probe (4), USC weight-2 check (5).
    for q in [2, 2, 4, 5] {
        ledger.record_cell_sim(q);
    }
    // The distillation module spans ~16 physical qubits and the event
    // simulator executed ~1e5 operations above the cell abstraction.
    ledger.record_module(16, 100_000);
    println!(
        "simulation cost: hierarchical {:.3e} vs flat {:.3e} -> {:.1e}x reduction",
        ledger.hierarchical_cost(),
        ledger.flat_cost(),
        ledger.reduction_factor()
    );
}
