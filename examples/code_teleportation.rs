//! Code teleportation (paper §4.3): prepare the logical Bell resource
//! `Φ+_AB` between two different QEC codes, composing the distillation, CAT
//! generation and UEC sub-modules.
//!
//! Run with: `cargo run --release --example code_teleportation`

use hetarch::prelude::*;

fn main() {
    let pairs: Vec<(&str, StabilizerCode, StabilizerCode)> = vec![
        ("SC3 <-> RM15", rotated_surface_code(3), reed_muller_15()),
        (
            "SC3 <-> SC4",
            rotated_surface_code(3),
            rotated_surface_code(4),
        ),
        ("17QCC <-> SC4", color_17(), rotated_surface_code(4)),
    ];

    println!("EP generation 1000 kHz, distillation target 99.5%\n");
    println!(
        "{:>14} {:>10} {:>10} {:>10}",
        "pair", "het", "hom", "reduction"
    );
    for (name, a, b) in &pairs {
        let mut het_cfg = CtConfig::heterogeneous(a.clone(), b.clone(), 50e-3);
        het_cfg.shots = 10_000;
        let het = CtModule::new(het_cfg).evaluate();
        let mut hom_cfg = CtConfig::homogeneous(a.clone(), b.clone());
        hom_cfg.shots = 10_000;
        let hom = CtModule::new(hom_cfg).evaluate();
        println!(
            "{:>14} {:>10.3} {:>10.3} {:>9.2}x",
            name,
            het.logical_error_probability,
            hom.logical_error_probability,
            hom.logical_error_probability / het.logical_error_probability
        );
    }

    // Error breakdown for one pair.
    let mut cfg = CtConfig::heterogeneous(rotated_surface_code(3), reed_muller_15(), 50e-3);
    cfg.shots = 10_000;
    let r = CtModule::new(cfg).evaluate();
    println!("\nBreakdown for SC3 <-> RM15 at Ts = 50 ms:");
    println!(
        "  EP link (2 pairs @ F = {:.4}): {:.4}",
        r.ep_fidelity, r.breakdown.ep
    );
    println!("  CAT generation:                {:.4}", r.breakdown.cat);
    println!("  logical |+> in SC3:            {:.4}", r.breakdown.plus_a);
    println!("  logical |+> in RM15:           {:.4}", r.breakdown.plus_b);
    println!(
        "  transversal CNOT layer:        {:.4}",
        r.breakdown.transversal
    );
    println!(
        "  logical measurement:           {:.4}",
        r.breakdown.measurement
    );
    println!(
        "  total:                         {:.4}",
        r.logical_error_probability
    );

    // Storage-coherence sweep, Fig. 12 style.
    println!("\nCT error vs storage coherence (SC3 <-> SC4):");
    for ts_ms in [0.5, 2.0, 10.0, 50.0] {
        let mut cfg = CtConfig::heterogeneous(
            rotated_surface_code(3),
            rotated_surface_code(4),
            ts_ms * 1e-3,
        );
        cfg.shots = 6_000;
        let r = CtModule::new(cfg).evaluate();
        println!("  Ts = {ts_ms:>5.1} ms: {:.3}", r.logical_error_probability);
    }
}
