//! An entanglement-distillation factory (paper §4.1): stochastic EP arrivals
//! feed Register memories, a ParCheck cell runs DEJMPS rounds under the
//! greedy scheduler, and purified pairs are delivered at 99.5% fidelity.
//!
//! Run with: `cargo run --release --example distillation_factory`

use hetarch::prelude::*;

fn main() {
    let gen_rate = 1e6; // 1000 kHz, the paper's Fig. 12 operating point
    let duration = 10e-3;

    println!(
        "EP generation: {} kHz, raw infidelity 0.01-0.1",
        gen_rate / 1e3
    );
    println!(
        "target fidelity: 0.995, sim duration: {} ms\n",
        duration * 1e3
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "Ts (ms)", "attempts", "successes", "delivered", "rate (kHz)"
    );

    for ts_ms in [0.5, 1.0, 2.5, 5.0, 12.5, 50.0] {
        let config = DistillConfig::heterogeneous(ts_ms * 1e-3, gen_rate, 7);
        let report = DistillModule::new(config).run(duration);
        println!(
            "{:>10.1} {:>12} {:>12} {:>12} {:>12.1}",
            ts_ms,
            report.rounds_attempted,
            report.rounds_succeeded,
            report.delivered,
            report.delivered_rate_hz / 1e3
        );
    }

    let hom = DistillModule::new(DistillConfig::homogeneous(gen_rate, 7)).run(duration);
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12.1}   (homogeneous, Ts = Tc = 0.5 ms)",
        "hom",
        hom.rounds_attempted,
        hom.rounds_succeeded,
        hom.delivered,
        hom.delivered_rate_hz / 1e3
    );

    // A fidelity trace like Fig. 3.
    let mut cfg = DistillConfig::heterogeneous(12.5e-3, 2e6, 11);
    cfg.consume_output = false;
    cfg.trace_interval = Some(5e-6);
    let report = DistillModule::new(cfg).run(100e-6);
    println!("\nFig.3-style trace (Ts = 12.5 ms, 2 MHz generation):");
    println!(
        "{:>10} {:>18} {:>18}",
        "t (µs)", "memory infid.", "output infid."
    );
    for p in report.trace.iter().take(20) {
        println!(
            "{:>10.1} {:>18} {:>18}",
            p.time * 1e6,
            p.memory_infidelity
                .map(|x| format!("{x:.4}"))
                .unwrap_or_else(|| "-".into()),
            p.output_infidelity
                .map(|x| format!("{x:.4}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
}
