//! Parallel sweep execution over a design space, on the workspace-wide
//! [`hetarch_exec::WorkerPool`] substrate.

use hetarch_exec::{CancelToken, Cancelled, WorkerPool};
use hetarch_obs as obs;

use crate::space::{DesignSpace, Point};

// Sweep metrics (no-ops unless the `obs` feature is on and `HETARCH_OBS=1`).
static POINTS_EVALUATED: obs::Counter = obs::Counter::new("dse.points_evaluated");
static SWEEPS: obs::Counter = obs::Counter::new("dse.sweeps");
static POINT_LATENCY_NS: obs::Histogram = obs::Histogram::new("dse.point_latency_ns");

/// Evaluates `f` at every point of `space` in parallel on the global
/// [`WorkerPool`], preserving point order in the output.
///
/// # Examples
///
/// ```
/// use hetarch_dse::space::{Axis, DesignSpace};
/// use hetarch_dse::sweep::sweep;
///
/// let space = DesignSpace::new(vec![Axis::new("x", vec![1.0, 2.0, 3.0])]);
/// let results = sweep(&space, |p| p.get("x") * 10.0);
/// let values: Vec<f64> = results.iter().map(|(_, v)| *v).collect();
/// assert_eq!(values, vec![10.0, 20.0, 30.0]);
/// ```
pub fn sweep<T, F>(space: &DesignSpace, f: F) -> Vec<(Point, T)>
where
    T: Send,
    F: Fn(&Point) -> T + Sync,
{
    sweep_on(WorkerPool::global(), space.points(), f)
}

/// Like [`sweep`] with an explicit worker count (1 gives a fully serial
/// execution useful in tests).
pub fn sweep_with_workers<T, F>(points: Vec<Point>, f: F, workers: usize) -> Vec<(Point, T)>
where
    T: Send,
    F: Fn(&Point) -> T + Sync,
{
    sweep_on(&WorkerPool::new(workers), points, f)
}

/// Evaluates `f` at every point on an explicit [`WorkerPool`], preserving
/// point order in the output regardless of which worker evaluated which
/// point.
pub fn sweep_on<T, F>(pool: &WorkerPool, points: Vec<Point>, f: F) -> Vec<(Point, T)>
where
    T: Send,
    F: Fn(&Point) -> T + Sync,
{
    SWEEPS.inc();
    let values = pool.map_indexed(points.len(), |i| {
        let span = obs::span!(POINT_LATENCY_NS);
        let value = f(&points[i]);
        drop(span);
        POINTS_EVALUATED.inc();
        value
    });
    points.into_iter().zip(values).collect()
}

/// As [`sweep_on`] with a cooperative [`CancelToken`] checked before each
/// point is dispatched: a fired token stops the sweep after at most one
/// in-flight point per worker and returns [`Cancelled`]. This is the
/// re-entrant entry point the serving layer drives — `f` itself may also
/// observe the token (e.g. via the cancellable module paths) to stop inside
/// a long per-point Monte-Carlo run.
pub fn try_sweep_on<T, F>(
    pool: &WorkerPool,
    points: Vec<Point>,
    token: &CancelToken,
    f: F,
) -> Result<Vec<(Point, T)>, Cancelled>
where
    T: Send,
    F: Fn(&Point) -> T + Sync,
{
    SWEEPS.inc();
    let values = pool.try_map_indexed(points.len(), token, |i| {
        let span = obs::span!(POINT_LATENCY_NS);
        let value = f(&points[i]);
        drop(span);
        POINTS_EVALUATED.inc();
        value
    })?;
    Ok(points.into_iter().zip(values).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Axis;

    #[test]
    fn parallel_matches_serial() {
        let space = DesignSpace::new(vec![
            Axis::new("a", (1..=5).map(f64::from).collect()),
            Axis::new("b", (1..=4).map(f64::from).collect()),
        ]);
        let serial = sweep_with_workers(space.points(), |p| p.get("a") * p.get("b"), 1);
        let parallel = sweep_with_workers(space.points(), |p| p.get("a") * p.get("b"), 8);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.0, p.0);
            assert_eq!(s.1, p.1);
        }
    }

    #[test]
    fn order_is_point_order() {
        let space = DesignSpace::new(vec![Axis::new("x", vec![3.0, 1.0, 2.0])]);
        let out = sweep(&space, |p| p.get("x"));
        let xs: Vec<f64> = out.iter().map(|(_, v)| *v).collect();
        assert_eq!(xs, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn single_point_space() {
        let space = DesignSpace::new(vec![Axis::new("only", vec![42.0])]);
        let out = sweep(&space, |p| p.get("only") as i64);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, 42);
    }

    #[test]
    fn many_workers_few_points() {
        let space = DesignSpace::new(vec![Axis::new("x", vec![1.0, 2.0])]);
        let out = sweep_with_workers(space.points(), |p| p.get("x"), 16);
        let xs: Vec<f64> = out.iter().map(|(_, v)| *v).collect();
        assert_eq!(xs, vec![1.0, 2.0]);
    }
}
