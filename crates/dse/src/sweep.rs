//! Parallel sweep execution over a design space.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use crate::space::{DesignSpace, Point};

/// Evaluates `f` at every point of `space` in parallel, preserving point
/// order in the output. Worker count defaults to available parallelism.
///
/// # Examples
///
/// ```
/// use hetarch_dse::space::{Axis, DesignSpace};
/// use hetarch_dse::sweep::sweep;
///
/// let space = DesignSpace::new(vec![Axis::new("x", vec![1.0, 2.0, 3.0])]);
/// let results = sweep(&space, |p| p.get("x") * 10.0);
/// let values: Vec<f64> = results.iter().map(|(_, v)| *v).collect();
/// assert_eq!(values, vec![10.0, 20.0, 30.0]);
/// ```
pub fn sweep<T, F>(space: &DesignSpace, f: F) -> Vec<(Point, T)>
where
    T: Send,
    F: Fn(&Point) -> T + Sync,
{
    let points = space.points();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(points.len().max(1));
    sweep_with_workers(points, f, workers)
}

/// Like [`sweep`] with an explicit worker count (1 gives a fully serial,
/// deterministic-order execution useful in tests).
pub fn sweep_with_workers<T, F>(points: Vec<Point>, f: F, workers: usize) -> Vec<(Point, T)>
where
    T: Send,
    F: Fn(&Point) -> T + Sync,
{
    assert!(workers >= 1, "need at least one worker");

    // Serial path: evaluate in point order with no threading machinery.
    if workers == 1 {
        return points
            .into_iter()
            .map(|point| {
                let value = f(&point);
                (point, value)
            })
            .collect();
    }

    let n = points.len();
    let next = &AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, (Point, T))>();
    let f = &f;
    let points = &points;

    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let point = points[i].clone();
                let value = f(&point);
                // The receiver outlives the scope; a send can only fail if it
                // was dropped early, which would mean a sibling panicked.
                let _ = tx.send((i, (point, value)));
            });
        }
        drop(tx);
    });

    let mut slots: Vec<Option<(Point, T)>> = (0..n).map(|_| None).collect();
    for (i, entry) in rx.try_iter() {
        slots[i] = Some(entry);
    }
    slots
        .into_iter()
        .map(|s| s.expect("all points evaluated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Axis;

    #[test]
    fn parallel_matches_serial() {
        let space = DesignSpace::new(vec![
            Axis::new("a", (1..=5).map(f64::from).collect()),
            Axis::new("b", (1..=4).map(f64::from).collect()),
        ]);
        let serial = sweep_with_workers(space.points(), |p| p.get("a") * p.get("b"), 1);
        let parallel = sweep_with_workers(space.points(), |p| p.get("a") * p.get("b"), 8);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.0, p.0);
            assert_eq!(s.1, p.1);
        }
    }

    #[test]
    fn order_is_point_order() {
        let space = DesignSpace::new(vec![Axis::new("x", vec![3.0, 1.0, 2.0])]);
        let out = sweep(&space, |p| p.get("x"));
        let xs: Vec<f64> = out.iter().map(|(_, v)| *v).collect();
        assert_eq!(xs, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn single_point_space() {
        let space = DesignSpace::new(vec![Axis::new("only", vec![42.0])]);
        let out = sweep(&space, |p| p.get("only") as i64);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, 42);
    }

    #[test]
    fn many_workers_few_points() {
        let space = DesignSpace::new(vec![Axis::new("x", vec![1.0, 2.0])]);
        let out = sweep_with_workers(space.points(), |p| p.get("x"), 16);
        let xs: Vec<f64> = out.iter().map(|(_, v)| *v).collect();
        assert_eq!(xs, vec![1.0, 2.0]);
    }
}
