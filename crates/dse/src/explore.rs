//! Application-level design-space explorations (paper §4).
//!
//! These wrap the module simulators behind sweep + selection logic to answer
//! the questions the paper asks of each application: *how much storage
//! coherence is enough?* (distillation, §4.1) and *how much data-qubit
//! coherence pays off?* (surface code, §4.2.1).

use serde::{Deserialize, Serialize};

use hetarch_exec::rare::RareConfig;
use hetarch_modules::distill::{DistillConfig, DistillModule};

use crate::space::{Axis, DesignSpace};
use crate::sweep::sweep;

/// One evaluated distillation design point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DistillPoint {
    /// Storage coherence (seconds).
    pub ts: f64,
    /// Delivered EP rate (Hz).
    pub rate_hz: f64,
}

/// Result of the storage-coherence exploration for entanglement
/// distillation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DistillExploration {
    /// EP generation rate explored (Hz).
    pub gen_rate_hz: f64,
    /// All evaluated points.
    pub points: Vec<DistillPoint>,
    /// Smallest `T_S` achieving at least `threshold` of the best rate.
    pub sufficient_ts: Option<f64>,
}

/// Sweeps storage coherence for a fixed EP generation rate and reports the
/// smallest `T_S` that achieves `threshold` (e.g. 0.9) of the best delivered
/// rate — the paper's "Ts = 1 ms is sufficient above 10 kHz" style finding.
pub fn explore_distill_storage(
    gen_rate_hz: f64,
    ts_values: &[f64],
    sim_duration: f64,
    threshold: f64,
    seed: u64,
) -> DistillExploration {
    let space = DesignSpace::new(vec![Axis::new("ts", ts_values.to_vec())]);
    let results = sweep(&space, |p| {
        let ts = p.get("ts");
        let module = DistillModule::new(DistillConfig::heterogeneous(ts, gen_rate_hz, seed));
        module.run(sim_duration).delivered_rate_hz
    });
    let points: Vec<DistillPoint> = results
        .iter()
        .map(|(p, rate)| DistillPoint {
            ts: p.get("ts"),
            rate_hz: *rate,
        })
        .collect();
    let best = points.iter().map(|p| p.rate_hz).fold(0.0, f64::max);
    let sufficient_ts = points
        .iter()
        .filter(|p| best > 0.0 && p.rate_hz >= threshold * best)
        .map(|p| p.ts)
        .fold(None, |acc: Option<f64>, ts| {
            Some(acc.map_or(ts, |a| a.min(ts)))
        });
    DistillExploration {
        gen_rate_hz,
        points,
        sufficient_ts,
    }
}

/// One evaluated surface-code design point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SurfacePoint {
    /// Data-qubit coherence scaling factor α.
    pub alpha: f64,
    /// Whether α was applied to data (true) or ancilla (false) qubits.
    pub scaled_data: bool,
    /// Logical error rate per cycle.
    pub logical_per_round: f64,
}

/// Sweeps the data- vs ancilla-coherence scaling of Fig. 6 and reports where
/// the returns diminish (the largest α whose marginal improvement still
/// exceeds `min_gain`, e.g. 5%).
pub fn explore_surface_coherence(
    d: usize,
    base_tc: f64,
    alphas: &[f64],
    shots: usize,
    seed: u64,
) -> Vec<SurfacePoint> {
    use hetarch_stab::codes::{SurfaceMemory, SurfaceNoise};
    let mut space_axes = vec![Axis::new("alpha", alphas.to_vec())];
    space_axes.push(Axis::new("data", vec![0.0, 1.0]));
    let space = DesignSpace::new(space_axes);
    let results = sweep(&space, |p| {
        let alpha = p.get("alpha");
        let scaled_data = p.get("data") > 0.5;
        let noise = SurfaceNoise {
            t_data: if scaled_data {
                base_tc * alpha
            } else {
                base_tc
            },
            t_anc: if scaled_data {
                base_tc
            } else {
                base_tc * alpha
            },
            ..SurfaceNoise::default()
        };
        SurfaceMemory::new(d, d, noise)
            .logical_error_rate(shots, seed)
            .1
    });
    results
        .into_iter()
        .map(|(p, rate)| SurfacePoint {
            alpha: p.get("alpha"),
            scaled_data: p.get("data") > 0.5,
            logical_per_round: rate,
        })
        .collect()
}

/// Estimator selection for surface-memory design points.
///
/// Deep-subthreshold points (large α, low noise) have logical error rates
/// the plain frequency estimator returns `0/N` for; the rare-event mode
/// resolves them with an explicit error budget instead.
#[derive(Clone, Copy, Debug)]
pub enum SurfaceEstimator {
    /// Plain frequency estimator at a fixed shot budget.
    Plain {
        /// Monte-Carlo shots per design point.
        shots: usize,
    },
    /// Weight-stratified rare-event estimator
    /// ([`hetarch_stab::codes::SurfaceMemory::logical_error_rate_rare`]).
    Rare(RareConfig),
}

/// One surface design point evaluated with a full error budget.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SurfaceRatePoint {
    /// Data-qubit coherence scaling factor α.
    pub alpha: f64,
    /// Whether α was applied to data (true) or ancilla (false) qubits.
    pub scaled_data: bool,
    /// Logical error rate per round.
    pub logical_per_round: f64,
    /// One statistical standard deviation of the **per-shot** estimate.
    pub sigma: f64,
    /// Truncation bound of the per-shot estimate (0 for the plain
    /// estimator, which has no truncation error).
    pub truncation_bound: f64,
    /// Whether the estimator met its tolerance (always true for plain).
    pub converged: bool,
}

/// As [`explore_surface_coherence`] with an explicit estimator choice: the
/// rare-event cost mode evaluates each design point with the stratified
/// estimator and reports `(p_L, sigma, truncation_bound)` per point, which
/// is what makes deep-subthreshold sweeps meaningful at all.
pub fn explore_surface_coherence_with(
    d: usize,
    base_tc: f64,
    alphas: &[f64],
    estimator: SurfaceEstimator,
    seed: u64,
) -> Vec<SurfaceRatePoint> {
    use hetarch_stab::codes::{SurfaceDecoder, SurfaceMemory, SurfaceNoise};
    let mut space_axes = vec![Axis::new("alpha", alphas.to_vec())];
    space_axes.push(Axis::new("data", vec![0.0, 1.0]));
    let space = DesignSpace::new(space_axes);
    let results = sweep(&space, |p| {
        let alpha = p.get("alpha");
        let scaled_data = p.get("data") > 0.5;
        let noise = SurfaceNoise {
            t_data: if scaled_data {
                base_tc * alpha
            } else {
                base_tc
            },
            t_anc: if scaled_data {
                base_tc
            } else {
                base_tc * alpha
            },
            ..SurfaceNoise::default()
        };
        let memory = SurfaceMemory::new(d, d, noise);
        match estimator {
            SurfaceEstimator::Plain { shots } => {
                let (per_shot, per_round) = memory.logical_error_rate(shots, seed);
                let sigma = if shots == 0 {
                    0.0
                } else {
                    (per_shot * (1.0 - per_shot) / shots as f64).sqrt()
                };
                (per_round, sigma, 0.0, true)
            }
            SurfaceEstimator::Rare(config) => {
                let outcome =
                    memory.logical_error_rate_rare(SurfaceDecoder::UnionFind, config, seed);
                let converged = outcome.is_converged();
                let report = outcome.report();
                (
                    report.per_round(memory.rounds),
                    report.sigma,
                    report.truncation_bound,
                    converged,
                )
            }
        }
    });
    results
        .into_iter()
        .map(
            |(p, (logical_per_round, sigma, truncation_bound, converged))| SurfaceRatePoint {
                alpha: p.get("alpha"),
                scaled_data: p.get("data") > 0.5,
                logical_per_round,
                sigma,
                truncation_bound,
                converged,
            },
        )
        .collect()
}

/// One evaluated memory-capacity point for the distillation module.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CapacityPoint {
    /// Input memory capacity in pairs.
    pub input_pairs: usize,
    /// Output memory capacity in pairs.
    pub output_pairs: usize,
    /// Delivered rate (Hz).
    pub rate_hz: f64,
}

/// Sweeps the distillation module's memory capacities — the §4.1 sizing
/// study that found "two Register cells for the input memory with three
/// modes each ... and one output Register with three modes" sufficient.
pub fn explore_distill_capacity(
    gen_rate_hz: f64,
    ts: f64,
    sim_duration: f64,
    seed: u64,
) -> Vec<CapacityPoint> {
    let mut out = Vec::new();
    for (input_pairs, output_pairs) in [(2, 1), (3, 3), (6, 3), (9, 3), (12, 6)] {
        let mut cfg = DistillConfig::heterogeneous(ts, gen_rate_hz, seed);
        cfg.input_capacity = input_pairs;
        cfg.output_capacity = output_pairs;
        let report = DistillModule::new(cfg).run(sim_duration);
        out.push(CapacityPoint {
            input_pairs,
            output_pairs,
            rate_hz: report.delivered_rate_hz,
        });
    }
    out
}

/// One evaluated compute-device choice (the §3.1 within-type tradeoff:
/// fluxonium trades higher T1 and an extra flux line for lower T2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ComputeChoicePoint {
    /// Device name.
    pub device: String,
    /// Delivered distilled-EP rate (Hz).
    pub rate_hz: f64,
    /// Control lines per compute device.
    pub control_lines: u32,
    /// T2 of the device (the quantity that actually limits the distiller).
    pub t2: f64,
}

/// Compares catalog compute devices (with §4's coherence-limited gates but
/// each device's own real T1/T2) as the distiller's compute element.
pub fn explore_compute_choice(
    gen_rate_hz: f64,
    ts: f64,
    sim_duration: f64,
    seed: u64,
) -> Vec<ComputeChoicePoint> {
    explore_compute_choice_with_calib(
        gen_rate_hz,
        ts,
        sim_duration,
        seed,
        &hetarch_devices::calib::CalibSnapshot::default(),
    )
}

/// [`explore_compute_choice`] evaluated against a fleet calibration
/// snapshot: every cell is built with the snapshot's per-slot overrides
/// (keyed by layout label, e.g. `"register/storage"`), so the comparison
/// reflects today's measured devices rather than the nominal catalog. An
/// empty snapshot reproduces [`explore_compute_choice`] exactly.
pub fn explore_compute_choice_with_calib(
    gen_rate_hz: f64,
    ts: f64,
    sim_duration: f64,
    seed: u64,
    calib: &hetarch_devices::calib::CalibSnapshot,
) -> Vec<ComputeChoicePoint> {
    use hetarch_cells::{CellLibrary, ParCheckCell, RegisterCell};
    use hetarch_devices::catalog::{
        coherence_limited_storage, fixed_frequency_qubit, flux_tunable_qubit,
    };
    use hetarch_devices::device::GateSpec;

    let mut out = Vec::new();
    for base in [fixed_frequency_qubit(), flux_tunable_qubit()] {
        let mut compute = base.clone();
        // §4 convention: gate errors are coherence-limited.
        compute.gate_1q = Some(GateSpec::new(40e-9, 0.0));
        compute.gate_2q = Some(GateSpec::new(100e-9, 0.0));
        compute.swap = GateSpec::new(100e-9, 0.0);
        let storage = coherence_limited_storage(ts);
        let lib = CellLibrary::new();
        let mut cfg = DistillConfig::heterogeneous(ts, gen_rate_hz, seed);
        cfg.register = (*lib.get_with_calib::<RegisterCell>(&compute, &storage, calib)).clone();
        cfg.parcheck = (*lib.get_with_calib::<ParCheckCell>(&compute, &compute, calib)).clone();
        let report = DistillModule::new(cfg).run(sim_duration);
        out.push(ComputeChoicePoint {
            device: base.name.clone(),
            rate_hz: report.delivered_rate_hz,
            control_lines: base.control.total(),
            t2: base.t2,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distill_exploration_finds_sufficient_ts() {
        let ex = explore_distill_storage(1e6, &[0.5e-3, 2.5e-3, 12.5e-3], 1.5e-3, 0.5, 3);
        assert_eq!(ex.points.len(), 3);
        let best = ex.points.iter().map(|p| p.rate_hz).fold(0.0, f64::max);
        assert!(best > 0.0, "no pairs delivered at 1 MHz");
        let ts = ex.sufficient_ts.expect("some Ts must reach 50% of best");
        assert!(ts <= 12.5e-3);
    }

    #[test]
    fn longer_ts_never_much_worse() {
        let ex = explore_distill_storage(1e6, &[0.5e-3, 12.5e-3], 1.5e-3, 0.9, 4);
        let short = ex.points[0].rate_hz;
        let long = ex.points[1].rate_hz;
        assert!(long >= short * 0.8, "long {long} vs short {short}");
    }

    #[test]
    fn paper_capacity_sizing_is_sufficient() {
        // §4.1: 6 input pairs + 3 output pairs suffice — larger memories do
        // not deliver meaningfully more.
        let pts = explore_distill_capacity(1e6, 12.5e-3, 4e-3, 11);
        let rate_of = |inp: usize| {
            pts.iter()
                .find(|p| p.input_pairs == inp)
                .map(|p| p.rate_hz)
                .unwrap()
        };
        let paper = rate_of(6);
        let bigger = rate_of(12);
        assert!(paper > 0.0);
        assert!(
            bigger <= paper * 1.25,
            "doubling capacity should not buy >25%: {paper} -> {bigger}"
        );
        // A 2-pair input memory is a real bottleneck at this rate.
        assert!(rate_of(2) < paper, "tiny memory should underperform");
    }

    #[test]
    fn compute_choice_reflects_t2_tradeoff() {
        // The throughput gap from the fluxonium's lower T2 is smaller than
        // single-seed Monte-Carlo noise at short sim durations, so compare
        // rates averaged over several seeds.
        let mut transmon_sum = 0.0;
        let mut fluxonium_sum = 0.0;
        for seed in [5, 6, 7, 8, 9] {
            let pts = explore_compute_choice(2e6, 12.5e-3, 2e-3, seed);
            assert_eq!(pts.len(), 2);
            let transmon = pts.iter().find(|p| p.device.contains("Fixed")).unwrap();
            let fluxonium = pts.iter().find(|p| p.device.contains("Flux")).unwrap();
            // The fluxonium's extra flux line shows in the control budget...
            assert!(fluxonium.control_lines > transmon.control_lines);
            transmon_sum += transmon.rate_hz;
            fluxonium_sum += fluxonium.rate_hz;
        }
        // ...and its lower T2 costs distillation throughput on average.
        assert!(
            transmon_sum >= fluxonium_sum,
            "transmon {} vs fluxonium {}",
            transmon_sum / 5.0,
            fluxonium_sum / 5.0
        );
    }

    #[test]
    fn rare_cost_mode_agrees_with_plain_at_high_noise() {
        use hetarch_exec::rare::RareConfig;
        // One high-noise design point evaluated both ways.
        let alphas = [1.0];
        let plain = explore_surface_coherence_with(
            3,
            0.1e-3,
            &alphas,
            SurfaceEstimator::Plain { shots: 8_000 },
            21,
        );
        let rare = explore_surface_coherence_with(
            3,
            0.1e-3,
            &alphas,
            SurfaceEstimator::Rare(RareConfig {
                max_strata: 40,
                rel_tol: 0.05,
                shots_per_stratum: 3_000,
                ..RareConfig::default()
            }),
            23,
        );
        assert_eq!(plain.len(), 2);
        assert_eq!(rare.len(), 2);
        for (p, r) in plain.iter().zip(&rare) {
            assert_eq!(p.alpha, r.alpha);
            assert_eq!(p.scaled_data, r.scaled_data);
            assert_eq!(p.truncation_bound, 0.0);
            assert!(p.converged);
            assert!(r.converged, "rare mode should converge at high noise");
            // Per-round rates agree within generous combined error bars
            // (sigmas are per-shot; the per-round conversion only shrinks
            // deviations for rates this small).
            let tol = 6.0 * (p.sigma + r.sigma) + r.truncation_bound;
            assert!(
                (p.logical_per_round - r.logical_per_round).abs() <= tol,
                "plain {} vs rare {} (tol {tol})",
                p.logical_per_round,
                r.logical_per_round
            );
        }
    }

    #[test]
    fn surface_exploration_shapes() {
        let pts = explore_surface_coherence(3, 0.1e-3, &[1.0, 4.0], 1500, 9);
        assert_eq!(pts.len(), 4);
        // Scaling data coherence by 4 should help.
        let base = pts
            .iter()
            .find(|p| p.alpha == 1.0 && p.scaled_data)
            .unwrap()
            .logical_per_round;
        let better = pts
            .iter()
            .find(|p| p.alpha == 4.0 && p.scaled_data)
            .unwrap()
            .logical_per_round;
        assert!(better < base, "alpha=4 {better} vs alpha=1 {base}");
    }
}
