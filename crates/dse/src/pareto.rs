//! Pareto-front extraction over multi-objective design evaluations.

use hetarch_obs as obs;

// Front metrics (no-ops unless the `obs` feature is on and `HETARCH_OBS=1`).
static PARETO_CALLS: obs::Counter = obs::Counter::new("dse.pareto_calls");
static PARETO_FRONT_SIZE: obs::Gauge = obs::Gauge::new("dse.pareto_front_size");

/// Returns the indices of the Pareto-optimal entries of `metrics`, where
/// every objective is **minimized**. An entry is dominated when another
/// entry is ≤ in every objective and < in at least one.
///
/// # Examples
///
/// ```
/// use hetarch_dse::pareto::pareto_front;
///
/// // (error rate, footprint)
/// let metrics = vec![
///     vec![0.01, 100.0], // optimal: lowest error
///     vec![0.05, 10.0],  // optimal: smallest footprint
///     vec![0.05, 100.0], // dominated by both
/// ];
/// assert_eq!(pareto_front(&metrics), vec![0, 1]);
/// ```
///
/// # Panics
///
/// Panics if entries have inconsistent dimensionality.
pub fn pareto_front(metrics: &[Vec<f64>]) -> Vec<usize> {
    if metrics.is_empty() {
        return Vec::new();
    }
    let dim = metrics[0].len();
    assert!(
        metrics.iter().all(|m| m.len() == dim),
        "inconsistent metric dimensionality"
    );
    let dominates = |a: &[f64], b: &[f64]| {
        a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
    };
    let front: Vec<usize> = (0..metrics.len())
        .filter(|&i| {
            !metrics
                .iter()
                .enumerate()
                .any(|(j, m)| j != i && dominates(m, &metrics[i]))
        })
        .collect();
    PARETO_CALLS.inc();
    PARETO_FRONT_SIZE.set(front.len() as u64);
    front
}

/// Picks the knee point of a (sorted or unsorted) front with any number of
/// objectives: the entry minimizing the normalized squared distance to the
/// utopia point (each objective min-max scaled over the front).
///
/// Returns `None` for empty input.
pub fn knee_point(metrics: &[Vec<f64>]) -> Option<usize> {
    let front = pareto_front(metrics);
    if front.is_empty() {
        return None;
    }
    let dim = metrics[front[0]].len();
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for &i in &front {
        for d in 0..dim {
            lo[d] = lo[d].min(metrics[i][d]);
            hi[d] = hi[d].max(metrics[i][d]);
        }
    }
    front.iter().copied().min_by(|&a, &b| {
        let score = |i: usize| -> f64 {
            (0..dim)
                .map(|d| {
                    let span = (hi[d] - lo[d]).max(f64::MIN_POSITIVE);
                    ((metrics[i][d] - lo[d]) / span).powi(2)
                })
                .sum()
        };
        score(a).total_cmp(&score(b))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_entry_is_optimal() {
        assert_eq!(pareto_front(&[vec![1.0, 2.0]]), vec![0]);
    }

    #[test]
    fn strictly_dominated_entries_removed() {
        let m = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![0.5, 3.0]];
        assert_eq!(pareto_front(&m), vec![0, 2]);
    }

    #[test]
    fn duplicates_survive() {
        // Equal entries do not dominate each other.
        let m = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(pareto_front(&m), vec![0, 1]);
    }

    #[test]
    fn knee_prefers_balanced_tradeoff() {
        let m = vec![
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.2, 0.2], // balanced: the knee
        ];
        assert_eq!(knee_point(&m), Some(2));
    }

    #[test]
    fn empty_front() {
        assert!(pareto_front(&[]).is_empty());
        assert_eq!(knee_point(&[]), None);
    }
}
