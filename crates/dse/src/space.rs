//! Design-space definitions: named parameter axes and their Cartesian
//! product.

use serde::{Deserialize, Serialize};

/// One swept parameter.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    /// Parameter name (e.g. `"ts"`, `"ep_rate"`).
    pub name: String,
    /// Values to sweep.
    pub values: Vec<f64>,
}

impl Axis {
    /// Creates an axis.
    ///
    /// # Panics
    ///
    /// Panics if no values are given.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "axis needs at least one value");
        Axis {
            name: name.into(),
            values,
        }
    }

    /// Logarithmically spaced axis from `lo` to `hi` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if bounds are non-positive or inverted, or `n < 2`.
    pub fn log_spaced(name: impl Into<String>, lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && n >= 2, "invalid log axis");
        let ratio = (hi / lo).ln();
        let values = (0..n)
            .map(|i| lo * (ratio * i as f64 / (n - 1) as f64).exp())
            .collect();
        Axis::new(name, values)
    }
}

/// A point in the design space: one value per axis, in axis order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Point {
    names: Vec<String>,
    values: Vec<f64>,
}

impl Point {
    /// Value of the named parameter.
    ///
    /// # Panics
    ///
    /// Panics if the parameter does not exist.
    pub fn get(&self, name: &str) -> f64 {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.values[i])
            .unwrap_or_else(|| panic!("unknown parameter '{name}'"))
    }

    /// All `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.names
            .iter()
            .map(|s| s.as_str())
            .zip(self.values.iter().copied())
    }
}

/// The full design space (Cartesian product of axes).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    axes: Vec<Axis>,
}

impl DesignSpace {
    /// Creates a space from axes.
    pub fn new(axes: Vec<Axis>) -> Self {
        DesignSpace { axes }
    }

    /// Number of points in the product.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// True when the space has no axes.
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty() || self.len() == 0
    }

    /// The axes.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Enumerates every point, first axis slowest.
    pub fn points(&self) -> Vec<Point> {
        let names: Vec<String> = self.axes.iter().map(|a| a.name.clone()).collect();
        let mut out = Vec::with_capacity(self.len());
        let mut idx = vec![0usize; self.axes.len()];
        loop {
            out.push(Point {
                names: names.clone(),
                values: idx
                    .iter()
                    .enumerate()
                    .map(|(a, &i)| self.axes[a].values[i])
                    .collect(),
            });
            // Odometer increment, last axis fastest.
            let mut k = self.axes.len();
            loop {
                if k == 0 {
                    return out;
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] < self.axes[k].values.len() {
                    break;
                }
                idx[k] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_product_enumeration() {
        let space = DesignSpace::new(vec![
            Axis::new("a", vec![1.0, 2.0]),
            Axis::new("b", vec![10.0, 20.0, 30.0]),
        ]);
        let pts = space.points();
        assert_eq!(pts.len(), 6);
        assert_eq!(space.len(), 6);
        assert_eq!(pts[0].get("a"), 1.0);
        assert_eq!(pts[0].get("b"), 10.0);
        assert_eq!(pts[1].get("b"), 20.0);
        assert_eq!(pts[5].get("a"), 2.0);
        assert_eq!(pts[5].get("b"), 30.0);
    }

    #[test]
    fn log_spacing_endpoints() {
        let a = Axis::log_spaced("ts", 0.5e-3, 50e-3, 5);
        assert!((a.values[0] - 0.5e-3).abs() < 1e-12);
        assert!((a.values[4] - 50e-3).abs() < 1e-9);
        for w in a.values.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn unknown_parameter_panics() {
        let space = DesignSpace::new(vec![Axis::new("a", vec![1.0])]);
        space.points()[0].get("zzz");
    }

    #[test]
    fn point_iteration() {
        let space = DesignSpace::new(vec![Axis::new("x", vec![7.0])]);
        let p = &space.points()[0];
        let pairs: Vec<(&str, f64)> = p.iter().collect();
        assert_eq!(pairs, vec![("x", 7.0)]);
    }
}
