//! The simulation-cost ledger.
//!
//! The paper claims its hierarchical design-space exploration "reduces the
//! simulation burden by a factor of 10⁴ or more" (§1): instead of simulating
//! a whole module's density matrix, HetArch simulates each *standard cell*
//! exactly (once, cached) and evolves modules with phenomenological error
//! composition. This module makes that claim quantitative for any design by
//! accounting both costs.

use serde::{Deserialize, Serialize};

/// Cost accounting for one design evaluation.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostLedger {
    /// Qubit counts of the density-matrix simulations actually run (one per
    /// distinct cell characterization).
    pub cell_sims: Vec<usize>,
    /// Qubit count of each module, had it been simulated flat.
    pub module_sizes: Vec<usize>,
    /// Module-level phenomenological operations executed (event steps,
    /// Monte-Carlo samples).
    pub module_ops: u64,
    /// Cell characterizations served from the cache instead of re-simulated.
    pub cache_hits: u64,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Records a cell characterization over `qubits` qubits.
    pub fn record_cell_sim(&mut self, qubits: usize) {
        self.cell_sims.push(qubits);
    }

    /// Records that a module spanning `qubits` qubits was evaluated
    /// phenomenologically with `ops` elementary operations.
    pub fn record_module(&mut self, qubits: usize, ops: u64) {
        self.module_sizes.push(qubits);
        self.module_ops += ops;
    }

    /// Records cache hits.
    pub fn record_cache_hits(&mut self, hits: u64) {
        self.cache_hits += hits;
    }

    /// Cost of one density-matrix step on `q` qubits: each gate or channel
    /// touches all `4^q` entries of ρ.
    pub fn dm_step_cost(q: usize) -> f64 {
        4f64.powi(q as i32)
    }

    /// Total cost actually paid: exact cell simulations plus (cheap)
    /// module-level operations.
    pub fn hierarchical_cost(&self) -> f64 {
        let cells: f64 = self.cell_sims.iter().map(|&q| Self::dm_step_cost(q)).sum();
        cells + self.module_ops as f64
    }

    /// Cost a flat (non-hierarchical) evaluation would have paid: every
    /// module-level operation executed on the module's full density matrix.
    pub fn flat_cost(&self) -> f64 {
        let max_module = self.module_sizes.iter().copied().max().unwrap_or(0);
        self.module_ops as f64 * Self::dm_step_cost(max_module)
    }

    /// The simulation-burden reduction factor (flat / hierarchical).
    pub fn reduction_factor(&self) -> f64 {
        let h = self.hierarchical_cost();
        if h == 0.0 {
            return 1.0;
        }
        self.flat_cost() / h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dm_cost_is_exponential() {
        assert_eq!(CostLedger::dm_step_cost(0), 1.0);
        assert_eq!(CostLedger::dm_step_cost(5), 1024.0);
        assert!(CostLedger::dm_step_cost(16) > 4e9);
    }

    #[test]
    fn paper_scale_reduction() {
        // A distillation-module evaluation: three cell characterizations
        // (2, 4 and 5 qubits), then ~1e5 event-simulator operations over a
        // module that spans 16 physical qubits.
        let mut ledger = CostLedger::new();
        ledger.record_cell_sim(2);
        ledger.record_cell_sim(4);
        ledger.record_cell_sim(5);
        ledger.record_module(16, 100_000);
        let r = ledger.reduction_factor();
        assert!(
            r > 1e4,
            "hierarchical evaluation should beat flat by >= 1e4, got {r:.3e}"
        );
    }

    #[test]
    fn empty_ledger_is_neutral() {
        let ledger = CostLedger::new();
        assert_eq!(ledger.reduction_factor(), 1.0);
    }

    #[test]
    fn cache_hits_do_not_add_cost() {
        let mut a = CostLedger::new();
        a.record_cell_sim(5);
        a.record_module(10, 1000);
        let mut b = a.clone();
        b.record_cache_hits(50);
        assert_eq!(a.hierarchical_cost(), b.hierarchical_cost());
    }
}
