//! # hetarch-dse
//!
//! The heterogeneous design-space exploration framework (paper §2's third
//! contribution): parameter-grid definitions, parallel sweep execution,
//! Pareto-front extraction, the simulation-cost ledger that quantifies the
//! hierarchical methodology's ~10⁴ burden reduction, and the per-application
//! explorations of §4.
//!
//! # Example
//!
//! ```
//! use hetarch_dse::space::{Axis, DesignSpace};
//! use hetarch_dse::sweep::sweep;
//! use hetarch_dse::pareto::pareto_front;
//!
//! let space = DesignSpace::new(vec![Axis::log_spaced("ts", 1e-3, 50e-3, 4)]);
//! // Toy objective: (error ~ 1/ts, footprint ~ ts).
//! let results = sweep(&space, |p| vec![1.0 / p.get("ts"), p.get("ts")]);
//! let metrics: Vec<Vec<f64>> = results.into_iter().map(|(_, m)| m).collect();
//! // Everything on this curve is Pareto-optimal.
//! assert_eq!(pareto_front(&metrics).len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod explore;
pub mod pareto;
pub mod space;
pub mod sweep;

pub use cost::CostLedger;
pub use pareto::{knee_point, pareto_front};
pub use space::{Axis, DesignSpace, Point};
pub use sweep::{sweep, sweep_on, try_sweep_on};
