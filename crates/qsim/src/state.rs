//! Dense density-matrix states.
//!
//! A [`DensityMatrix`] over `n` qubits stores the full `2^n × 2^n` complex
//! matrix ρ. This is the exact, noise-capable representation HetArch uses at
//! the *standard-cell* level (paper §2): cells involve ≲ 10 qubits, so the
//! exponential cost is confined to small systems and the characterization is
//! done once per cell.
//!
//! Qubit `0` is the least-significant bit of a basis index.

use std::fmt;

use crate::complex::C64;
use crate::error::QsimError;
use crate::kernel::{ChannelKernel1, ChannelKernel2};
use crate::matrix::Mat;

/// States per blocked lane group in the batched superoperator traversals.
/// Four f64 pairs fill a 512-bit vector register; the tail of a batch falls
/// back to the single-state path, which computes identical floats.
const LANES: usize = 4;

/// Largest qubit count for which the 1q batched apply lane-blocks over
/// states. At n = 4 a lane group is 4 × 4 KiB — comfortably within L1 —
/// while at n = 5 it is 4 × 16 KiB and the strided gathers start missing;
/// the 1q contraction is too cheap to hide that. Beyond the cutoff the
/// batch degenerates to a per-state loop (identical floats, so the choice
/// is invisible to callers).
const BATCH_1Q_MAX_QUBITS: usize = 4;

/// A density matrix over `n` qubits.
///
/// # Examples
///
/// ```
/// use hetarch_qsim::state::DensityMatrix;
/// use hetarch_qsim::matrix::Mat;
///
/// let mut rho = DensityMatrix::zero_state(2);
/// rho.apply_1q(0, &Mat::hadamard());
/// rho.apply_2q(0, 1, &Mat::cnot());
/// // Bell state: P(00) = P(11) = 1/2.
/// assert!((rho.diagonal_prob(0b00) - 0.5).abs() < 1e-12);
/// assert!((rho.diagonal_prob(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, PartialEq)]
pub struct DensityMatrix {
    n: usize,
    dim: usize,
    data: Vec<C64>,
}

impl DensityMatrix {
    /// Creates `|0…0⟩⟨0…0|` over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n > 14` (a 14-qubit density matrix already holds 2^28
    /// complex entries; larger systems belong in the stabilizer simulator).
    pub fn zero_state(n: usize) -> Self {
        assert!(
            n <= 14,
            "density matrices are limited to 14 qubits (got {n})"
        );
        let dim = 1usize << n;
        let mut data = vec![C64::ZERO; dim * dim];
        data[0] = C64::ONE;
        DensityMatrix { n, dim, data }
    }

    /// Creates ρ = |ψ⟩⟨ψ| from an (unnormalized) state vector.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidState`] if the vector length is not a
    /// power of two or the norm is zero.
    pub fn from_pure(psi: &[C64]) -> Result<Self, QsimError> {
        let dim = psi.len();
        if dim == 0 || !dim.is_power_of_two() {
            return Err(QsimError::InvalidState(format!(
                "state vector length {dim} is not a power of two"
            )));
        }
        let norm_sqr: f64 = psi.iter().map(|z| z.norm_sqr()).sum();
        if norm_sqr <= 0.0 {
            return Err(QsimError::InvalidState("zero state vector".into()));
        }
        let n = dim.trailing_zeros() as usize;
        let mut data = vec![C64::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                data[r * dim + c] = psi[r] * psi[c].conj() / norm_sqr;
            }
        }
        Ok(DensityMatrix { n, dim, data })
    }

    /// Creates a density matrix from an explicit `2^n × 2^n` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidState`] if the matrix is not square with a
    /// power-of-two dimension, is not Hermitian, or has trace far from one.
    pub fn from_matrix(m: &Mat) -> Result<Self, QsimError> {
        if m.rows() != m.cols() || !m.rows().is_power_of_two() {
            return Err(QsimError::InvalidState(format!(
                "{}x{} is not a square power-of-two matrix",
                m.rows(),
                m.cols()
            )));
        }
        let dm = DensityMatrix {
            n: m.rows().trailing_zeros() as usize,
            dim: m.rows(),
            data: m.as_slice().to_vec(),
        };
        dm.validate(1e-9)?;
        Ok(dm)
    }

    /// Creates the maximally mixed state `I / 2^n`.
    pub fn maximally_mixed(n: usize) -> Self {
        let mut dm = DensityMatrix::zero_state(n);
        let dim = dm.dim;
        dm.data.fill(C64::ZERO);
        for i in 0..dim {
            dm.data[i * dim + i] = C64::real(1.0 / dim as f64);
        }
        dm
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Matrix dimension `2^n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Entry ρ[r, c].
    #[inline]
    pub fn entry(&self, r: usize, c: usize) -> C64 {
        self.data[r * self.dim + c]
    }

    /// Mutable entry ρ[r, c]. Intended for test setup; production code should
    /// use gates and channels.
    #[inline]
    pub fn entry_mut(&mut self, r: usize, c: usize) -> &mut C64 {
        &mut self.data[r * self.dim + c]
    }

    /// Probability of measuring the computational basis state `b` (the
    /// diagonal entry ρ[b, b]).
    #[inline]
    pub fn diagonal_prob(&self, b: usize) -> f64 {
        self.data[b * self.dim + b].re
    }

    /// Trace of ρ.
    pub fn trace(&self) -> C64 {
        (0..self.dim).map(|i| self.entry(i, i)).sum()
    }

    /// Purity `tr(ρ²)`; 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        let mut acc = 0.0;
        for r in 0..self.dim {
            for c in 0..self.dim {
                // tr(ρ²) = Σ_{rc} ρ[r,c] ρ[c,r] = Σ_{rc} |ρ[r,c]|² for Hermitian ρ.
                acc += self.entry(r, c).norm_sqr();
            }
        }
        acc
    }

    /// Checks trace ≈ 1, Hermiticity, and non-negative diagonal.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidState`] describing the first violated
    /// property.
    pub fn validate(&self, tol: f64) -> Result<(), QsimError> {
        let t = self.trace();
        if !t.approx_eq(C64::ONE, tol.max(1e-9) * self.dim as f64) {
            return Err(QsimError::InvalidState(format!("trace is {t}, expected 1")));
        }
        for r in 0..self.dim {
            if self.entry(r, r).re < -tol {
                return Err(QsimError::InvalidState(format!(
                    "negative diagonal entry {} at index {r}",
                    self.entry(r, r)
                )));
            }
            for c in (r + 1)..self.dim {
                if !self.entry(r, c).approx_eq(self.entry(c, r).conj(), tol) {
                    return Err(QsimError::InvalidState(format!(
                        "not Hermitian at ({r},{c})"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Applies ρ → M ρ M† for an arbitrary 2×2 matrix `m` on qubit `q`.
    ///
    /// This is the shared kernel behind unitary gates and Kraus operators.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n` or `m` is not 2×2.
    pub fn apply_conjugation_1q(&mut self, q: usize, m: &Mat) {
        assert!(q < self.n, "qubit {q} out of range for {} qubits", self.n);
        assert_eq!((m.rows(), m.cols()), (2, 2), "expected a 2x2 matrix");
        let mask = 1usize << q;
        let dim = self.dim;
        let u = [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]];
        // Left multiply: rows.
        for i in 0..dim {
            if i & mask != 0 {
                continue;
            }
            let r0 = i;
            let r1 = i | mask;
            for c in 0..dim {
                let a = self.data[r0 * dim + c];
                let b = self.data[r1 * dim + c];
                self.data[r0 * dim + c] = u[0] * a + u[1] * b;
                self.data[r1 * dim + c] = u[2] * a + u[3] * b;
            }
        }
        // Right multiply by M†: columns.
        for r in 0..dim {
            let row = r * dim;
            for i in 0..dim {
                if i & mask != 0 {
                    continue;
                }
                let c0 = i;
                let c1 = i | mask;
                let a = self.data[row + c0];
                let b = self.data[row + c1];
                self.data[row + c0] = a * u[0].conj() + b * u[1].conj();
                self.data[row + c1] = a * u[2].conj() + b * u[3].conj();
            }
        }
    }

    /// Applies ρ → M ρ M† for an arbitrary 4×4 matrix on qubits
    /// `(q_hi, q_lo)`, where the matrix basis index is `(bit_hi << 1) | bit_lo`.
    ///
    /// # Panics
    ///
    /// Panics if the qubits coincide or are out of range, or `m` is not 4×4.
    pub fn apply_conjugation_2q(&mut self, q_hi: usize, q_lo: usize, m: &Mat) {
        assert!(q_hi < self.n && q_lo < self.n, "qubit out of range");
        assert_ne!(q_hi, q_lo, "two-qubit gate requires distinct qubits");
        assert_eq!((m.rows(), m.cols()), (4, 4), "expected a 4x4 matrix");
        let mh = 1usize << q_hi;
        let ml = 1usize << q_lo;
        let dim = self.dim;
        let mut u = [C64::ZERO; 16];
        u.copy_from_slice(m.as_slice());
        // Left multiply.
        let mut tmp = [C64::ZERO; 4];
        for base in 0..dim {
            if base & (mh | ml) != 0 {
                continue;
            }
            // Block row index k = (bit_hi << 1) | bit_lo.
            let rows = [
                base * dim,
                (base | ml) * dim,
                (base | mh) * dim,
                (base | mh | ml) * dim,
            ];
            for c in 0..dim {
                for (k, t) in tmp.iter_mut().enumerate() {
                    let mut acc = C64::ZERO;
                    for j in 0..4 {
                        acc += u[k * 4 + j] * self.data[rows[j] + c];
                    }
                    *t = acc;
                }
                for (k, t) in tmp.iter().enumerate() {
                    self.data[rows[k] + c] = *t;
                }
            }
        }
        // Right multiply by M†.
        for r in 0..dim {
            let row = r * dim;
            for base in 0..dim {
                if base & (mh | ml) != 0 {
                    continue;
                }
                let cols = [base, base | ml, base | mh, base | mh | ml];
                for (k, t) in tmp.iter_mut().enumerate() {
                    let mut acc = C64::ZERO;
                    for j in 0..4 {
                        acc += self.data[row + cols[j]] * u[k * 4 + j].conj();
                    }
                    *t = acc;
                }
                for (k, t) in tmp.iter().enumerate() {
                    self.data[row + cols[k]] = *t;
                }
            }
        }
    }

    /// Applies a precompiled single-qubit channel superoperator (4×4,
    /// row-major over `vec(B)[i*2 + j] = B[i, j]`) to qubit `q` in one
    /// allocation-free pass: every 2×2 block of ρ addressed by the qubit's
    /// bit in the row and column index is replaced by `S · vec(B)`.
    ///
    /// The contraction runs on the kernel's real/imag-split coefficient
    /// slices with the four output accumulators in the inner loop, so LLVM
    /// turns it into straight-line vector FMAs. The accumulation order per
    /// output entry (ascending `j`) matches the interleaved complex product
    /// exactly, so results are bit-identical to the pre-split path.
    ///
    /// This is the hot path behind [`crate::kernel::ChannelKernel1`].
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    pub(crate) fn apply_superop_1q(&mut self, q: usize, kernel: &ChannelKernel1) {
        assert!(q < self.n, "qubit {q} out of range for {} qubits", self.n);
        let (s_re, s_im) = kernel.split();
        let mask = 1usize << q;
        let low = mask - 1;
        let dim = self.dim;
        let half = dim / 2;
        for br in 0..half {
            // br enumerates row indices with the qubit's bit deleted;
            // re-insert a zero bit at position q.
            let r0 = ((br & !low) << 1) | (br & low);
            let row0 = r0 * dim;
            let row1 = (r0 | mask) * dim;
            for bc in 0..half {
                let c0 = ((bc & !low) << 1) | (bc & low);
                let c1 = c0 | mask;
                let idx = [row0 + c0, row0 + c1, row1 + c0, row1 + c1];
                let mut b_re = [0.0f64; 4];
                let mut b_im = [0.0f64; 4];
                for (j, &ix) in idx.iter().enumerate() {
                    let z = self.data[ix];
                    b_re[j] = z.re;
                    b_im[j] = z.im;
                }
                let mut o_re = [0.0f64; 4];
                let mut o_im = [0.0f64; 4];
                for j in 0..4 {
                    let br_ = b_re[j];
                    let bi_ = b_im[j];
                    for i in 0..4 {
                        let sr = s_re[i * 4 + j];
                        let si = s_im[i * 4 + j];
                        o_re[i] += sr * br_ - si * bi_;
                        o_im[i] += sr * bi_ + si * br_;
                    }
                }
                for (i, &ix) in idx.iter().enumerate() {
                    self.data[ix] = C64 {
                        re: o_re[i],
                        im: o_im[i],
                    };
                }
            }
        }
    }

    /// Applies a precompiled single-qubit channel superoperator to qubit
    /// `q` of every state in `states`, blocking over states: full lane
    /// groups of [`LANES`] states are gathered block-position by
    /// block-position (component-major, so the innermost loop runs across
    /// states), the remainder goes through the single-state path. Per state
    /// the arithmetic and its order are identical to
    /// [`apply_superop_1q`](Self::apply_superop_1q) — batching never mixes
    /// floats between states — so results are bit-identical to applying the
    /// kernel to each state in turn.
    ///
    /// Lane blocking only pays while a whole lane group of states fits in
    /// the fast cache — the 1q contraction does so little arithmetic per
    /// block (4 outputs × 4 terms) that strided gathers across large states
    /// cost more than they amortize. Above [`BATCH_1Q_MAX_QUBITS`] the
    /// states are processed one at a time instead; because the per-state
    /// float path is identical either way, the cutoff affects speed only,
    /// never results.
    ///
    /// An empty batch is a no-op. This is the hot path behind
    /// [`crate::kernel::ChannelKernel1::apply_batch`] and the batched
    /// backend in [`crate::backend`].
    ///
    /// # Panics
    ///
    /// Panics if the states disagree on qubit count or `q` is out of range.
    pub fn apply_superop_1q_batch(states: &mut [DensityMatrix], q: usize, kernel: &ChannelKernel1) {
        let Some(first) = states.first() else {
            return;
        };
        let n = first.n;
        assert!(q < n, "qubit {q} out of range for {n} qubits");
        for s in states.iter() {
            assert_eq!(s.n, n, "batched states must share the qubit count");
        }
        if n > BATCH_1Q_MAX_QUBITS {
            for st in states {
                st.apply_superop_1q(q, kernel);
            }
            return;
        }
        let (s_re, s_im) = kernel.split();
        let mask = 1usize << q;
        let low = mask - 1;
        let dim = first.dim;
        let half = dim / 2;
        let mut chunks = states.chunks_exact_mut(LANES);
        for chunk in chunks.by_ref() {
            for br in 0..half {
                let r0 = ((br & !low) << 1) | (br & low);
                let row0 = r0 * dim;
                let row1 = (r0 | mask) * dim;
                for bc in 0..half {
                    let c0 = ((bc & !low) << 1) | (bc & low);
                    let c1 = c0 | mask;
                    let idx = [row0 + c0, row0 + c1, row1 + c0, row1 + c1];
                    let mut b_re = [[0.0f64; LANES]; 4];
                    let mut b_im = [[0.0f64; LANES]; 4];
                    for (l, st) in chunk.iter().enumerate() {
                        for (j, &ix) in idx.iter().enumerate() {
                            let z = st.data[ix];
                            b_re[j][l] = z.re;
                            b_im[j][l] = z.im;
                        }
                    }
                    let mut o_re = [[0.0f64; LANES]; 4];
                    let mut o_im = [[0.0f64; LANES]; 4];
                    // Output-major: only one pair of lane accumulators is
                    // live inside the j loop, so they stay in vector
                    // registers. Per (i, l) the j-ascending order matches the
                    // single-state path exactly.
                    for i in 0..4 {
                        let mut acc_re = [0.0f64; LANES];
                        let mut acc_im = [0.0f64; LANES];
                        for j in 0..4 {
                            let sr = s_re[i * 4 + j];
                            let si = s_im[i * 4 + j];
                            for l in 0..LANES {
                                acc_re[l] += sr * b_re[j][l] - si * b_im[j][l];
                                acc_im[l] += sr * b_im[j][l] + si * b_re[j][l];
                            }
                        }
                        o_re[i] = acc_re;
                        o_im[i] = acc_im;
                    }
                    for (l, st) in chunk.iter_mut().enumerate() {
                        for (i, &ix) in idx.iter().enumerate() {
                            st.data[ix] = C64 {
                                re: o_re[i][l],
                                im: o_im[i][l],
                            };
                        }
                    }
                }
            }
        }
        for st in chunks.into_remainder() {
            st.apply_superop_1q(q, kernel);
        }
    }

    /// Applies a precompiled two-qubit channel superoperator to qubits
    /// `(q_hi, q_lo)` in one allocation-free pass. Each 4×4 block of ρ
    /// (row and column sub-indices `(bit_hi << 1) | bit_lo`) is gathered
    /// into `vec(B)[i*4 + j] = B[i, j]` and contracted against the kernel's
    /// compressed rows in ascending-column order on real/imag-split slices
    /// (bit-identical to the interleaved complex sum; see the module docs
    /// of [`crate::kernel`]).
    ///
    /// # Panics
    ///
    /// Panics if the qubits coincide or are out of range.
    pub(crate) fn apply_superop_2q(&mut self, q_hi: usize, q_lo: usize, kernel: &ChannelKernel2) {
        assert!(q_hi < self.n && q_lo < self.n, "qubit out of range");
        assert_ne!(q_hi, q_lo, "two-qubit channel requires distinct qubits");
        let (nnz, cols, v_re, v_im) = kernel.rows();
        let mh = 1usize << q_hi;
        let ml = 1usize << q_lo;
        let dim = self.dim;
        for base_r in 0..dim {
            if base_r & (mh | ml) != 0 {
                continue;
            }
            let rows = [
                base_r * dim,
                (base_r | ml) * dim,
                (base_r | mh) * dim,
                (base_r | mh | ml) * dim,
            ];
            for base_c in 0..dim {
                if base_c & (mh | ml) != 0 {
                    continue;
                }
                let blk = [base_c, base_c | ml, base_c | mh, base_c | mh | ml];
                let mut b_re = [0.0f64; 16];
                let mut b_im = [0.0f64; 16];
                for (i, &row) in rows.iter().enumerate() {
                    for (j, &col) in blk.iter().enumerate() {
                        let z = self.data[row + col];
                        b_re[i * 4 + j] = z.re;
                        b_im[i * 4 + j] = z.im;
                    }
                }
                let mut o_re = [0.0f64; 16];
                let mut o_im = [0.0f64; 16];
                for r in 0..16 {
                    let k = nnz[r] as usize;
                    let mut ar = 0.0f64;
                    let mut ai = 0.0f64;
                    for t in 0..k {
                        let c = cols[r][t] as usize;
                        let wr = v_re[r][t];
                        let wi = v_im[r][t];
                        ar += wr * b_re[c] - wi * b_im[c];
                        ai += wr * b_im[c] + wi * b_re[c];
                    }
                    o_re[r] = ar;
                    o_im[r] = ai;
                }
                for (i, &row) in rows.iter().enumerate() {
                    for (j, &col) in blk.iter().enumerate() {
                        self.data[row + col] = C64 {
                            re: o_re[i * 4 + j],
                            im: o_im[i * 4 + j],
                        };
                    }
                }
            }
        }
    }

    /// Applies a precompiled two-qubit channel superoperator to qubits
    /// `(q_hi, q_lo)` of every state in `states`, blocking over states:
    /// full lane groups of [`LANES`] states are gathered 4×4 block by 4×4
    /// block into component-major lane arrays and contracted with the
    /// innermost loop across states, so the per-row sparse sum becomes a
    /// vector FMA chain; the remainder goes through the single-state path.
    /// Per state the arithmetic and its ascending-column order are
    /// identical to [`apply_superop_2q`](Self::apply_superop_2q), so
    /// results are bit-identical to applying the kernel per state.
    ///
    /// An empty batch is a no-op. This is the hot path behind
    /// [`crate::kernel::ChannelKernel2::apply_batch`] and the batched
    /// backend in [`crate::backend`].
    ///
    /// # Panics
    ///
    /// Panics if the states disagree on qubit count, the qubits coincide,
    /// or either qubit is out of range.
    pub fn apply_superop_2q_batch(
        states: &mut [DensityMatrix],
        q_hi: usize,
        q_lo: usize,
        kernel: &ChannelKernel2,
    ) {
        let Some(first) = states.first() else {
            return;
        };
        let n = first.n;
        assert!(q_hi < n && q_lo < n, "qubit out of range");
        assert_ne!(q_hi, q_lo, "two-qubit channel requires distinct qubits");
        for s in states.iter() {
            assert_eq!(s.n, n, "batched states must share the qubit count");
        }
        let (nnz, cols, v_re, v_im) = kernel.rows();
        let mh = 1usize << q_hi;
        let ml = 1usize << q_lo;
        let dim = first.dim;
        let mut chunks = states.chunks_exact_mut(LANES);
        for chunk in chunks.by_ref() {
            for base_r in 0..dim {
                if base_r & (mh | ml) != 0 {
                    continue;
                }
                let rows = [
                    base_r * dim,
                    (base_r | ml) * dim,
                    (base_r | mh) * dim,
                    (base_r | mh | ml) * dim,
                ];
                for base_c in 0..dim {
                    if base_c & (mh | ml) != 0 {
                        continue;
                    }
                    let blk = [base_c, base_c | ml, base_c | mh, base_c | mh | ml];
                    let mut b_re = [[0.0f64; LANES]; 16];
                    let mut b_im = [[0.0f64; LANES]; 16];
                    for (l, st) in chunk.iter().enumerate() {
                        for (i, &row) in rows.iter().enumerate() {
                            for (j, &col) in blk.iter().enumerate() {
                                let z = st.data[row + col];
                                b_re[i * 4 + j][l] = z.re;
                                b_im[i * 4 + j][l] = z.im;
                            }
                        }
                    }
                    let mut o_re = [[0.0f64; LANES]; 16];
                    let mut o_im = [[0.0f64; LANES]; 16];
                    // Row-local lane accumulators stay in vector registers
                    // across the sparse sum; per (r, l) the ascending-column
                    // order matches the single-state path exactly.
                    for r in 0..16 {
                        let k = nnz[r] as usize;
                        let mut acc_re = [0.0f64; LANES];
                        let mut acc_im = [0.0f64; LANES];
                        for t in 0..k {
                            let c = cols[r][t] as usize;
                            let wr = v_re[r][t];
                            let wi = v_im[r][t];
                            for l in 0..LANES {
                                acc_re[l] += wr * b_re[c][l] - wi * b_im[c][l];
                                acc_im[l] += wr * b_im[c][l] + wi * b_re[c][l];
                            }
                        }
                        o_re[r] = acc_re;
                        o_im[r] = acc_im;
                    }
                    for (l, st) in chunk.iter_mut().enumerate() {
                        for (i, &row) in rows.iter().enumerate() {
                            for (j, &col) in blk.iter().enumerate() {
                                st.data[row + col] = C64 {
                                    re: o_re[i * 4 + j][l],
                                    im: o_im[i * 4 + j][l],
                                };
                            }
                        }
                    }
                }
            }
        }
        for st in chunks.into_remainder() {
            st.apply_superop_2q(q_hi, q_lo, kernel);
        }
    }

    /// Applies a single-qubit unitary gate.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not unitary (debug builds only) or dimensions mismatch.
    pub fn apply_1q(&mut self, q: usize, u: &Mat) {
        debug_assert!(u.is_unitary(1e-9), "apply_1q requires a unitary matrix");
        self.apply_conjugation_1q(q, u);
    }

    /// Applies a two-qubit unitary gate on `(q_hi, q_lo)`.
    ///
    /// For [`Mat::cnot`], `q_hi` is the control and `q_lo` the target.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not unitary (debug builds only) or dimensions mismatch.
    pub fn apply_2q(&mut self, q_hi: usize, q_lo: usize, u: &Mat) {
        debug_assert!(u.is_unitary(1e-9), "apply_2q requires a unitary matrix");
        self.apply_conjugation_2q(q_hi, q_lo, u);
    }

    /// Tensor product `self ⊗ other`; `other`'s qubits become the new
    /// high-order qubits `n..n+m`.
    pub fn tensor(&self, other: &DensityMatrix) -> DensityMatrix {
        let n = self.n + other.n;
        assert!(n <= 14, "tensor product would exceed the 14-qubit limit");
        let dim = 1usize << n;
        let mut data = vec![C64::ZERO; dim * dim];
        for r2 in 0..other.dim {
            for c2 in 0..other.dim {
                let v2 = other.entry(r2, c2);
                if v2 == C64::ZERO {
                    continue;
                }
                for r1 in 0..self.dim {
                    for c1 in 0..self.dim {
                        let v1 = self.entry(r1, c1);
                        if v1 == C64::ZERO {
                            continue;
                        }
                        let r = (r2 << self.n) | r1;
                        let c = (c2 << self.n) | c1;
                        data[r * dim + c] = v1 * v2;
                    }
                }
            }
        }
        DensityMatrix { n, dim, data }
    }

    /// Traces out all qubits not in `keep`; kept qubit `keep[j]` becomes
    /// qubit `j` of the result.
    ///
    /// # Panics
    ///
    /// Panics if `keep` contains duplicates or out-of-range indices.
    pub fn partial_trace(&self, keep: &[usize]) -> DensityMatrix {
        let mut seen = vec![false; self.n];
        for &q in keep {
            assert!(q < self.n, "kept qubit {q} out of range");
            assert!(!seen[q], "duplicate kept qubit {q}");
            seen[q] = true;
        }
        let traced: Vec<usize> = (0..self.n).filter(|q| !seen[*q]).collect();
        let kn = keep.len();
        let kdim = 1usize << kn;
        let tdim = 1usize << traced.len();
        let expand = |bits: usize, positions: &[usize]| -> usize {
            let mut out = 0usize;
            for (j, &q) in positions.iter().enumerate() {
                if (bits >> j) & 1 == 1 {
                    out |= 1 << q;
                }
            }
            out
        };
        let mut data = vec![C64::ZERO; kdim * kdim];
        for rk in 0..kdim {
            let rbase = expand(rk, keep);
            for ck in 0..kdim {
                let cbase = expand(ck, keep);
                let mut acc = C64::ZERO;
                for t in 0..tdim {
                    let toff = expand(t, &traced);
                    acc += self.entry(rbase | toff, cbase | toff);
                }
                data[rk * kdim + ck] = acc;
            }
        }
        DensityMatrix {
            n: kn,
            dim: kdim,
            data,
        }
    }

    /// Expectation value `tr(ρ P)` of the Pauli string with X support
    /// `xmask` and Z support `zmask` (Y where both bits are set).
    pub fn expectation_pauli(&self, xmask: usize, zmask: usize) -> C64 {
        assert!(
            xmask < self.dim && zmask < self.dim,
            "pauli mask out of range"
        );
        let ny = (xmask & zmask).count_ones();
        // i^{ny} prefactor from Y = i X Z.
        let prefactor = match ny % 4 {
            0 => C64::ONE,
            1 => C64::I,
            2 => -C64::ONE,
            _ => -C64::I,
        };
        let mut acc = C64::ZERO;
        for b in 0..self.dim {
            let sign = if ((b & zmask).count_ones()).is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            acc += self.entry(b, b ^ xmask).scale(sign);
        }
        acc * prefactor
    }

    /// Rescales ρ by `1/p` (used after post-selection).
    pub fn renormalize(&mut self, p: f64) {
        assert!(
            p > 0.0,
            "cannot renormalize by non-positive probability {p}"
        );
        let inv = 1.0 / p;
        for v in &mut self.data {
            *v = v.scale(inv);
        }
    }

    /// Borrows the row-major backing data.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutably borrows the row-major backing data.
    ///
    /// Backend implementations (see [`crate::backend`]) may rely on the
    /// following layout invariants, which are stable API:
    ///
    /// - the slice holds exactly `dim² = 4^n` entries, where
    ///   `dim = 2^n = self.dim()`;
    /// - entry `ρ[r, c]` lives at index `r * dim + c` (row-major);
    /// - qubit `0` is the least-significant bit of a basis index, so the
    ///   2×2 block of qubit `q` is addressed by bit `1 << q` of `r` and `c`.
    ///
    /// Callers must not change the slice length and are responsible for
    /// keeping the matrix a valid state (Hermitian, unit trace) if it is
    /// handed back to code that assumes one — [`validate`](Self::validate)
    /// checks those invariants.
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Converts into a [`Mat`] (for diagnostics and tests).
    pub fn to_mat(&self) -> Mat {
        Mat::from_rows(self.dim, self.dim, self.data.clone())
    }
}

impl fmt::Debug for DensityMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DensityMatrix {{ n: {}, trace: {}, purity: {:.6} }}",
            self.n,
            self.trace(),
            self.purity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn zero_state_is_pure_and_valid() {
        let rho = DensityMatrix::zero_state(3);
        assert_eq!(rho.num_qubits(), 3);
        assert!((rho.purity() - 1.0).abs() < TOL);
        rho.validate(TOL).unwrap();
    }

    #[test]
    fn x_gate_flips_population() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_1q(1, &Mat::pauli_x());
        assert!((rho.diagonal_prob(0b10) - 1.0).abs() < TOL);
    }

    #[test]
    fn bell_state_construction() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_1q(0, &Mat::hadamard());
        rho.apply_2q(0, 1, &Mat::cnot());
        assert!((rho.diagonal_prob(0) - 0.5).abs() < TOL);
        assert!((rho.diagonal_prob(3) - 0.5).abs() < TOL);
        assert!(rho.entry(0, 3).approx_eq(C64::real(0.5), TOL));
        assert!((rho.purity() - 1.0).abs() < TOL);
    }

    #[test]
    fn cnot_direction_respected() {
        // Control = qubit 1, target = qubit 0 with |01> (qubit0=1): control is 0 -> no flip.
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_1q(0, &Mat::pauli_x());
        rho.apply_2q(1, 0, &Mat::cnot());
        assert!((rho.diagonal_prob(0b01) - 1.0).abs() < TOL);
        // Now control = qubit 0 (set), target qubit 1 -> flips.
        rho.apply_2q(0, 1, &Mat::cnot());
        assert!((rho.diagonal_prob(0b11) - 1.0).abs() < TOL);
    }

    #[test]
    fn from_pure_normalizes() {
        let psi = [C64::real(1.0), C64::real(1.0)];
        let rho = DensityMatrix::from_pure(&psi).unwrap();
        assert!((rho.diagonal_prob(0) - 0.5).abs() < TOL);
        rho.validate(TOL).unwrap();
    }

    #[test]
    fn from_pure_rejects_bad_input() {
        assert!(DensityMatrix::from_pure(&[]).is_err());
        assert!(DensityMatrix::from_pure(&[C64::ZERO, C64::ZERO]).is_err());
        assert!(DensityMatrix::from_pure(&[C64::ONE, C64::ONE, C64::ONE]).is_err());
    }

    #[test]
    fn maximally_mixed_purity() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!((rho.purity() - 0.25).abs() < TOL);
        rho.validate(TOL).unwrap();
    }

    #[test]
    fn partial_trace_of_bell_is_mixed() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_1q(0, &Mat::hadamard());
        rho.apply_2q(0, 1, &Mat::cnot());
        let red = rho.partial_trace(&[0]);
        assert_eq!(red.num_qubits(), 1);
        assert!((red.diagonal_prob(0) - 0.5).abs() < TOL);
        assert!((red.purity() - 0.5).abs() < TOL);
    }

    #[test]
    fn partial_trace_of_product_state() {
        let mut a = DensityMatrix::zero_state(1);
        a.apply_1q(0, &Mat::pauli_x());
        let b = DensityMatrix::zero_state(1);
        let ab = a.tensor(&b); // qubit 0 = |1>, qubit 1 = |0>
        assert!((ab.diagonal_prob(0b01) - 1.0).abs() < TOL);
        let ra = ab.partial_trace(&[0]);
        assert!((ra.diagonal_prob(1) - 1.0).abs() < TOL);
        let rb = ab.partial_trace(&[1]);
        assert!((rb.diagonal_prob(0) - 1.0).abs() < TOL);
    }

    #[test]
    fn tensor_trace_is_product_of_traces() {
        let a = DensityMatrix::maximally_mixed(1);
        let b = DensityMatrix::zero_state(2);
        let ab = a.tensor(&b);
        assert_eq!(ab.num_qubits(), 3);
        assert!(ab.trace().approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn pauli_expectations_on_bell_state() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_1q(0, &Mat::hadamard());
        rho.apply_2q(0, 1, &Mat::cnot());
        // Φ+ stabilizers: XX = +1, ZZ = +1, YY = -1.
        assert!(rho.expectation_pauli(0b11, 0b00).approx_eq(C64::ONE, TOL));
        assert!(rho.expectation_pauli(0b00, 0b11).approx_eq(C64::ONE, TOL));
        assert!(rho.expectation_pauli(0b11, 0b11).approx_eq(-C64::ONE, TOL));
        // Single-qubit Z has zero expectation.
        assert!(rho.expectation_pauli(0b00, 0b01).approx_eq(C64::ZERO, TOL));
    }

    #[test]
    fn unitary_preserves_trace_and_purity() {
        let mut rho = DensityMatrix::zero_state(3);
        rho.apply_1q(0, &Mat::hadamard());
        rho.apply_1q(2, &Mat::t_gate());
        rho.apply_2q(0, 2, &Mat::cz());
        rho.apply_2q(2, 1, &Mat::cnot());
        assert!(rho.trace().approx_eq(C64::ONE, TOL));
        assert!((rho.purity() - 1.0).abs() < 1e-10);
        rho.validate(1e-10).unwrap();
    }

    #[test]
    fn swap_gate_exchanges_qubits() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_1q(0, &Mat::pauli_x());
        rho.apply_2q(0, 1, &Mat::swap());
        assert!((rho.diagonal_prob(0b10) - 1.0).abs() < TOL);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn two_qubit_gate_same_qubit_panics() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_2q(1, 1, &Mat::cnot());
    }

    #[test]
    fn renormalize_restores_trace() {
        let mut rho = DensityMatrix::zero_state(1);
        for v in 0..2 {
            let e = rho.entry(v, v).scale(0.5);
            *rho.entry_mut(v, v) = e;
        }
        rho.renormalize(0.5);
        assert!(rho.trace().approx_eq(C64::ONE, TOL));
    }
}
