//! Pluggable density-matrix apply backends.
//!
//! HetArch's hottest loop applies the *same* noise channel to *many*
//! density-matrix states: every Pauli-eigenstate probe during standard-cell
//! characterization and every pair state in a DEJMPS distillation batch.
//! [`DmBackend`] abstracts that step so callers write
//! `backend.apply_1q(&ch, states, q)` once and the execution strategy —
//! one state at a time or blocked across the batch — is chosen in a single
//! place:
//!
//! - [`ScalarBackend`] applies the compiled kernel to each state in turn.
//!   It is the *reference backend*: a thin loop over the long-standing
//!   single-state path, mirroring how `apply_reference` serves as the
//!   Kraus-sum oracle for the kernels themselves.
//! - [`BatchedBackend`] routes the whole slice through
//!   [`ChannelKernel1::apply_batch`](crate::kernel::ChannelKernel1::apply_batch)
//!   /
//!   [`ChannelKernel2::apply_batch`](crate::kernel::ChannelKernel2::apply_batch),
//!   which block over states so the contraction vectorizes across the
//!   batch. Batching never mixes floats between states, so both backends
//!   produce bit-identical results (the differential suite in
//!   `tests/backend_differential.rs` pins this, and additionally checks
//!   both against the Kraus-sum reference to ≤1e-12).
//!
//! [`active`] returns the process-wide backend: `HETARCH_DM_BACKEND=scalar`
//! opts out of batching (the default is `batched`), and [`force_active`]
//! overrides the choice at runtime for benchmarks that compare the two in
//! one process.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::channels::{Kraus1, Kraus2};
use crate::state::DensityMatrix;

/// Strategy for applying compiled channel kernels to one or many states.
///
/// Implementations must be pure routing: the same floats as the scalar
/// single-state apply, in the same per-state order, for any batch size
/// (including 0 and 1). The contract is enforced differentially in
/// `tests/backend_differential.rs`.
pub trait DmBackend: std::fmt::Debug + Send + Sync {
    /// Short stable identifier (`"scalar"`, `"batched"`) for reports.
    fn name(&self) -> &'static str;

    /// Applies a single-qubit channel to qubit `q` of every state.
    fn apply_1q(&self, ch: &Kraus1, states: &mut [DensityMatrix], q: usize);

    /// Applies a two-qubit channel to qubits `(q_hi, q_lo)` of every state.
    fn apply_2q(&self, ch: &Kraus2, states: &mut [DensityMatrix], q_hi: usize, q_lo: usize);

    /// Convenience wrapper for a single state.
    fn apply_1q_one(&self, ch: &Kraus1, rho: &mut DensityMatrix, q: usize) {
        self.apply_1q(ch, std::slice::from_mut(rho), q);
    }

    /// Convenience wrapper for a single state.
    fn apply_2q_one(&self, ch: &Kraus2, rho: &mut DensityMatrix, q_hi: usize, q_lo: usize) {
        self.apply_2q(ch, std::slice::from_mut(rho), q_hi, q_lo);
    }
}

/// Reference backend: the compiled kernel applied to each state in turn.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalarBackend;

impl DmBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn apply_1q(&self, ch: &Kraus1, states: &mut [DensityMatrix], q: usize) {
        for rho in states {
            ch.apply(rho, q);
        }
    }

    fn apply_2q(&self, ch: &Kraus2, states: &mut [DensityMatrix], q_hi: usize, q_lo: usize) {
        for rho in states {
            ch.apply(rho, q_hi, q_lo);
        }
    }
}

/// Batched backend: one kernel pass blocked across the whole state slice.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchedBackend;

impl DmBackend for BatchedBackend {
    fn name(&self) -> &'static str {
        "batched"
    }

    fn apply_1q(&self, ch: &Kraus1, states: &mut [DensityMatrix], q: usize) {
        ch.apply_batch(states, q);
    }

    fn apply_2q(&self, ch: &Kraus2, states: &mut [DensityMatrix], q_hi: usize, q_lo: usize) {
        ch.apply_batch(states, q_hi, q_lo);
    }
}

/// The scalar reference backend as a borrowable static.
pub static SCALAR: ScalarBackend = ScalarBackend;

/// The batched backend as a borrowable static.
pub static BATCHED: BatchedBackend = BatchedBackend;

/// Runtime choice between the two built-in backends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendChoice {
    /// [`ScalarBackend`].
    Scalar,
    /// [`BatchedBackend`].
    Batched,
}

// 0 = no runtime override (fall back to the environment default).
static FORCED: AtomicU8 = AtomicU8::new(0);
static ENV_DEFAULT: OnceLock<BackendChoice> = OnceLock::new();

fn env_default() -> BackendChoice {
    *ENV_DEFAULT.get_or_init(|| {
        match std::env::var("HETARCH_DM_BACKEND").ok().as_deref() {
            Some("scalar") => BackendChoice::Scalar,
            // Unknown values fall through to the default rather than
            // aborting a long run over a typo; the differential suite
            // guarantees both backends agree anyway.
            _ => BackendChoice::Batched,
        }
    })
}

/// The process-wide active backend.
///
/// Resolution order: a [`force_active`] override if one is set, else the
/// `HETARCH_DM_BACKEND` environment variable (`scalar` or `batched`, read
/// once), else [`BatchedBackend`].
pub fn active() -> &'static dyn DmBackend {
    let choice = match FORCED.load(Ordering::Relaxed) {
        1 => BackendChoice::Scalar,
        2 => BackendChoice::Batched,
        _ => env_default(),
    };
    match choice {
        BackendChoice::Scalar => &SCALAR,
        BackendChoice::Batched => &BATCHED,
    }
}

/// Overrides (or, with `None`, clears the override of) the backend returned
/// by [`active`], regardless of the environment. Intended for benchmarks
/// and tests that compare both backends in one process; both backends are
/// bit-identical, so flipping this never changes results — only speed.
pub fn force_active(choice: Option<BackendChoice>) {
    let v = match choice {
        None => 0,
        Some(BackendChoice::Scalar) => 1,
        Some(BackendChoice::Batched) => 2,
    };
    FORCED.store(v, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::IdleParams;
    use crate::gates;

    fn probe_states(count: usize) -> Vec<DensityMatrix> {
        (0..count)
            .map(|i| {
                let mut rho = DensityMatrix::zero_state(3);
                gates::rx(&mut rho, 0, 0.3 + 0.1 * i as f64);
                gates::cnot(&mut rho, 0, 1);
                gates::ry(&mut rho, 2, 0.7);
                rho
            })
            .collect()
    }

    #[test]
    fn backends_are_bit_identical() {
        let ch1 = IdleParams::new(300e-6, 150e-6)
            .unwrap()
            .channel(40e-6)
            .unwrap();
        let ch2 = Kraus2::depolarizing(0.07).unwrap();
        for count in [0usize, 1, 3, 4, 7, 9] {
            let mut scalar = probe_states(count);
            let mut batched = scalar.clone();
            SCALAR.apply_1q(&ch1, &mut scalar, 1);
            BATCHED.apply_1q(&ch1, &mut batched, 1);
            assert!(scalar == batched, "1q mismatch at batch size {count}");
            SCALAR.apply_2q(&ch2, &mut scalar, 2, 0);
            BATCHED.apply_2q(&ch2, &mut batched, 2, 0);
            assert!(scalar == batched, "2q mismatch at batch size {count}");
        }
    }

    #[test]
    fn force_active_overrides_selection() {
        force_active(Some(BackendChoice::Scalar));
        assert_eq!(active().name(), "scalar");
        force_active(Some(BackendChoice::Batched));
        assert_eq!(active().name(), "batched");
        force_active(None);
        // Back to the environment default (batched unless overridden).
        let default_name = active().name();
        assert!(default_name == "batched" || default_name == "scalar");
    }
}
