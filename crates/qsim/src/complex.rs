//! Minimal complex arithmetic for density-matrix simulation.
//!
//! `num-complex` is deliberately not used: the simulator needs only a small,
//! predictable surface (arithmetic, conjugation, magnitude, `e^{iθ}`), and
//! keeping it local lets the whole workspace stay within its approved
//! dependency set.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A double-precision complex number.
///
/// # Examples
///
/// ```
/// use hetarch_qsim::complex::C64;
///
/// let z = C64::new(3.0, 4.0);
/// assert_eq!(z.norm_sqr(), 25.0);
/// assert_eq!(z.conj(), C64::new(3.0, -4.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hetarch_qsim::complex::C64;
    /// let z = C64::expi(std::f64::consts::PI);
    /// assert!((z.re + 1.0).abs() < 1e-12);
    /// assert!(z.im.abs() < 1e-12);
    /// ```
    #[inline]
    pub fn expi(theta: f64) -> Self {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Returns `|z|²`, avoiding the square root of [`C64::abs`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Returns true when both parts are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Returns true when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.norm_sqr();
        C64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(1.5, -2.5);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert!((z - z).approx_eq(C64::ZERO, TOL));
        assert!((z + (-z)).approx_eq(C64::ZERO, TOL));
    }

    #[test]
    fn multiplication_matches_manual_expansion() {
        let a = C64::new(2.0, 3.0);
        let b = C64::new(-1.0, 4.0);
        // (2+3i)(-1+4i) = -2 + 8i - 3i + 12i^2 = -14 + 5i
        assert!((a * b).approx_eq(C64::new(-14.0, 5.0), TOL));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = C64::new(0.3, -0.7);
        let b = C64::new(2.0, 1.0);
        assert!(((a * b) / b).approx_eq(a, TOL));
    }

    #[test]
    fn conjugation_and_norm() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert!((z * z.conj()).approx_eq(C64::real(25.0), TOL));
    }

    #[test]
    fn expi_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * 0.5;
            assert!((C64::expi(theta).abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn expi_addition_theorem() {
        let a = 0.37;
        let b = 1.21;
        assert!((C64::expi(a) * C64::expi(b)).approx_eq(C64::expi(a + b), TOL));
    }

    #[test]
    fn sum_of_complex_iterator() {
        let zs = [C64::new(1.0, 1.0), C64::new(2.0, -3.0), C64::new(-0.5, 0.5)];
        let s: C64 = zs.iter().copied().sum();
        assert!(s.approx_eq(C64::new(2.5, -1.5), TOL));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn real_scalar_multiplication_commutes() {
        let z = C64::new(1.0, -1.0);
        assert_eq!(2.0 * z, z * 2.0);
        assert_eq!((2.0 * z).re, 2.0);
    }
}
