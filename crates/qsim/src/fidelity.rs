//! Fidelity and distance metrics.
//!
//! All HetArch cell characterizations target *pure* reference states (Bell
//! pairs, CAT states, logical `|+⟩`), so the workhorse is
//! [`fidelity_with_pure`], which needs no matrix square roots.

use crate::complex::C64;
use crate::state::DensityMatrix;

/// Fidelity `⟨ψ|ρ|ψ⟩` between a density matrix and a pure target state.
///
/// The target vector is normalized internally.
///
/// # Examples
///
/// ```
/// use hetarch_qsim::state::DensityMatrix;
/// use hetarch_qsim::complex::C64;
/// use hetarch_qsim::fidelity::fidelity_with_pure;
///
/// let rho = DensityMatrix::zero_state(1);
/// let psi = [C64::ONE, C64::ZERO];
/// assert!((fidelity_with_pure(&rho, &psi) - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the target length does not match the state dimension or the
/// target has zero norm.
pub fn fidelity_with_pure(rho: &DensityMatrix, psi: &[C64]) -> f64 {
    assert_eq!(
        psi.len(),
        rho.dim(),
        "target state dimension mismatch: {} vs {}",
        psi.len(),
        rho.dim()
    );
    let norm_sqr: f64 = psi.iter().map(|z| z.norm_sqr()).sum();
    assert!(norm_sqr > 0.0, "target state has zero norm");
    let mut acc = C64::ZERO;
    for r in 0..rho.dim() {
        if psi[r] == C64::ZERO {
            continue;
        }
        for c in 0..rho.dim() {
            if psi[c] == C64::ZERO {
                continue;
            }
            acc += psi[r].conj() * rho.entry(r, c) * psi[c];
        }
    }
    (acc.re / norm_sqr).clamp(0.0, 1.0)
}

/// Infidelity `1 − F` with a pure target.
pub fn infidelity_with_pure(rho: &DensityMatrix, psi: &[C64]) -> f64 {
    1.0 - fidelity_with_pure(rho, psi)
}

/// Hilbert–Schmidt inner product `tr(ρσ)` — equals the fidelity when either
/// argument is pure.
pub fn hs_overlap(rho: &DensityMatrix, sigma: &DensityMatrix) -> f64 {
    assert_eq!(rho.dim(), sigma.dim(), "state dimension mismatch");
    let mut acc = C64::ZERO;
    for r in 0..rho.dim() {
        for c in 0..rho.dim() {
            acc += rho.entry(r, c) * sigma.entry(c, r);
        }
    }
    acc.re
}

/// Trace distance upper bound via the Frobenius norm:
/// `T(ρ,σ) ≤ √(d)/2 · ‖ρ−σ‖_F`. Cheap and sufficient for regression tests.
pub fn trace_distance_bound(rho: &DensityMatrix, sigma: &DensityMatrix) -> f64 {
    assert_eq!(rho.dim(), sigma.dim(), "state dimension mismatch");
    let mut frob = 0.0;
    for r in 0..rho.dim() {
        for c in 0..rho.dim() {
            frob += (rho.entry(r, c) - sigma.entry(r, c)).norm_sqr();
        }
    }
    0.5 * ((rho.dim() as f64) * frob).sqrt()
}

/// Average gate fidelity of a single-qubit channel, estimated by twirling
/// over the six Pauli eigenstates (exact for Pauli channels, a standard
/// estimate otherwise).
pub fn average_channel_fidelity_1q<F>(mut apply: F) -> f64
where
    F: FnMut(&mut DensityMatrix),
{
    use crate::matrix::Mat;
    let preps: [&[(&Mat, bool)]; 6] = [
        &[],                                   // |0>
        &[(&X_GATE, false)],                   // |1>
        &[(&H_GATE, false)],                   // |+>
        &[(&X_GATE, false), (&H_GATE, false)], // |->
        &[(&H_GATE, false), (&S_GATE, false)], // |+i>
        &[(&H_GATE, false), (&S_GATE, true)],  // |-i>
    ];
    static X_GATE: std::sync::LazyLock<Mat> = std::sync::LazyLock::new(Mat::pauli_x);
    static H_GATE: std::sync::LazyLock<Mat> = std::sync::LazyLock::new(Mat::hadamard);
    static S_GATE: std::sync::LazyLock<Mat> = std::sync::LazyLock::new(Mat::s_gate);

    let mut total = 0.0;
    for prep in preps {
        let mut rho = DensityMatrix::zero_state(1);
        let mut psi = vec![C64::ONE, C64::ZERO];
        for (gate, dagger) in prep {
            let g: &Mat = gate;
            let m = if *dagger { g.dagger() } else { (*g).clone() };
            rho.apply_1q(0, &m);
            psi = apply_vec(&m, &psi);
        }
        apply(&mut rho);
        total += fidelity_with_pure(&rho, &psi);
    }
    total / 6.0
}

fn apply_vec(m: &crate::matrix::Mat, v: &[C64]) -> Vec<C64> {
    let mut out = vec![C64::ZERO; v.len()];
    for (r, o) in out.iter_mut().enumerate() {
        for (c, x) in v.iter().enumerate() {
            *o += m[(r, c)] * *x;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::Kraus1;
    use crate::matrix::Mat;

    const TOL: f64 = 1e-12;

    fn bell() -> DensityMatrix {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_1q(0, &Mat::hadamard());
        rho.apply_2q(0, 1, &Mat::cnot());
        rho
    }

    fn bell_vec() -> Vec<C64> {
        let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        vec![s, C64::ZERO, C64::ZERO, s]
    }

    #[test]
    fn pure_state_fidelity_with_itself_is_one() {
        assert!((fidelity_with_pure(&bell(), &bell_vec()) - 1.0).abs() < TOL);
    }

    #[test]
    fn orthogonal_states_have_zero_fidelity() {
        let rho = DensityMatrix::zero_state(1);
        let one = [C64::ZERO, C64::ONE];
        assert!(fidelity_with_pure(&rho, &one) < TOL);
    }

    #[test]
    fn mixed_state_fidelity_is_half() {
        let rho = DensityMatrix::maximally_mixed(1);
        let plus = [
            C64::real(std::f64::consts::FRAC_1_SQRT_2),
            C64::real(std::f64::consts::FRAC_1_SQRT_2),
        ];
        assert!((fidelity_with_pure(&rho, &plus) - 0.5).abs() < TOL);
    }

    #[test]
    fn unnormalized_target_is_accepted() {
        let rho = DensityMatrix::zero_state(1);
        let psi = [C64::real(3.0), C64::ZERO];
        assert!((fidelity_with_pure(&rho, &psi) - 1.0).abs() < TOL);
    }

    #[test]
    fn depolarizing_reduces_bell_fidelity_linearly() {
        let mut rho = bell();
        Kraus1::depolarizing(0.12).unwrap().apply(&mut rho, 0);
        // Single-qubit depolarizing p: F = 1 - p + p/3... one of 3 Paulis (Z)
        // keeps |Φ+> only in the Φ- sector; all three map out of Φ+:
        // F = 1 - p + 0 = actually X,Y,Z each map Φ+ to an orthogonal Bell
        // state, so F = 1 - p.
        assert!((fidelity_with_pure(&rho, &bell_vec()) - 0.88).abs() < 1e-9);
    }

    #[test]
    fn hs_overlap_matches_pure_fidelity() {
        let rho = bell();
        let sigma = bell();
        assert!((hs_overlap(&rho, &sigma) - 1.0).abs() < TOL);
        let mixed = DensityMatrix::maximally_mixed(2);
        assert!((hs_overlap(&rho, &mixed) - 0.25).abs() < TOL);
    }

    #[test]
    fn trace_distance_bound_zero_for_identical() {
        let rho = bell();
        assert!(trace_distance_bound(&rho, &rho) < TOL);
    }

    #[test]
    fn average_fidelity_of_identity_is_one() {
        let f = average_channel_fidelity_1q(|_| {});
        assert!((f - 1.0).abs() < TOL);
    }

    #[test]
    fn average_fidelity_of_depolarizing() {
        let p = 0.09;
        let ch = Kraus1::depolarizing(p).unwrap();
        let f = average_channel_fidelity_1q(|rho| ch.apply(rho, 0));
        // Depolarizing: F_avg = 1 - p + p/... each eigenstate keeps weight
        // 1 - p + p/3 (the Pauli matching its axis fixes it).
        let expect = 1.0 - p + p / 3.0;
        assert!((f - expect).abs() < 1e-9, "got {f}, expected {expect}");
    }
}
