//! Error types for the simulation substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the density-matrix simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QsimError {
    /// A state failed a physicality check (trace, Hermiticity, positivity)
    /// or was constructed from malformed input.
    InvalidState(String),
    /// A channel definition is unphysical (e.g. Kraus operators do not sum
    /// to identity, or a probability is outside `[0, 1]`).
    InvalidChannel(String),
    /// A requested parameter combination is unphysical (e.g. `T2 > 2 T1`).
    InvalidParameter(String),
}

impl fmt::Display for QsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QsimError::InvalidState(msg) => write!(f, "invalid quantum state: {msg}"),
            QsimError::InvalidChannel(msg) => write!(f, "invalid quantum channel: {msg}"),
            QsimError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for QsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = QsimError::InvalidChannel("probability 1.5 out of range".into());
        let s = e.to_string();
        assert!(s.starts_with("invalid quantum channel"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QsimError>();
    }
}
