//! Quantum noise channels.
//!
//! Channels are represented by their Kraus operators and applied exactly to
//! [`DensityMatrix`] states. This module provides the superconducting noise
//! processes HetArch's device models need (paper §3.1):
//!
//! * **amplitude damping** with rate set by `T1`,
//! * **pure dephasing** with rate set by `T2` (and `T1`),
//! * **depolarizing** noise attached to imperfect gates,
//! * the combined **idle channel** `idle(t, T1, T2)`, and
//! * the **Pauli twirl** of the idle channel, which is what the stochastic
//!   stabilizer simulator consumes.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::complex::C64;
use crate::error::QsimError;
use crate::kernel::{ChannelKernel1, ChannelKernel2};
use crate::matrix::Mat;
use crate::state::DensityMatrix;

/// A single-qubit channel described by Kraus operators `{K_i}` with
/// `Σ K_i† K_i = I`.
///
/// [`apply`](Kraus1::apply) runs through a precompiled superoperator kernel
/// (see [`crate::kernel`]), compiled lazily on first use and cached for the
/// lifetime of the channel — so constructing a channel once and applying it
/// many times is the intended usage pattern. The original Kraus-sum loop is
/// kept as [`apply_reference`](Kraus1::apply_reference), the oracle the
/// differential tests compare the kernel against.
///
/// # Examples
///
/// ```
/// use hetarch_qsim::channels::Kraus1;
/// use hetarch_qsim::state::DensityMatrix;
/// use hetarch_qsim::matrix::Mat;
///
/// let mut rho = DensityMatrix::zero_state(1);
/// rho.apply_1q(0, &Mat::pauli_x()); // |1>
/// let damp = Kraus1::amplitude_damping(1.0).unwrap(); // full decay
/// damp.apply(&mut rho, 0);
/// assert!((rho.diagonal_prob(0) - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct Kraus1 {
    ops: Vec<Mat>,
    kernel: OnceLock<ChannelKernel1>,
}

impl PartialEq for Kraus1 {
    fn eq(&self, other: &Self) -> bool {
        // The kernel is a cache derived from `ops`; identity is the ops.
        self.ops == other.ops
    }
}

impl Kraus1 {
    /// Builds a channel from explicit 2×2 Kraus operators.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidChannel`] if any operator is not 2×2 or the
    /// completeness relation `Σ K† K = I` fails.
    pub fn new(ops: Vec<Mat>) -> Result<Self, QsimError> {
        if ops.is_empty() {
            return Err(QsimError::InvalidChannel("no Kraus operators".into()));
        }
        let mut sum = Mat::zeros(2, 2);
        for k in &ops {
            if k.rows() != 2 || k.cols() != 2 {
                return Err(QsimError::InvalidChannel(
                    "kraus operator is not 2x2".into(),
                ));
            }
            sum = &sum + &(&k.dagger() * k);
        }
        if !sum.approx_eq(&Mat::identity(2), 1e-9) {
            return Err(QsimError::InvalidChannel(
                "kraus operators do not satisfy the completeness relation".into(),
            ));
        }
        Ok(Kraus1::from_ops(ops))
    }

    fn from_ops(ops: Vec<Mat>) -> Self {
        Kraus1 {
            ops,
            kernel: OnceLock::new(),
        }
    }

    /// The identity channel.
    pub fn identity() -> Self {
        Kraus1::from_ops(vec![Mat::identity(2)])
    }

    /// Amplitude damping with decay probability `gamma = 1 - e^{-t/T1}`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidChannel`] if `gamma ∉ [0, 1]`.
    pub fn amplitude_damping(gamma: f64) -> Result<Self, QsimError> {
        check_prob("gamma", gamma)?;
        let k0 = Mat::from_reals(2, &[1.0, 0.0, 0.0, (1.0 - gamma).sqrt()]);
        let k1 = Mat::from_reals(2, &[0.0, gamma.sqrt(), 0.0, 0.0]);
        Kraus1::new(vec![k0, k1])
    }

    /// Phase flip (dephasing): applies Z with probability `p`. Off-diagonal
    /// elements are scaled by `1 - 2p`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidChannel`] if `p ∉ [0, 1]`.
    pub fn phase_flip(p: f64) -> Result<Self, QsimError> {
        check_prob("p", p)?;
        let k0 = Mat::identity(2).scaled(C64::real((1.0 - p).sqrt()));
        let k1 = Mat::pauli_z().scaled(C64::real(p.sqrt()));
        Kraus1::new(vec![k0, k1])
    }

    /// Single-qubit depolarizing channel: with probability `p` the state is
    /// replaced according to a uniformly random X/Y/Z error (each `p/3`).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidChannel`] if `p ∉ [0, 1]`.
    pub fn depolarizing(p: f64) -> Result<Self, QsimError> {
        check_prob("p", p)?;
        let w = (p / 3.0).sqrt();
        Kraus1::new(vec![
            Mat::identity(2).scaled(C64::real((1.0 - p).sqrt())),
            Mat::pauli_x().scaled(C64::real(w)),
            Mat::pauli_y().scaled(C64::real(w)),
            Mat::pauli_z().scaled(C64::real(w)),
        ])
    }

    /// Bit flip: applies X with probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidChannel`] if `p ∉ [0, 1]`.
    pub fn bit_flip(p: f64) -> Result<Self, QsimError> {
        check_prob("p", p)?;
        Kraus1::new(vec![
            Mat::identity(2).scaled(C64::real((1.0 - p).sqrt())),
            Mat::pauli_x().scaled(C64::real(p.sqrt())),
        ])
    }

    /// The Kraus operators.
    pub fn ops(&self) -> &[Mat] {
        &self.ops
    }

    /// Applies the channel to qubit `q` of `rho` through the precompiled
    /// superoperator kernel (one allocation-free pass regardless of the
    /// number of Kraus operators).
    ///
    /// With the `validate` feature, debug builds check the output state's
    /// conformance invariants (see [`crate::conformance`]) and panic on
    /// violation.
    pub fn apply(&self, rho: &mut DensityMatrix, q: usize) {
        self.kernel().apply(rho, q);
        #[cfg(feature = "validate")]
        crate::conformance::debug_validate_state(rho, "Kraus1::apply");
    }

    /// Applies the channel to qubit `q` of every state in `states` through
    /// one blocked kernel pass (the [`crate::backend::BatchedBackend`]
    /// path). Bit-identical to calling [`apply`](Kraus1::apply) on each
    /// state; empty batches are a no-op.
    ///
    /// # Panics
    ///
    /// Panics if the states disagree on qubit count or `q` is out of range.
    pub fn apply_batch(&self, states: &mut [DensityMatrix], q: usize) {
        self.kernel().apply_batch(states, q);
        #[cfg(feature = "validate")]
        for rho in states.iter() {
            crate::conformance::debug_validate_state(rho, "Kraus1::apply_batch");
        }
    }

    /// Applies the channel by the literal Kraus sum `Σ_k K_k ρ K_k†`
    /// (one density-matrix clone and conjugation sweep per operator).
    ///
    /// This is the reference oracle the kernel path is differentially
    /// tested against; production code should use [`apply`](Kraus1::apply).
    pub fn apply_reference(&self, rho: &mut DensityMatrix, q: usize) {
        if self.ops.len() == 1 {
            rho.apply_conjugation_1q(q, &self.ops[0]);
        } else {
            let original = rho.clone();
            let mut first = true;
            for k in &self.ops {
                if first {
                    rho.apply_conjugation_1q(q, k);
                    first = false;
                } else {
                    let mut term = original.clone();
                    term.apply_conjugation_1q(q, k);
                    accumulate(rho, &term);
                }
            }
        }
        #[cfg(feature = "validate")]
        crate::conformance::debug_validate_state(rho, "Kraus1::apply_reference");
    }

    /// The compiled superoperator kernel (compiled on first call, cached).
    pub fn kernel(&self) -> &ChannelKernel1 {
        self.kernel
            .get_or_init(|| ChannelKernel1::compile(&self.ops))
    }

    /// Composes `self` followed by `other` into a single channel.
    pub fn then(&self, other: &Kraus1) -> Kraus1 {
        let mut ops = Vec::with_capacity(self.ops.len() * other.ops.len());
        for b in &other.ops {
            for a in &self.ops {
                ops.push(b * a);
            }
        }
        Kraus1::from_ops(ops)
    }
}

/// A two-qubit channel described by 4×4 Kraus operators.
///
/// Like [`Kraus1`], application runs through a lazily compiled, cached
/// superoperator kernel; [`apply_reference`](Kraus2::apply_reference) keeps
/// the Kraus-sum loop as the differential-testing oracle.
#[derive(Clone, Debug)]
pub struct Kraus2 {
    ops: Vec<Mat>,
    kernel: OnceLock<ChannelKernel2>,
}

impl PartialEq for Kraus2 {
    fn eq(&self, other: &Self) -> bool {
        self.ops == other.ops
    }
}

impl Kraus2 {
    /// Builds a channel from explicit 4×4 Kraus operators.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidChannel`] if any operator is not 4×4 or the
    /// completeness relation fails.
    pub fn new(ops: Vec<Mat>) -> Result<Self, QsimError> {
        if ops.is_empty() {
            return Err(QsimError::InvalidChannel("no Kraus operators".into()));
        }
        let mut sum = Mat::zeros(4, 4);
        for k in &ops {
            if k.rows() != 4 || k.cols() != 4 {
                return Err(QsimError::InvalidChannel(
                    "kraus operator is not 4x4".into(),
                ));
            }
            sum = &sum + &(&k.dagger() * k);
        }
        if !sum.approx_eq(&Mat::identity(4), 1e-9) {
            return Err(QsimError::InvalidChannel(
                "kraus operators do not satisfy the completeness relation".into(),
            ));
        }
        Ok(Kraus2 {
            ops,
            kernel: OnceLock::new(),
        })
    }

    /// Two-qubit depolarizing channel: with probability `p` one of the 15
    /// non-identity two-qubit Paulis is applied (each `p/15`).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidChannel`] if `p ∉ [0, 1]`.
    pub fn depolarizing(p: f64) -> Result<Self, QsimError> {
        check_prob("p", p)?;
        let singles = [
            Mat::identity(2),
            Mat::pauli_x(),
            Mat::pauli_y(),
            Mat::pauli_z(),
        ];
        let w = (p / 15.0).sqrt();
        let mut ops = Vec::with_capacity(16);
        for (i, a) in singles.iter().enumerate() {
            for (j, b) in singles.iter().enumerate() {
                let weight = if i == 0 && j == 0 {
                    (1.0 - p).sqrt()
                } else {
                    w
                };
                ops.push(a.kron(b).scaled(C64::real(weight)));
            }
        }
        Kraus2::new(ops)
    }

    /// The Kraus operators.
    pub fn ops(&self) -> &[Mat] {
        &self.ops
    }

    /// Applies the channel to qubits `(q_hi, q_lo)` of `rho` through the
    /// precompiled superoperator kernel (one allocation-free pass
    /// regardless of the number of Kraus operators).
    ///
    /// With the `validate` feature, debug builds check the output state's
    /// conformance invariants (see [`crate::conformance`]) and panic on
    /// violation.
    pub fn apply(&self, rho: &mut DensityMatrix, q_hi: usize, q_lo: usize) {
        self.kernel().apply(rho, q_hi, q_lo);
        #[cfg(feature = "validate")]
        crate::conformance::debug_validate_state(rho, "Kraus2::apply");
    }

    /// Applies the channel to qubits `(q_hi, q_lo)` of every state in
    /// `states` through one blocked kernel pass (the
    /// [`crate::backend::BatchedBackend`] path). Bit-identical to calling
    /// [`apply`](Kraus2::apply) on each state; empty batches are a no-op.
    ///
    /// # Panics
    ///
    /// Panics if the states disagree on qubit count, the qubits coincide,
    /// or either qubit is out of range.
    pub fn apply_batch(&self, states: &mut [DensityMatrix], q_hi: usize, q_lo: usize) {
        self.kernel().apply_batch(states, q_hi, q_lo);
        #[cfg(feature = "validate")]
        for rho in states.iter() {
            crate::conformance::debug_validate_state(rho, "Kraus2::apply_batch");
        }
    }

    /// Applies the channel by the literal Kraus sum `Σ_k K_k ρ K_k†`
    /// (one density-matrix clone and conjugation sweep per operator).
    ///
    /// This is the reference oracle the kernel path is differentially
    /// tested against; production code should use [`apply`](Kraus2::apply).
    pub fn apply_reference(&self, rho: &mut DensityMatrix, q_hi: usize, q_lo: usize) {
        if self.ops.len() == 1 {
            rho.apply_conjugation_2q(q_hi, q_lo, &self.ops[0]);
        } else {
            let original = rho.clone();
            let mut first = true;
            for k in &self.ops {
                if first {
                    rho.apply_conjugation_2q(q_hi, q_lo, k);
                    first = false;
                } else {
                    let mut term = original.clone();
                    term.apply_conjugation_2q(q_hi, q_lo, k);
                    accumulate(rho, &term);
                }
            }
        }
        #[cfg(feature = "validate")]
        crate::conformance::debug_validate_state(rho, "Kraus2::apply_reference");
    }

    /// The compiled superoperator kernel (compiled on first call, cached).
    pub fn kernel(&self) -> &ChannelKernel2 {
        self.kernel
            .get_or_init(|| ChannelKernel2::compile(&self.ops))
    }
}

fn accumulate(into: &mut DensityMatrix, term: &DensityMatrix) {
    debug_assert_eq!(into.dim(), term.dim());
    for (a, b) in into.as_mut_slice().iter_mut().zip(term.as_slice()) {
        *a += *b;
    }
}

fn check_prob(name: &str, p: f64) -> Result<(), QsimError> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(QsimError::InvalidChannel(format!(
            "{name} = {p} is outside [0, 1]"
        )));
    }
    Ok(())
}

/// Physical idle-noise parameters for a device (times in seconds).
///
/// `T2 ≤ 2 T1` is required for physicality.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IdleParams {
    /// Amplitude damping (energy relaxation) time constant.
    pub t1: f64,
    /// Total dephasing time constant.
    pub t2: f64,
}

impl IdleParams {
    /// Creates validated idle parameters.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidParameter`] if times are non-positive or
    /// `T2 > 2 T1`.
    pub fn new(t1: f64, t2: f64) -> Result<Self, QsimError> {
        if !(t1 > 0.0 && t1.is_finite() && t2 > 0.0 && t2.is_finite()) {
            return Err(QsimError::InvalidParameter(format!(
                "T1 = {t1}, T2 = {t2} must be positive and finite"
            )));
        }
        if t2 > 2.0 * t1 * (1.0 + 1e-12) {
            return Err(QsimError::InvalidParameter(format!(
                "T2 = {t2} exceeds the physical limit 2*T1 = {}",
                2.0 * t1
            )));
        }
        Ok(IdleParams { t1, t2 })
    }

    /// Amplitude-damping probability after idling for `t` seconds.
    pub fn gamma(&self, t: f64) -> f64 {
        1.0 - (-t / self.t1).exp()
    }

    /// Pure-dephasing phase-flip probability after idling for `t` seconds.
    ///
    /// The off-diagonal decay `e^{-t/T2}` is split into the part contributed
    /// by amplitude damping (`e^{-t/2T1}`) and a residual pure dephasing
    /// `e^{-t/Tφ}` with `1/Tφ = 1/T2 − 1/(2 T1)`.
    pub fn dephase_p(&self, t: f64) -> f64 {
        let inv_tphi = (1.0 / self.t2 - 0.5 / self.t1).max(0.0);
        0.5 * (1.0 - (-t * inv_tphi).exp())
    }

    /// The exact idle channel for duration `t`: amplitude damping followed by
    /// pure dephasing.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidChannel`] if `t < 0`.
    pub fn channel(&self, t: f64) -> Result<Kraus1, QsimError> {
        if t < 0.0 || !t.is_finite() {
            return Err(QsimError::InvalidChannel(format!(
                "idle duration {t} must be non-negative"
            )));
        }
        let ad = Kraus1::amplitude_damping(self.gamma(t))?;
        let pd = Kraus1::phase_flip(self.dephase_p(t))?;
        Ok(ad.then(&pd))
    }

    /// The standard Pauli-twirl approximation of the idle channel, as
    /// consumed by the stochastic stabilizer simulator:
    ///
    /// `px = py = (1 − e^{−t/T1})/4`,
    /// `pz = (1 − e^{−t/T2})/2 − (1 − e^{−t/T1})/4` (clamped at 0).
    pub fn twirl_probs(&self, t: f64) -> PauliProbs {
        let pxy = self.gamma(t) / 4.0;
        let pz = (0.5 * (1.0 - (-t / self.t2).exp()) - pxy).max(0.0);
        PauliProbs {
            px: pxy,
            py: pxy,
            pz,
        }
    }
}

/// Probabilities of stochastic X, Y and Z errors on one qubit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PauliProbs {
    /// Probability of an X error.
    pub px: f64,
    /// Probability of a Y error.
    pub py: f64,
    /// Probability of a Z error.
    pub pz: f64,
}

impl PauliProbs {
    /// Total probability of any error.
    pub fn total(&self) -> f64 {
        self.px + self.py + self.pz
    }

    /// The corresponding exact Pauli channel.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidChannel`] if probabilities are negative or
    /// sum above one.
    pub fn channel(&self) -> Result<Kraus1, QsimError> {
        for (name, p) in [("px", self.px), ("py", self.py), ("pz", self.pz)] {
            if p < 0.0 {
                return Err(QsimError::InvalidChannel(format!("{name} = {p} < 0")));
            }
        }
        let p0 = 1.0 - self.total();
        if p0 < -1e-12 {
            return Err(QsimError::InvalidChannel(format!(
                "pauli probabilities sum to {} > 1",
                self.total()
            )));
        }
        Kraus1::new(vec![
            Mat::identity(2).scaled(C64::real(p0.max(0.0).sqrt())),
            Mat::pauli_x().scaled(C64::real(self.px.sqrt())),
            Mat::pauli_y().scaled(C64::real(self.py.sqrt())),
            Mat::pauli_z().scaled(C64::real(self.pz.sqrt())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    fn plus_state() -> DensityMatrix {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_1q(0, &Mat::hadamard());
        rho
    }

    #[test]
    fn amplitude_damping_decays_excited_population() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_1q(0, &Mat::pauli_x());
        Kraus1::amplitude_damping(0.3).unwrap().apply(&mut rho, 0);
        assert!((rho.diagonal_prob(1) - 0.7).abs() < TOL);
        assert!((rho.diagonal_prob(0) - 0.3).abs() < TOL);
        rho.validate(TOL).unwrap();
    }

    #[test]
    fn phase_flip_scales_coherence() {
        let mut rho = plus_state();
        Kraus1::phase_flip(0.25).unwrap().apply(&mut rho, 0);
        // off-diagonal scaled by 1 - 2p = 0.5.
        assert!(rho.entry(0, 1).approx_eq(C64::real(0.25), TOL));
        rho.validate(TOL).unwrap();
    }

    #[test]
    fn full_depolarizing_gives_maximally_mixed() {
        let mut rho = DensityMatrix::zero_state(1);
        Kraus1::depolarizing(1.0).unwrap().apply(&mut rho, 0);
        // p=1 leaves 1/3 each X,Y,Z: diag = (2/3, 1/3)? No: X,Y flip, Z keeps.
        // Actually p=1: rho -> (XρX + YρY + ZρZ)/3 = (2|1><1| + |0><0|)/3.
        assert!((rho.diagonal_prob(0) - 1.0 / 3.0).abs() < TOL);
        assert!((rho.diagonal_prob(1) - 2.0 / 3.0).abs() < TOL);
    }

    #[test]
    fn depolarizing_three_quarters_mixes_completely() {
        let mut rho = DensityMatrix::zero_state(1);
        Kraus1::depolarizing(0.75).unwrap().apply(&mut rho, 0);
        assert!((rho.diagonal_prob(0) - 0.5).abs() < TOL);
        assert!((rho.purity() - 0.5).abs() < TOL);
    }

    #[test]
    fn two_qubit_depolarizing_preserves_trace() {
        let mut rho = DensityMatrix::zero_state(3);
        rho.apply_1q(0, &Mat::hadamard());
        rho.apply_2q(0, 1, &Mat::cnot());
        Kraus2::depolarizing(0.1).unwrap().apply(&mut rho, 0, 2);
        assert!(rho.trace().approx_eq(C64::ONE, TOL));
        rho.validate(TOL).unwrap();
    }

    #[test]
    fn invalid_probability_rejected() {
        assert!(Kraus1::depolarizing(1.5).is_err());
        assert!(Kraus1::amplitude_damping(-0.1).is_err());
        assert!(Kraus2::depolarizing(f64::NAN).is_err());
    }

    #[test]
    fn idle_params_validation() {
        assert!(IdleParams::new(100e-6, 150e-6).is_ok());
        assert!(IdleParams::new(100e-6, 250e-6).is_err()); // T2 > 2T1
        assert!(IdleParams::new(0.0, 1e-6).is_err());
    }

    #[test]
    fn idle_channel_matches_t1_t2_decay() {
        let p = IdleParams::new(300e-6, 200e-6).unwrap();
        let t = 50e-6;
        let mut rho = plus_state();
        rho.apply_1q(0, &Mat::pauli_x()); // |-> has same coherence magnitude
        rho = plus_state();
        p.channel(t).unwrap().apply(&mut rho, 0);
        // Off-diagonal should decay as e^{-t/T2}.
        let expect = 0.5 * (-t / p.t2).exp();
        assert!(
            (rho.entry(0, 1).re - expect).abs() < 1e-9,
            "got {}, expected {expect}",
            rho.entry(0, 1).re
        );
        // Excited population of |1> decays as e^{-t/T1}.
        let mut one = DensityMatrix::zero_state(1);
        one.apply_1q(0, &Mat::pauli_x());
        p.channel(t).unwrap().apply(&mut one, 0);
        assert!((one.diagonal_prob(1) - (-t / p.t1).exp()).abs() < 1e-9);
    }

    #[test]
    fn twirl_probs_match_decay_rates() {
        let p = IdleParams::new(500e-6, 500e-6).unwrap();
        let probs = p.twirl_probs(10e-6);
        assert!(probs.px > 0.0 && probs.pz >= 0.0);
        assert!((probs.px - probs.py).abs() < 1e-15);
        // X-basis decay of the twirled channel ~ e^{-t/T2}: 1-2(py+pz+... )
        let coherence_factor = 1.0 - 2.0 * (probs.py + probs.pz);
        assert!((coherence_factor - (-10e-6f64 / 500e-6).exp()).abs() < 1e-3);
    }

    #[test]
    fn twirl_total_is_small_for_short_idle() {
        let p = IdleParams::new(500e-6, 500e-6).unwrap();
        assert!(p.twirl_probs(100e-9).total() < 1e-3);
        assert_eq!(p.twirl_probs(0.0).total(), 0.0);
    }

    #[test]
    fn pauli_probs_channel_roundtrip() {
        let probs = PauliProbs {
            px: 0.01,
            py: 0.02,
            pz: 0.03,
        };
        let ch = probs.channel().unwrap();
        let mut rho = plus_state();
        ch.apply(&mut rho, 0);
        // +X coherence scaled by 1 - 2(py + pz).
        assert!(rho
            .entry(0, 1)
            .approx_eq(C64::real(0.5 * (1.0 - 2.0 * 0.05)), TOL));
        rho.validate(TOL).unwrap();
    }

    #[test]
    fn channel_composition_matches_sequential_application() {
        let a = Kraus1::amplitude_damping(0.2).unwrap();
        let b = Kraus1::phase_flip(0.1).unwrap();
        let composed = a.then(&b);

        let mut r1 = plus_state();
        a.apply(&mut r1, 0);
        b.apply(&mut r1, 0);

        let mut r2 = plus_state();
        composed.apply(&mut r2, 0);

        for r in 0..2 {
            for c in 0..2 {
                assert!(r1.entry(r, c).approx_eq(r2.entry(r, c), TOL));
            }
        }
    }

    #[test]
    fn kraus_completeness_enforced() {
        // Two identity operators violate completeness (sum = 2I).
        let bad = Kraus1::new(vec![Mat::identity(2), Mat::identity(2)]);
        assert!(bad.is_err());
    }
}
