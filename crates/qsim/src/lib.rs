//! # hetarch-qsim
//!
//! Dense density-matrix quantum simulation substrate for the HetArch
//! workspace (reproduction of *HetArch: Heterogeneous Microarchitectures for
//! Superconducting Quantum Systems*, MICRO 2023).
//!
//! HetArch's hierarchical methodology (paper §2) simulates **standard cells**
//! exactly with density matrices and abstracts the result into quantum
//! channels consumed by module-level models. This crate provides that exact
//! layer:
//!
//! * [`complex`] / [`matrix`] — scalar and small-matrix arithmetic,
//! * [`state`] — the [`DensityMatrix`](state::DensityMatrix) type,
//! * [`gates`] — circuit-style gate application helpers,
//! * [`channels`] — Kraus channels for superconducting noise (T1/T2 idling,
//!   depolarizing gate error, Pauli twirling),
//! * [`kernel`] — precompiled superoperator kernels, the allocation-free
//!   fast path behind every channel application,
//! * [`backend`] — pluggable apply strategies ([`DmBackend`](backend::DmBackend)):
//!   a scalar reference backend and a batched backend that blocks one kernel
//!   pass across many states,
//! * [`measure`] — projective measurement and post-selection,
//! * [`fidelity`] — fidelity metrics used in cell characterization,
//! * [`bell`] — Bell-diagonal pair states and the DEJMPS distillation round.
//!
//! # Example
//!
//! ```
//! use hetarch_qsim::prelude::*;
//!
//! // Prepare a Bell pair, let it idle in a noisy memory, and check fidelity.
//! let mut rho = DensityMatrix::zero_state(2);
//! gates::h(&mut rho, 0);
//! gates::cnot(&mut rho, 0, 1);
//!
//! let memory = IdleParams::new(2.5e-3, 2.5e-3)?; // Ts = 2.5 ms
//! memory.channel(100e-6)?.apply(&mut rho, 0);
//! memory.channel(100e-6)?.apply(&mut rho, 1);
//!
//! let target = BellState::PhiPlus.state_vector();
//! let f = fidelity::fidelity_with_pure(&rho, &target);
//! assert!(f > 0.9 && f < 1.0);
//! # Ok::<(), hetarch_qsim::error::QsimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod bell;
pub mod channels;
pub mod complex;
pub mod conformance;
pub mod error;
pub mod fidelity;
pub mod gates;
pub mod kernel;
pub mod matrix;
pub mod measure;
pub mod state;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::backend::{BatchedBackend, DmBackend, ScalarBackend};
    pub use crate::bell::{BellDiagonal, BellState, DejmpsTable, DistillNoise};
    pub use crate::channels::{IdleParams, Kraus1, Kraus2, PauliProbs};
    pub use crate::complex::C64;
    pub use crate::error::QsimError;
    pub use crate::fidelity;
    pub use crate::gates;
    pub use crate::kernel::{ChannelKernel1, ChannelKernel2};
    pub use crate::matrix::Mat;
    pub use crate::measure;
    pub use crate::state::DensityMatrix;
}
