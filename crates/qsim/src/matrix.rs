//! Small dense complex matrices.
//!
//! These back the gate and Kraus-operator definitions. Dimensions stay tiny
//! (2×2 … 32×32), so a straightforward row-major `Vec` representation is both
//! simple and fast enough for cell-level characterization.

use std::fmt;
use std::ops::{Add, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::complex::C64;

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use hetarch_qsim::matrix::Mat;
///
/// let h = Mat::hadamard();
/// let hh = &h * &h;
/// assert!(hh.approx_eq(&Mat::identity(2), 1e-12));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl Mat {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {rows}x{cols}",
            data.len()
        );
        Mat { rows, cols, data }
    }

    /// Creates a square matrix from real row-major entries.
    pub fn from_reals(dim: usize, entries: &[f64]) -> Self {
        assert_eq!(
            entries.len(),
            dim * dim,
            "expected {dim}x{dim} real entries"
        );
        Mat {
            rows: dim,
            cols: dim,
            data: entries.iter().map(|&r| C64::real(r)).collect(),
        }
    }

    /// Returns the `dim`×`dim` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Returns the `dim`×`dim` identity matrix.
    pub fn identity(dim: usize) -> Self {
        let mut m = Mat::zeros(dim, dim);
        for i in 0..dim {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Returns the conjugate transpose `M†`.
    pub fn dagger(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)].conj();
            }
        }
        out
    }

    /// Returns the Kronecker product `self ⊗ other`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hetarch_qsim::matrix::Mat;
    /// let x = Mat::pauli_x();
    /// let xi = x.kron(&Mat::identity(2));
    /// assert_eq!(xi.rows(), 4);
    /// ```
    pub fn kron(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows * other.rows, self.cols * other.cols);
        for r1 in 0..self.rows {
            for c1 in 0..self.cols {
                let v = self[(r1, c1)];
                for r2 in 0..other.rows {
                    for c2 in 0..other.cols {
                        out[(r1 * other.rows + r2, c1 * other.cols + c2)] = v * other[(r2, c2)];
                    }
                }
            }
        }
        out
    }

    /// Returns the matrix trace.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert_eq!(self.rows, self.cols, "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scaled(&self, s: C64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * s).collect(),
        }
    }

    /// Returns true when every entry is within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &Mat, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Returns true when `M† M ≈ I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        (&self.dagger() * self).approx_eq(&Mat::identity(self.rows), tol)
    }

    /// Returns true when `M ≈ M†` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.rows == self.cols && self.approx_eq(&self.dagger(), tol)
    }

    // --- standard single-qubit matrices -----------------------------------

    /// Pauli X.
    pub fn pauli_x() -> Mat {
        Mat::from_reals(2, &[0.0, 1.0, 1.0, 0.0])
    }

    /// Pauli Y.
    pub fn pauli_y() -> Mat {
        Mat::from_rows(2, 2, vec![C64::ZERO, -C64::I, C64::I, C64::ZERO])
    }

    /// Pauli Z.
    pub fn pauli_z() -> Mat {
        Mat::from_reals(2, &[1.0, 0.0, 0.0, -1.0])
    }

    /// Hadamard.
    pub fn hadamard() -> Mat {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Mat::from_reals(2, &[s, s, s, -s])
    }

    /// Phase gate S = diag(1, i).
    pub fn s_gate() -> Mat {
        Mat::from_rows(2, 2, vec![C64::ONE, C64::ZERO, C64::ZERO, C64::I])
    }

    /// T gate = diag(1, e^{iπ/4}).
    pub fn t_gate() -> Mat {
        Mat::from_rows(
            2,
            2,
            vec![
                C64::ONE,
                C64::ZERO,
                C64::ZERO,
                C64::expi(std::f64::consts::FRAC_PI_4),
            ],
        )
    }

    /// Rotation about X: `RX(θ) = exp(-iθX/2)`.
    pub fn rx(theta: f64) -> Mat {
        let c = C64::real((theta / 2.0).cos());
        let s = C64::new(0.0, -(theta / 2.0).sin());
        Mat::from_rows(2, 2, vec![c, s, s, c])
    }

    /// Rotation about Y: `RY(θ) = exp(-iθY/2)`.
    pub fn ry(theta: f64) -> Mat {
        let c = (theta / 2.0).cos();
        let s = (theta / 2.0).sin();
        Mat::from_reals(2, &[c, -s, s, c])
    }

    /// Rotation about Z: `RZ(θ) = exp(-iθZ/2)`.
    pub fn rz(theta: f64) -> Mat {
        Mat::from_rows(
            2,
            2,
            vec![
                C64::expi(-theta / 2.0),
                C64::ZERO,
                C64::ZERO,
                C64::expi(theta / 2.0),
            ],
        )
    }

    // --- standard two-qubit matrices ---------------------------------------
    //
    // Convention: basis index `b = (q_hi << 1) | q_lo`, where the matrix acts
    // on (hi, lo) = (control, target) when applied via
    // [`DensityMatrix::apply_2q`](crate::state::DensityMatrix::apply_2q)
    // with arguments `(control, target)`.

    /// CNOT with the first (high) index as control.
    pub fn cnot() -> Mat {
        Mat::from_reals(
            4,
            &[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 1.0, //
                0.0, 0.0, 1.0, 0.0,
            ],
        )
    }

    /// Controlled-Z.
    pub fn cz() -> Mat {
        Mat::from_reals(
            4,
            &[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, 0.0, 0.0, -1.0,
            ],
        )
    }

    /// SWAP.
    pub fn swap() -> Mat {
        Mat::from_reals(
            4,
            &[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 1.0,
            ],
        )
    }

    /// iSWAP.
    pub fn iswap() -> Mat {
        Mat::from_rows(
            4,
            4,
            vec![
                C64::ONE,
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::I,
                C64::ZERO,
                C64::ZERO,
                C64::I,
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::ONE,
            ],
        )
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = C64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &Mat {
    type Output = Mat;
    fn mul(self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.cols, rhs.rows,
            "matrix product dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let v = self[(r, k)];
                if v == C64::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += v * rhs[(k, c)];
                }
            }
        }
        out
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>24}", self[(r, c)].to_string())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn paulis_are_unitary_and_hermitian() {
        for m in [Mat::pauli_x(), Mat::pauli_y(), Mat::pauli_z()] {
            assert!(m.is_unitary(TOL));
            assert!(m.is_hermitian(TOL));
            assert!((&m * &m).approx_eq(&Mat::identity(2), TOL));
        }
    }

    #[test]
    fn hadamard_conjugates_x_to_z() {
        let h = Mat::hadamard();
        let hxh = &(&h * &Mat::pauli_x()) * &h;
        assert!(hxh.approx_eq(&Mat::pauli_z(), TOL));
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        let s = Mat::s_gate();
        let t = Mat::t_gate();
        assert!((&s * &s).approx_eq(&Mat::pauli_z(), TOL));
        assert!((&t * &t).approx_eq(&s, TOL));
    }

    #[test]
    fn rotations_compose_additively() {
        let a = Mat::rx(0.3);
        let b = Mat::rx(0.9);
        assert!((&a * &b).approx_eq(&Mat::rx(1.2), TOL));
        let a = Mat::rz(0.5);
        let b = Mat::rz(-1.5);
        assert!((&a * &b).approx_eq(&Mat::rz(-1.0), TOL));
    }

    #[test]
    fn rx_pi_is_minus_i_x() {
        let rx = Mat::rx(std::f64::consts::PI);
        let expect = Mat::pauli_x().scaled(-C64::I);
        assert!(rx.approx_eq(&expect, TOL));
    }

    #[test]
    fn two_qubit_gates_are_unitary() {
        for m in [Mat::cnot(), Mat::cz(), Mat::swap(), Mat::iswap()] {
            assert!(m.is_unitary(TOL));
        }
    }

    #[test]
    fn cnot_squares_to_identity() {
        let c = Mat::cnot();
        assert!((&c * &c).approx_eq(&Mat::identity(4), TOL));
    }

    #[test]
    fn swap_from_three_cnots() {
        // SWAP = CNOT(a,b) CNOT(b,a) CNOT(a,b); CNOT(b,a) = (H⊗H) CNOT (H⊗H).
        let c = Mat::cnot();
        let hh = Mat::hadamard().kron(&Mat::hadamard());
        let c_rev = &(&hh * &c) * &hh;
        let swap = &(&c * &c_rev) * &c;
        assert!(swap.approx_eq(&Mat::swap(), TOL));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let z = Mat::pauli_z();
        let zz = z.kron(&z);
        assert_eq!(zz.rows(), 4);
        assert_eq!(zz[(0, 0)], C64::ONE);
        assert_eq!(zz[(1, 1)], C64::real(-1.0));
        assert_eq!(zz[(2, 2)], C64::real(-1.0));
        assert_eq!(zz[(3, 3)], C64::ONE);
    }

    #[test]
    fn trace_of_identity() {
        assert_eq!(Mat::identity(8).trace(), C64::real(8.0));
    }

    #[test]
    fn dagger_reverses_products() {
        let a = Mat::rx(0.7);
        let b = Mat::ry(0.2);
        let lhs = (&a * &b).dagger();
        let rhs = &b.dagger() * &a.dagger();
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn product_dimension_mismatch_panics() {
        let a = Mat::identity(2);
        let b = Mat::identity(4);
        let _ = &a * &b;
    }
}
