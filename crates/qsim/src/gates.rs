//! Convenience gate application helpers.
//!
//! These wrap [`DensityMatrix::apply_1q`]/[`apply_2q`](DensityMatrix::apply_2q)
//! with named functions so protocol code (DEJMPS, CAT generation, syndrome
//! extraction) reads like a circuit listing.

use crate::matrix::Mat;
use crate::state::DensityMatrix;

macro_rules! gate_1q {
    ($(#[$doc:meta] $name:ident => $ctor:expr;)*) => {
        $(
            #[$doc]
            pub fn $name(rho: &mut DensityMatrix, q: usize) {
                rho.apply_1q(q, &$ctor);
            }
        )*
    };
}

gate_1q! {
    /// Applies a Pauli X gate to qubit `q`.
    x => Mat::pauli_x();
    /// Applies a Pauli Y gate to qubit `q`.
    y => Mat::pauli_y();
    /// Applies a Pauli Z gate to qubit `q`.
    z => Mat::pauli_z();
    /// Applies a Hadamard gate to qubit `q`.
    h => Mat::hadamard();
    /// Applies an S (phase) gate to qubit `q`.
    s => Mat::s_gate();
    /// Applies a T gate to qubit `q`.
    t => Mat::t_gate();
}

/// Applies `RX(θ)` to qubit `q`.
pub fn rx(rho: &mut DensityMatrix, q: usize, theta: f64) {
    rho.apply_1q(q, &Mat::rx(theta));
}

/// Applies `RY(θ)` to qubit `q`.
pub fn ry(rho: &mut DensityMatrix, q: usize, theta: f64) {
    rho.apply_1q(q, &Mat::ry(theta));
}

/// Applies `RZ(θ)` to qubit `q`.
pub fn rz(rho: &mut DensityMatrix, q: usize, theta: f64) {
    rho.apply_1q(q, &Mat::rz(theta));
}

/// Applies a CNOT with `control` and `target`.
pub fn cnot(rho: &mut DensityMatrix, control: usize, target: usize) {
    rho.apply_2q(control, target, &Mat::cnot());
}

/// Applies a CZ between `a` and `b` (symmetric).
pub fn cz(rho: &mut DensityMatrix, a: usize, b: usize) {
    rho.apply_2q(a, b, &Mat::cz());
}

/// Applies a SWAP between `a` and `b`.
pub fn swap(rho: &mut DensityMatrix, a: usize, b: usize) {
    rho.apply_2q(a, b, &Mat::swap());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::prob_one;

    const TOL: f64 = 1e-12;

    #[test]
    fn ghz_circuit_via_helpers() {
        let mut rho = DensityMatrix::zero_state(3);
        h(&mut rho, 0);
        cnot(&mut rho, 0, 1);
        cnot(&mut rho, 1, 2);
        assert!((rho.diagonal_prob(0b000) - 0.5).abs() < TOL);
        assert!((rho.diagonal_prob(0b111) - 0.5).abs() < TOL);
    }

    #[test]
    fn pauli_identities() {
        let mut rho = DensityMatrix::zero_state(1);
        h(&mut rho, 0);
        s(&mut rho, 0);
        s(&mut rho, 0);
        // S² = Z flips |+> to |->; H|-> = |1>.
        h(&mut rho, 0);
        assert!((prob_one(&rho, 0) - 1.0).abs() < TOL);
    }

    #[test]
    fn cz_is_symmetric() {
        let mut a = DensityMatrix::zero_state(2);
        h(&mut a, 0);
        h(&mut a, 1);
        let mut b = a.clone();
        cz(&mut a, 0, 1);
        cz(&mut b, 1, 0);
        for r in 0..4 {
            for c in 0..4 {
                assert!(a.entry(r, c).approx_eq(b.entry(r, c), TOL));
            }
        }
    }

    #[test]
    fn rotation_helpers_match_matrices() {
        let mut a = DensityMatrix::zero_state(1);
        rx(&mut a, 0, 1.234);
        let mut b = DensityMatrix::zero_state(1);
        b.apply_1q(0, &Mat::rx(1.234));
        assert!(a.entry(0, 0).approx_eq(b.entry(0, 0), TOL));
        assert!(a.entry(0, 1).approx_eq(b.entry(0, 1), TOL));
    }
}
