//! Bell states, Bell-diagonal entangled pairs, and the DEJMPS distillation
//! primitive (paper §4.1).
//!
//! Entangled pairs stored in HetArch memories are modeled as **Bell-diagonal**
//! two-qubit states: idle noise is Pauli-twirled, and twirled Pauli errors
//! merely permute the four Bell components, so the representation is closed
//! under storage decay. A single DEJMPS round is computed two ways:
//!
//! * [`dejmps_density`] — an exact 4-qubit density-matrix simulation of the
//!   protocol circuit (with optional gate/measurement noise), and
//! * [`DejmpsTable`] — a bilinear closed form extracted *from* that exact
//!   simulation, used on the event-simulator fast path. A property test in
//!   this module pins the two together.

use serde::{Deserialize, Serialize};

use crate::backend::{self, DmBackend};
use crate::channels::{Kraus1, Kraus2, PauliProbs};
use crate::complex::C64;
use crate::fidelity::fidelity_with_pure;
use crate::gates;
use crate::measure::project_z;
use crate::state::DensityMatrix;

/// The four Bell states, in the component order used by [`BellDiagonal`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BellState {
    /// `(|00⟩ + |11⟩)/√2`
    PhiPlus,
    /// `(|00⟩ − |11⟩)/√2`
    PhiMinus,
    /// `(|01⟩ + |10⟩)/√2`
    PsiPlus,
    /// `(|01⟩ − |10⟩)/√2`
    PsiMinus,
}

impl BellState {
    /// All four Bell states in component order.
    pub const ALL: [BellState; 4] = [
        BellState::PhiPlus,
        BellState::PhiMinus,
        BellState::PsiPlus,
        BellState::PsiMinus,
    ];

    /// The two-qubit state vector (basis order `|q1 q0⟩`, index `q0 + 2·q1`).
    pub fn state_vector(self) -> [C64; 4] {
        let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        match self {
            BellState::PhiPlus => [s, C64::ZERO, C64::ZERO, s],
            BellState::PhiMinus => [s, C64::ZERO, C64::ZERO, -s],
            BellState::PsiPlus => [C64::ZERO, s, s, C64::ZERO],
            BellState::PsiMinus => [C64::ZERO, s, -s, C64::ZERO],
        }
    }

    /// Component index in [`BellDiagonal`].
    pub fn index(self) -> usize {
        match self {
            BellState::PhiPlus => 0,
            BellState::PhiMinus => 1,
            BellState::PsiPlus => 2,
            BellState::PsiMinus => 3,
        }
    }
}

/// A Bell-diagonal two-qubit state: a probabilistic mixture of the four Bell
/// states with components ordered `[Φ+, Φ−, Ψ+, Ψ−]`.
///
/// # Examples
///
/// ```
/// use hetarch_qsim::bell::BellDiagonal;
///
/// let pair = BellDiagonal::werner(0.9);
/// assert!((pair.fidelity() - 0.9).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BellDiagonal {
    p: [f64; 4],
}

impl BellDiagonal {
    /// A perfect `Φ+` pair.
    pub fn perfect() -> Self {
        BellDiagonal {
            p: [1.0, 0.0, 0.0, 0.0],
        }
    }

    /// Creates a Bell-diagonal state from component probabilities
    /// `[Φ+, Φ−, Ψ+, Ψ−]`, normalizing them.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or the sum is zero.
    pub fn new(p: [f64; 4]) -> Self {
        let sum: f64 = p.iter().sum();
        assert!(
            p.iter().all(|&x| x >= -1e-12) && sum > 0.0,
            "invalid bell-diagonal components {p:?}"
        );
        BellDiagonal {
            p: [
                (p[0] / sum).max(0.0),
                (p[1] / sum).max(0.0),
                (p[2] / sum).max(0.0),
                (p[3] / sum).max(0.0),
            ],
        }
    }

    /// A Werner state with fidelity `f` to `Φ+` (the other three components
    /// share `1 − f` equally).
    ///
    /// # Panics
    ///
    /// Panics if `f ∉ [0, 1]`.
    pub fn werner(f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "fidelity {f} outside [0, 1]");
        let r = (1.0 - f) / 3.0;
        BellDiagonal { p: [f, r, r, r] }
    }

    /// Component probabilities `[Φ+, Φ−, Ψ+, Ψ−]`.
    pub fn components(&self) -> [f64; 4] {
        self.p
    }

    /// Fidelity with the target `Φ+` Bell state.
    pub fn fidelity(&self) -> f64 {
        self.p[0]
    }

    /// Infidelity `1 − F`.
    pub fn infidelity(&self) -> f64 {
        1.0 - self.p[0]
    }

    /// Extracts the Bell-diagonal part of an arbitrary two-qubit density
    /// matrix (equivalent to twirling over the Bell-preserving group).
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not a two-qubit state.
    pub fn from_density_matrix(rho: &DensityMatrix) -> Self {
        assert_eq!(rho.num_qubits(), 2, "bell-diagonal form needs 2 qubits");
        let mut p = [0.0; 4];
        for (k, b) in BellState::ALL.iter().enumerate() {
            p[k] = fidelity_with_pure(rho, &b.state_vector());
        }
        BellDiagonal::new(p)
    }

    /// Expands to the explicit two-qubit density matrix.
    pub fn to_density_matrix(&self) -> DensityMatrix {
        let mut out = DensityMatrix::zero_state(2);
        *out.entry_mut(0, 0) = C64::ZERO;
        for (k, b) in BellState::ALL.iter().enumerate() {
            if self.p[k] == 0.0 {
                continue;
            }
            let v = b.state_vector();
            for r in 0..4 {
                for c in 0..4 {
                    let add = v[r] * v[c].conj() * self.p[k];
                    let cur = out.entry(r, c) + add;
                    *out.entry_mut(r, c) = cur;
                }
            }
        }
        out
    }

    /// Applies a stochastic Pauli channel to **one** qubit of the pair.
    /// X, Y and Z errors permute the Bell components:
    /// X: Φ±↔Ψ±, Z: Φ+↔Φ−, Ψ+↔Ψ−, Y: Φ+↔Ψ−, Φ−↔Ψ+.
    pub fn apply_pauli_noise(&mut self, probs: PauliProbs) {
        let p0 = (1.0 - probs.total()).max(0.0);
        let old = self.p;
        let perm_x = [2usize, 3, 0, 1];
        let perm_z = [1usize, 0, 3, 2];
        let perm_y = [3usize, 2, 1, 0];
        for k in 0..4 {
            self.p[k] = p0 * old[k]
                + probs.px * old[perm_x[k]]
                + probs.py * old[perm_y[k]]
                + probs.pz * old[perm_z[k]];
        }
    }

    /// Idles the pair for `t` seconds with (possibly different) twirled idle
    /// noise on the two halves.
    pub fn idle(&mut self, noise_a: PauliProbs, noise_b: PauliProbs) {
        self.apply_pauli_noise(noise_a);
        self.apply_pauli_noise(noise_b);
    }
}

impl Default for BellDiagonal {
    fn default() -> Self {
        BellDiagonal::perfect()
    }
}

/// Noise applied during a DEJMPS round (gate and readout imperfections of the
/// ParCheck cell executing it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DistillNoise {
    /// Depolarizing probability attached to each two-qubit gate.
    pub p2q: f64,
    /// Depolarizing probability attached to each single-qubit gate.
    pub p1q: f64,
    /// Probability that a measurement outcome is recorded flipped.
    pub meas_flip: f64,
}

/// Outcome of a successful DEJMPS round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistillOutcome {
    /// The surviving (purified) pair.
    pub pair: BellDiagonal,
    /// Probability that the round heralds success.
    pub success_prob: f64,
}

/// Runs one DEJMPS round exactly on a 4-qubit density matrix.
///
/// Qubits 0/1 hold `pair1` (kept on success), qubits 2/3 hold `pair2`
/// (sacrificed). Alice holds qubits 0 and 2, Bob holds 1 and 3. The protocol
/// applies `RX(π/2)` on Alice's qubits, `RX(−π/2)` on Bob's, bilateral CNOTs
/// from the kept pair onto the sacrificed pair, and measures the sacrificed
/// pair in Z, keeping the result when the outcomes agree.
///
/// Returns `None` if success probability is numerically zero.
pub fn dejmps_density(
    pair1: &BellDiagonal,
    pair2: &BellDiagonal,
    noise: &DistillNoise,
) -> Option<DistillOutcome> {
    dejmps_density_batch(&[(*pair1, *pair2)], noise, backend::active())
        .pop()
        .expect("batch of one yields one outcome")
}

/// Runs one DEJMPS round exactly on every input pair combination in
/// `inputs`, pushing all 4-qubit protocol states through `backend` so a
/// whole batch shares each channel's compiled kernel pass (see
/// [`crate::backend`]).
///
/// Per state, the circuit and its operation order are exactly those of
/// [`dejmps_density`], so outcome `k` is bit-identical to
/// `dejmps_density(&inputs[k].0, &inputs[k].1, noise)` regardless of the
/// backend.
pub fn dejmps_density_batch(
    inputs: &[(BellDiagonal, BellDiagonal)],
    noise: &DistillNoise,
    backend: &dyn DmBackend,
) -> Vec<Option<DistillOutcome>> {
    // Qubits 0,1 = kept pair; 2,3 = sacrificed pair.
    let mut states: Vec<DensityMatrix> = inputs
        .iter()
        .map(|(p1, p2)| p1.to_density_matrix().tensor(&p2.to_density_matrix()))
        .collect();

    let half_pi = std::f64::consts::FRAC_PI_2;
    for rho in &mut states {
        gates::rx(rho, 0, half_pi);
        gates::rx(rho, 2, half_pi);
        gates::rx(rho, 1, -half_pi);
        gates::rx(rho, 3, -half_pi);
    }
    if noise.p1q > 0.0 {
        let d = Kraus1::depolarizing(noise.p1q).expect("validated probability");
        for q in 0..4 {
            backend.apply_1q(&d, &mut states, q);
        }
    }
    for rho in &mut states {
        gates::cnot(rho, 0, 2);
        gates::cnot(rho, 1, 3);
    }
    if noise.p2q > 0.0 {
        let d = Kraus2::depolarizing(noise.p2q).expect("validated probability");
        backend.apply_2q(&d, &mut states, 0, 2);
        backend.apply_2q(&d, &mut states, 1, 3);
    }
    if noise.meas_flip > 0.0 {
        let f = Kraus1::bit_flip(noise.meas_flip).expect("validated probability");
        backend.apply_1q(&f, &mut states, 2);
        backend.apply_1q(&f, &mut states, 3);
    }

    states.iter().map(herald_equal_outcomes).collect()
}

/// Measures qubits 2/3 of a post-circuit DEJMPS state and heralds on equal
/// outcomes, returning the renormalized kept pair.
fn herald_equal_outcomes(rho: &DensityMatrix) -> Option<DistillOutcome> {
    // Herald on equal outcomes: branches (0,0) and (1,1).
    let mut keep = DensityMatrix::zero_state(2);
    *keep.entry_mut(0, 0) = C64::ZERO;
    let mut success = 0.0;
    for outcome in [false, true] {
        let mut branch = rho.clone();
        let pa = project_z(&mut branch, 2, outcome);
        if pa <= 0.0 {
            continue;
        }
        let pb = project_z(&mut branch, 3, outcome);
        if pb <= 0.0 {
            continue;
        }
        // `branch` is unnormalized with weight = joint probability.
        let reduced = branch.partial_trace(&[0, 1]);
        let weight: f64 = reduced.trace().re;
        success += weight;
        for r in 0..4 {
            for c in 0..4 {
                let v = keep.entry(r, c) + reduced.entry(r, c);
                *keep.entry_mut(r, c) = v;
            }
        }
    }
    if success <= 1e-15 {
        return None;
    }
    keep.renormalize(success);
    Some(DistillOutcome {
        pair: BellDiagonal::from_density_matrix(&keep),
        success_prob: success,
    })
}

/// A precomputed bilinear closed form of the noiseless or fixed-noise DEJMPS
/// round.
///
/// DEJMPS is bilinear in the (unnormalized) Bell components of its two input
/// pairs, so evaluating the exact density-matrix protocol on the 16 pure Bell
/// input combinations determines it completely. Constructing the table costs
/// 16 small density-matrix simulations; evaluating it costs 80 multiplies.
#[derive(Clone, Debug)]
pub struct DejmpsTable {
    /// success[i][j]: heralding probability for pure inputs (i, j).
    success: [[f64; 4]; 4],
    /// out[i][j][k]: unnormalized output component k for pure inputs (i, j).
    out: [[[f64; 4]; 4]; 4],
}

impl DejmpsTable {
    /// Builds the table for a fixed per-round noise setting.
    ///
    /// All 16 pure Bell input combinations are simulated in one
    /// [`dejmps_density_batch`] call through [`backend::active`], so the
    /// protocol's channel kernels are compiled once and swept across the
    /// whole probe set.
    pub fn new(noise: &DistillNoise) -> Self {
        Self::new_with_backend(noise, backend::active())
    }

    /// [`new`](Self::new) with an explicit [`DmBackend`]; both built-in
    /// backends yield bit-identical tables.
    pub fn new_with_backend(noise: &DistillNoise, backend: &dyn DmBackend) -> Self {
        let mut inputs = Vec::with_capacity(16);
        for i in 0..4 {
            for j in 0..4 {
                let mut pi = [0.0; 4];
                pi[i] = 1.0;
                let mut pj = [0.0; 4];
                pj[j] = 1.0;
                inputs.push((BellDiagonal::new(pi), BellDiagonal::new(pj)));
            }
        }
        let outcomes = dejmps_density_batch(&inputs, noise, backend);
        let mut success = [[0.0; 4]; 4];
        let mut out = [[[0.0; 4]; 4]; 4];
        for (idx, outcome) in outcomes.iter().enumerate() {
            let (i, j) = (idx / 4, idx % 4);
            if let Some(o) = outcome {
                success[i][j] = o.success_prob;
                let comp = o.pair.components();
                for k in 0..4 {
                    out[i][j][k] = comp[k] * o.success_prob;
                }
            }
        }
        DejmpsTable { success, out }
    }

    /// Evaluates one DEJMPS round via the bilinear form.
    ///
    /// Returns `None` when the heralding probability is numerically zero.
    pub fn round(&self, pair1: &BellDiagonal, pair2: &BellDiagonal) -> Option<DistillOutcome> {
        let a = pair1.components();
        let b = pair2.components();
        let mut s = 0.0;
        let mut comp = [0.0; 4];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0.0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                let w = ai * bj;
                if w == 0.0 {
                    continue;
                }
                s += w * self.success[i][j];
                for (ck, &ok) in comp.iter_mut().zip(&self.out[i][j]) {
                    *ck += w * ok;
                }
            }
        }
        if s <= 1e-15 {
            return None;
        }
        Some(DistillOutcome {
            pair: BellDiagonal::new(comp),
            success_prob: s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::IdleParams;

    const TOL: f64 = 1e-10;

    #[test]
    fn bell_vectors_are_orthonormal() {
        for (i, a) in BellState::ALL.iter().enumerate() {
            for (j, b) in BellState::ALL.iter().enumerate() {
                let va = a.state_vector();
                let vb = b.state_vector();
                let dot: C64 = (0..4).map(|k| va[k].conj() * vb[k]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(dot.approx_eq(C64::real(expect), TOL), "{a:?}·{b:?}");
            }
        }
    }

    #[test]
    fn bell_diagonal_roundtrip_through_density_matrix() {
        let pair = BellDiagonal::new([0.7, 0.1, 0.15, 0.05]);
        let rho = pair.to_density_matrix();
        rho.validate(TOL).unwrap();
        let back = BellDiagonal::from_density_matrix(&rho);
        for k in 0..4 {
            assert!((pair.components()[k] - back.components()[k]).abs() < TOL);
        }
    }

    #[test]
    fn pauli_noise_permutes_components() {
        let mut pair = BellDiagonal::perfect();
        pair.apply_pauli_noise(PauliProbs {
            px: 1.0,
            py: 0.0,
            pz: 0.0,
        });
        assert!((pair.components()[BellState::PsiPlus.index()] - 1.0).abs() < TOL);

        let mut pair = BellDiagonal::perfect();
        pair.apply_pauli_noise(PauliProbs {
            px: 0.0,
            py: 0.0,
            pz: 1.0,
        });
        assert!((pair.components()[BellState::PhiMinus.index()] - 1.0).abs() < TOL);

        let mut pair = BellDiagonal::perfect();
        pair.apply_pauli_noise(PauliProbs {
            px: 0.0,
            py: 1.0,
            pz: 0.0,
        });
        assert!((pair.components()[BellState::PsiMinus.index()] - 1.0).abs() < TOL);
    }

    #[test]
    fn pauli_permutations_match_density_matrix() {
        use crate::matrix::Mat;
        // Applying each Pauli to one half of each Bell state must agree with
        // the closed-form permutation used by apply_pauli_noise.
        for b in BellState::ALL {
            let pair = {
                let mut p = [0.0; 4];
                p[b.index()] = 1.0;
                BellDiagonal::new(p)
            };
            for (gate, probs) in [
                (
                    Mat::pauli_x(),
                    PauliProbs {
                        px: 1.0,
                        py: 0.0,
                        pz: 0.0,
                    },
                ),
                (
                    Mat::pauli_y(),
                    PauliProbs {
                        px: 0.0,
                        py: 1.0,
                        pz: 0.0,
                    },
                ),
                (
                    Mat::pauli_z(),
                    PauliProbs {
                        px: 0.0,
                        py: 0.0,
                        pz: 1.0,
                    },
                ),
            ] {
                for q in 0..2 {
                    let mut rho = pair.to_density_matrix();
                    rho.apply_1q(q, &gate);
                    let via_dm = BellDiagonal::from_density_matrix(&rho);
                    let mut via_perm = pair;
                    via_perm.apply_pauli_noise(probs);
                    for k in 0..4 {
                        assert!(
                            (via_dm.components()[k] - via_perm.components()[k]).abs() < TOL,
                            "{b:?} gate on qubit {q}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn idle_decay_reduces_fidelity_monotonically() {
        let idle = IdleParams::new(0.5e-3, 0.5e-3).unwrap();
        let mut pair = BellDiagonal::perfect();
        let mut last = 1.0;
        for _ in 0..20 {
            let probs = idle.twirl_probs(5e-6);
            pair.idle(probs, probs);
            assert!(pair.fidelity() < last);
            last = pair.fidelity();
        }
        // Long-time limit approaches 1/4.
        for _ in 0..100_000 {
            let probs = idle.twirl_probs(50e-6);
            pair.idle(probs, probs);
        }
        assert!((pair.fidelity() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn dejmps_on_perfect_pairs_is_perfect() {
        let out = dejmps_density(
            &BellDiagonal::perfect(),
            &BellDiagonal::perfect(),
            &DistillNoise::default(),
        )
        .unwrap();
        assert!(
            (out.pair.fidelity() - 1.0).abs() < 1e-9,
            "fidelity {}",
            out.pair.fidelity()
        );
        assert!((out.success_prob - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dejmps_improves_werner_pairs() {
        let input = BellDiagonal::werner(0.8);
        let out = dejmps_density(&input, &input, &DistillNoise::default()).unwrap();
        assert!(
            out.pair.fidelity() > 0.8,
            "distilled fidelity {} should exceed input 0.8",
            out.pair.fidelity()
        );
        assert!(out.success_prob > 0.5 && out.success_prob < 1.0);
    }

    #[test]
    fn dejmps_below_half_fidelity_does_not_improve_to_above() {
        // F = 0.25 (maximally mixed) cannot be distilled.
        let input = BellDiagonal::werner(0.25);
        let out = dejmps_density(&input, &input, &DistillNoise::default()).unwrap();
        assert!((out.pair.fidelity() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn noisy_dejmps_is_worse_than_noiseless() {
        let input = BellDiagonal::werner(0.9);
        let clean = dejmps_density(&input, &input, &DistillNoise::default()).unwrap();
        let noisy = dejmps_density(
            &input,
            &input,
            &DistillNoise {
                p2q: 0.01,
                p1q: 0.001,
                meas_flip: 0.01,
            },
        )
        .unwrap();
        assert!(noisy.pair.fidelity() < clean.pair.fidelity());
    }

    #[test]
    fn table_matches_exact_simulation() {
        let noise = DistillNoise {
            p2q: 0.005,
            p1q: 0.0005,
            meas_flip: 0.002,
        };
        let table = DejmpsTable::new(&noise);
        let cases = [
            (BellDiagonal::werner(0.85), BellDiagonal::werner(0.7)),
            (
                BellDiagonal::new([0.6, 0.2, 0.1, 0.1]),
                BellDiagonal::new([0.5, 0.1, 0.3, 0.1]),
            ),
            (BellDiagonal::perfect(), BellDiagonal::werner(0.6)),
        ];
        for (a, b) in cases {
            let exact = dejmps_density(&a, &b, &noise).unwrap();
            let fast = table.round(&a, &b).unwrap();
            assert!(
                (exact.success_prob - fast.success_prob).abs() < 1e-9,
                "success prob mismatch"
            );
            for k in 0..4 {
                assert!(
                    (exact.pair.components()[k] - fast.pair.components()[k]).abs() < 1e-9,
                    "component {k} mismatch"
                );
            }
        }
    }

    #[test]
    fn repeated_distillation_converges_toward_one() {
        let table = DejmpsTable::new(&DistillNoise::default());
        let mut pair = BellDiagonal::werner(0.75);
        for _ in 0..8 {
            let out = table.round(&pair, &pair).unwrap();
            pair = out.pair;
        }
        assert!(pair.fidelity() > 0.999, "converged to {}", pair.fidelity());
    }
}
