//! Channel and state conformance validators.
//!
//! The hierarchical-simulation claim (cells as channels, modules as composed
//! error rates) is only trustworthy if every channel the cell layer hands
//! upward is actually a quantum channel and every density matrix stays a
//! density matrix. This module centralizes those invariants:
//!
//! * **CPTP / trace preservation** — `Σ K†K = I` for [`Kraus1`]/[`Kraus2`]
//!   sets ([`check_kraus1`], [`check_kraus2`]).
//! * **State invariants** — unit trace, Hermiticity, and positive
//!   semidefiniteness for [`DensityMatrix`] ([`check_density_matrix`]).
//!   PSD is established by a cheap Gershgorin-disc pass first; only when a
//!   disc dips below zero does the check fall back to a tolerance-aware
//!   complex Cholesky factorization, which is exact for Hermitian matrices.
//!
//! With the `validate` feature enabled, [`Kraus1::apply`] and
//! [`Kraus2::apply`] run [`check_density_matrix`] on their output in debug
//! builds, so any test suite built on `hetarch-testkit` (which enables the
//! feature) turns every channel application into an invariant check.

use crate::complex::C64;
use crate::error::QsimError;
use crate::matrix::Mat;
use crate::state::DensityMatrix;

/// Default absolute tolerance used by the `validate`-feature hooks.
pub const VALIDATE_TOL: f64 = 1e-7;

/// Checks that `ops` is a trace-preserving (CPTP) Kraus set of `dim`×`dim`
/// operators: every operator has the right shape and `Σ K†K = I` within
/// `tol`.
///
/// # Errors
///
/// Returns [`QsimError::InvalidChannel`] naming the first violated property.
pub fn check_kraus_ops(ops: &[Mat], dim: usize, tol: f64) -> Result<(), QsimError> {
    if ops.is_empty() {
        return Err(QsimError::InvalidChannel("no Kraus operators".into()));
    }
    let mut sum = Mat::zeros(dim, dim);
    for (i, k) in ops.iter().enumerate() {
        if k.rows() != dim || k.cols() != dim {
            return Err(QsimError::InvalidChannel(format!(
                "kraus operator {i} is {}x{}, expected {dim}x{dim}",
                k.rows(),
                k.cols()
            )));
        }
        if k.as_slice().iter().any(|z| !z.is_finite()) {
            return Err(QsimError::InvalidChannel(format!(
                "kraus operator {i} has non-finite entries"
            )));
        }
        sum = &sum + &(&k.dagger() * k);
    }
    if !sum.approx_eq(&Mat::identity(dim), tol) {
        let dev = max_deviation(&sum, &Mat::identity(dim));
        return Err(QsimError::InvalidChannel(format!(
            "kraus completeness violated: max |Σ K†K − I| = {dev:.3e} (tol {tol:.1e})"
        )));
    }
    Ok(())
}

/// [`check_kraus_ops`] for a single-qubit channel.
///
/// # Errors
///
/// Returns [`QsimError::InvalidChannel`] naming the first violated property.
pub fn check_kraus1(channel: &crate::channels::Kraus1, tol: f64) -> Result<(), QsimError> {
    check_kraus_ops(channel.ops(), 2, tol)
}

/// [`check_kraus_ops`] for a two-qubit channel.
///
/// # Errors
///
/// Returns [`QsimError::InvalidChannel`] naming the first violated property.
pub fn check_kraus2(channel: &crate::channels::Kraus2, tol: f64) -> Result<(), QsimError> {
    check_kraus_ops(channel.ops(), 4, tol)
}

/// Checks the density-matrix invariants: unit trace, Hermiticity, and
/// positive semidefiniteness (Gershgorin fast path, Cholesky fallback), all
/// within `tol`.
///
/// # Errors
///
/// Returns [`QsimError::InvalidState`] naming the first violated property.
pub fn check_density_matrix(rho: &DensityMatrix, tol: f64) -> Result<(), QsimError> {
    let dim = rho.dim();
    let trace = rho.trace();
    if !trace.approx_eq(C64::ONE, tol * dim as f64) {
        return Err(QsimError::InvalidState(format!(
            "trace is {trace}, expected 1 (tol {tol:.1e})"
        )));
    }
    for r in 0..dim {
        for c in r..dim {
            let a = rho.entry(r, c);
            if !a.is_finite() {
                return Err(QsimError::InvalidState(format!(
                    "non-finite entry at ({r},{c})"
                )));
            }
            if !a.approx_eq(rho.entry(c, r).conj(), tol) {
                return Err(QsimError::InvalidState(format!(
                    "not Hermitian at ({r},{c})"
                )));
            }
        }
    }
    if !psd_by_gershgorin(rho, tol) && !psd_by_cholesky(rho, tol) {
        return Err(QsimError::InvalidState(
            "not positive semidefinite (Cholesky pivot below tolerance)".into(),
        ));
    }
    Ok(())
}

/// Gershgorin sufficient condition: every eigenvalue lies within some disc
/// `|λ − ρ[i,i]| ≤ Σ_{j≠i} |ρ[i,j]|`, so if every disc stays ≥ −tol the
/// matrix is PSD. Cheap (`O(dim²)`) but conservative: a `false` here means
/// "unknown", not "indefinite".
fn psd_by_gershgorin(rho: &DensityMatrix, tol: f64) -> bool {
    let dim = rho.dim();
    for i in 0..dim {
        let center = rho.entry(i, i).re;
        let radius: f64 = (0..dim)
            .filter(|&j| j != i)
            .map(|j| rho.entry(i, j).abs())
            .sum();
        if center - radius < -tol {
            return false;
        }
    }
    true
}

/// Tolerance-aware complex Cholesky: attempts `ρ = L L†`. A pivot below
/// `−tol·dim` proves a negative eigenvalue; pivots in `[−tol·dim, 0]` are
/// clamped to zero (numerical noise on a boundary-rank state).
fn psd_by_cholesky(rho: &DensityMatrix, tol: f64) -> bool {
    let dim = rho.dim();
    let mut l = vec![C64::ZERO; dim * dim];
    let floor = tol * dim as f64;
    for j in 0..dim {
        let mut d = rho.entry(j, j).re;
        for k in 0..j {
            d -= l[j * dim + k].norm_sqr();
        }
        if d < -floor {
            return false;
        }
        let pivot = d.max(0.0).sqrt();
        l[j * dim + j] = C64::real(pivot);
        for i in (j + 1)..dim {
            let mut v = rho.entry(i, j);
            for k in 0..j {
                v -= l[i * dim + k] * l[j * dim + k].conj();
            }
            if pivot > floor.sqrt() {
                l[i * dim + j] = v / pivot;
            } else if v.abs() > floor.sqrt() {
                // Zero pivot with nonzero column ⇒ indefinite.
                return false;
            }
        }
    }
    true
}

fn max_deviation(a: &Mat, b: &Mat) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

/// Debug-build hook used by the `validate` feature: panics with the
/// conformance error if `rho` violates an invariant. No-op in release
/// builds.
#[cfg(feature = "validate")]
pub(crate) fn debug_validate_state(rho: &DensityMatrix, context: &str) {
    if cfg!(debug_assertions) {
        if let Err(e) = check_density_matrix(rho, VALIDATE_TOL) {
            panic!("[validate] {context}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::{Kraus1, Kraus2};

    #[test]
    fn standard_channels_conform() {
        for ch in [
            Kraus1::identity(),
            Kraus1::amplitude_damping(0.3).unwrap(),
            Kraus1::phase_flip(0.2).unwrap(),
            Kraus1::depolarizing(0.7).unwrap(),
            Kraus1::bit_flip(0.5).unwrap(),
        ] {
            check_kraus1(&ch, 1e-9).unwrap();
        }
        check_kraus2(&Kraus2::depolarizing(0.4).unwrap(), 1e-9).unwrap();
    }

    #[test]
    fn composed_channels_conform() {
        let a = Kraus1::amplitude_damping(0.2).unwrap();
        let b = Kraus1::depolarizing(0.1).unwrap();
        check_kraus1(&a.then(&b), 1e-9).unwrap();
    }

    #[test]
    fn scaled_kraus_set_is_rejected() {
        // Build a non-trace-preserving set by bypassing the constructor:
        // a single √0.9·I operator fails completeness.
        let ops = vec![Mat::identity(2).scaled(C64::real(0.9f64.sqrt()))];
        let err = check_kraus_ops(&ops, 2, 1e-9).unwrap_err();
        assert!(err.to_string().contains("completeness"));
    }

    #[test]
    fn pure_and_mixed_states_are_psd() {
        let mut rho = DensityMatrix::zero_state(3);
        rho.apply_1q(0, &Mat::hadamard());
        rho.apply_2q(0, 1, &Mat::cnot());
        check_density_matrix(&rho, 1e-9).unwrap();
        check_density_matrix(&DensityMatrix::maximally_mixed(2), 1e-9).unwrap();
    }

    #[test]
    fn bell_state_needs_the_cholesky_fallback() {
        // A Bell state's off-diagonal 1/2 makes its Gershgorin discs dip to
        // zero-minus-epsilon territory only if perturbed; construct a state
        // where the disc test is inconclusive but Cholesky certifies PSD.
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_1q(0, &Mat::hadamard());
        rho.apply_2q(0, 1, &Mat::cnot());
        // Discs: center 0.5, radius 0.5 -> fine. Mix in a small depolarized
        // component and check both paths agree.
        crate::channels::Kraus1::depolarizing(0.01)
            .unwrap()
            .apply(&mut rho, 0);
        assert!(psd_by_cholesky(&rho, 1e-9));
        check_density_matrix(&rho, 1e-9).unwrap();
    }

    #[test]
    fn negative_eigenvalue_is_caught() {
        // diag(1.2, -0.2): trace 1, Hermitian, but indefinite.
        let mut rho = DensityMatrix::zero_state(1);
        *rho.entry_mut(0, 0) = C64::real(1.2);
        *rho.entry_mut(1, 1) = C64::real(-0.2);
        assert!(!psd_by_gershgorin(&rho, 1e-9));
        assert!(!psd_by_cholesky(&rho, 1e-9));
        let err = check_density_matrix(&rho, 1e-9).unwrap_err();
        assert!(err.to_string().contains("positive semidefinite"));
    }

    #[test]
    fn hidden_indefiniteness_needs_cholesky() {
        // [[0.5, 0.6], [0.6, 0.5]] has eigenvalues {1.1, -0.1}: every
        // Gershgorin disc allows negatives (inconclusive), and Cholesky must
        // prove indefiniteness.
        let mut rho = DensityMatrix::zero_state(1);
        *rho.entry_mut(0, 0) = C64::real(0.5);
        *rho.entry_mut(0, 1) = C64::real(0.6);
        *rho.entry_mut(1, 0) = C64::real(0.6);
        *rho.entry_mut(1, 1) = C64::real(0.5);
        assert!(!psd_by_cholesky(&rho, 1e-9));
        assert!(check_density_matrix(&rho, 1e-9).is_err());
    }

    #[test]
    fn non_hermitian_is_caught() {
        let mut rho = DensityMatrix::zero_state(1);
        *rho.entry_mut(0, 1) = C64::real(0.3);
        let err = check_density_matrix(&rho, 1e-9).unwrap_err();
        assert!(err.to_string().contains("Hermitian"));
    }

    #[test]
    fn trace_violation_is_caught() {
        let mut rho = DensityMatrix::zero_state(1);
        *rho.entry_mut(0, 0) = C64::real(0.5);
        let err = check_density_matrix(&rho, 1e-9).unwrap_err();
        assert!(err.to_string().contains("trace"));
    }

    #[test]
    fn rank_deficient_states_pass_cholesky() {
        // A pure state is rank 1: most pivots are exactly zero and must be
        // clamped, not rejected.
        let mut rho = DensityMatrix::zero_state(3);
        rho.apply_1q(1, &Mat::hadamard());
        assert!(psd_by_cholesky(&rho, 1e-12));
    }
}
