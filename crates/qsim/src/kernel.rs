//! Precompiled superoperator kernels for Kraus channel application.
//!
//! Applying a channel from its Kraus operators `{K_k}` costs one full clone
//! of the density matrix plus a left/right conjugation sweep *per operator*
//! — 16 clones and 32 sweeps for a two-qubit depolarizing channel. But the
//! channel itself is a fixed linear map on the local 2×2 (or 4×4) block:
//!
//! ```text
//! B ↦ Σ_k K_k B K_k†
//! ```
//!
//! [`ChannelKernel1`] and [`ChannelKernel2`] fold an entire Kraus set into
//! that single superoperator — a 4×4 (one qubit) or 16×16 (two qubits)
//! complex matrix acting on the vectorized block — compiled once and applied
//! in **one allocation-free pass** over the density matrix regardless of how
//! many Kraus operators the channel has.
//!
//! In the vectorization convention used here, `vec(B)[i·d + j] = B[i, j]`
//! (row-major, `d ∈ {2, 4}`), the superoperator entries are
//!
//! ```text
//! S[(i·d + j), (p·d + q)] = Σ_k K_k[i, p] · conj(K_k[j, q])
//! ```
//!
//! [`Kraus1`](crate::channels::Kraus1) and
//! [`Kraus2`](crate::channels::Kraus2) compile their kernel lazily behind a
//! `OnceLock` on first `apply`, so every consumer of the channel API gets
//! the fast path without code changes; the original Kraus-sum loop survives
//! as `apply_reference`, the oracle the differential tests compare against.
//!
//! Pauli-structured channels (depolarizing, Pauli twirls) produce
//! superoperators where 3/4 of the entries are exactly zero, so
//! [`ChannelKernel2`] stores a per-row compressed form and skips the zeros;
//! the summation order over the surviving entries is fixed (ascending column
//! index), keeping results deterministic.
//!
//! Both kernels store their coefficients **real/imag-split** (separate `f64`
//! slices instead of interleaved `C64`), so the contraction loops in
//! [`DensityMatrix`] are plain fused multiply-add chains over independent
//! `f64` lanes that LLVM autovectorizes. The split arithmetic
//! `acc_re += s_re·b_re − s_im·b_im; acc_im += s_re·b_im + s_im·b_re`
//! performs exactly the floating-point operations of the `C64` product in
//! the same order, so results are bit-identical to the interleaved form.
//!
//! `apply_batch` pushes one compiled kernel through a whole slice of states
//! (the [`crate::backend::BatchedBackend`] path): coefficient loads, block
//! index arithmetic, and bounds checks are amortized across the batch, and
//! the innermost loop runs across states — independent lanes with no
//! cross-state data flow, so each state still sees its exact scalar result.

use hetarch_obs as obs;

use crate::complex::C64;
use crate::matrix::Mat;
use crate::state::DensityMatrix;

// Kernel cache behavior (no-ops unless the `obs` feature is on and
// `HETARCH_OBS=1`): one compile per distinct channel instance means the
// OnceLock caches are working; compiles tracking applies means someone is
// rebuilding channels in a hot loop.
static OBS_COMPILES: obs::Counter = obs::Counter::new("qsim.kernel.compiles");
static OBS_APPLIES: obs::Counter = obs::Counter::new("qsim.kernel.applies");

/// Precompiled single-qubit channel superoperator (4×4, dense).
///
/// # Examples
///
/// ```
/// use hetarch_qsim::channels::Kraus1;
/// use hetarch_qsim::kernel::ChannelKernel1;
/// use hetarch_qsim::state::DensityMatrix;
///
/// let depol = Kraus1::depolarizing(0.1).unwrap();
/// let kernel = ChannelKernel1::compile(depol.ops());
/// let mut via_kernel = DensityMatrix::zero_state(2);
/// let mut via_kraus = via_kernel.clone();
/// kernel.apply(&mut via_kernel, 0);
/// depol.apply_reference(&mut via_kraus, 0);
/// for r in 0..4 {
///     for c in 0..4 {
///         assert!(via_kernel.entry(r, c).approx_eq(via_kraus.entry(r, c), 1e-12));
///     }
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelKernel1 {
    s: [C64; 16],
    /// Real parts of `s`, split out so the apply loop autovectorizes.
    s_re: [f64; 16],
    /// Imaginary parts of `s`.
    s_im: [f64; 16],
}

impl ChannelKernel1 {
    /// Compiles the superoperator for the Kraus set `ops`.
    ///
    /// # Panics
    ///
    /// Panics if any operator is not 2×2. Completeness is *not* required:
    /// the kernel is faithful to whatever linear map the operators define
    /// (trace-decreasing measurement branches included).
    pub fn compile(ops: &[Mat]) -> Self {
        OBS_COMPILES.inc();
        let mut s = [C64::ZERO; 16];
        for k in ops {
            assert_eq!((k.rows(), k.cols()), (2, 2), "expected 2x2 Kraus operators");
            let m = k.as_slice();
            for i in 0..2 {
                for j in 0..2 {
                    for p in 0..2 {
                        for q in 0..2 {
                            s[(i * 2 + j) * 4 + (p * 2 + q)] += m[i * 2 + p] * m[j * 2 + q].conj();
                        }
                    }
                }
            }
        }
        let mut s_re = [0.0f64; 16];
        let mut s_im = [0.0f64; 16];
        for (i, z) in s.iter().enumerate() {
            s_re[i] = z.re;
            s_im[i] = z.im;
        }
        ChannelKernel1 { s, s_re, s_im }
    }

    /// Applies the channel to qubit `q` of `rho` in one pass.
    pub fn apply(&self, rho: &mut DensityMatrix, q: usize) {
        OBS_APPLIES.inc();
        rho.apply_superop_1q(q, self);
    }

    /// Applies the channel to qubit `q` of every state in `states`,
    /// blocking over states so the compiled coefficients stay hot and the
    /// inner loop vectorizes across the batch. Each state receives exactly
    /// the floats [`apply`](Self::apply) would have produced.
    ///
    /// # Panics
    ///
    /// Panics if the states disagree on qubit count or `q` is out of range.
    pub fn apply_batch(&self, states: &mut [DensityMatrix], q: usize) {
        OBS_APPLIES.add(states.len() as u64);
        DensityMatrix::apply_superop_1q_batch(states, q, self);
    }

    /// The dense 4×4 superoperator, row-major in the vectorization
    /// convention of the module docs.
    pub fn as_matrix(&self) -> &[C64; 16] {
        &self.s
    }

    /// Real/imag-split views of the superoperator for the contraction loops.
    pub(crate) fn split(&self) -> (&[f64; 16], &[f64; 16]) {
        (&self.s_re, &self.s_im)
    }
}

/// Precompiled two-qubit channel superoperator (16×16, stored per-row
/// compressed so exactly-zero entries — 3/4 of them for Pauli channels —
/// cost nothing at apply time).
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelKernel2 {
    /// Number of non-zero entries in each superoperator row.
    nnz: [u8; 16],
    /// Column indices of the non-zero entries, ascending within each row.
    cols: [[u8; 16]; 16],
    /// Real parts of the values matching `cols` (split storage so the
    /// contraction is a flat `f64` multiply-add chain).
    vals_re: [[f64; 16]; 16],
    /// Imaginary parts of the values matching `cols`.
    vals_im: [[f64; 16]; 16],
}

impl ChannelKernel2 {
    /// Compiles the superoperator for the Kraus set `ops`.
    ///
    /// # Panics
    ///
    /// Panics if any operator is not 4×4. Completeness is not required.
    pub fn compile(ops: &[Mat]) -> Self {
        OBS_COMPILES.inc();
        let mut dense = [[C64::ZERO; 16]; 16];
        for k in ops {
            assert_eq!((k.rows(), k.cols()), (4, 4), "expected 4x4 Kraus operators");
            let m = k.as_slice();
            for i in 0..4 {
                for j in 0..4 {
                    for p in 0..4 {
                        for q in 0..4 {
                            dense[i * 4 + j][p * 4 + q] += m[i * 4 + p] * m[j * 4 + q].conj();
                        }
                    }
                }
            }
        }
        let mut nnz = [0u8; 16];
        let mut cols = [[0u8; 16]; 16];
        let mut vals_re = [[0.0f64; 16]; 16];
        let mut vals_im = [[0.0f64; 16]; 16];
        for (r, row) in dense.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                // Only exactly-zero entries are pruned (skipping `acc += 0·b`
                // cannot change any finite result), and the survivors keep
                // their ascending-column order, so the sparse apply computes
                // the same floats as the dense superoperator would.
                if v != C64::ZERO {
                    let n = nnz[r] as usize;
                    cols[r][n] = c as u8;
                    vals_re[r][n] = v.re;
                    vals_im[r][n] = v.im;
                    nnz[r] += 1;
                }
            }
        }
        ChannelKernel2 {
            nnz,
            cols,
            vals_re,
            vals_im,
        }
    }

    /// Applies the channel to qubits `(q_hi, q_lo)` of `rho` in one pass.
    pub fn apply(&self, rho: &mut DensityMatrix, q_hi: usize, q_lo: usize) {
        OBS_APPLIES.inc();
        rho.apply_superop_2q(q_hi, q_lo, self);
    }

    /// Applies the channel to qubits `(q_hi, q_lo)` of every state in
    /// `states`, blocking over states for cache locality: each 4×4 block
    /// position is gathered across the batch and contracted with the inner
    /// loop running over states. Each state receives exactly the floats
    /// [`apply`](Self::apply) would have produced.
    ///
    /// # Panics
    ///
    /// Panics if the states disagree on qubit count, the qubits coincide,
    /// or either qubit is out of range.
    pub fn apply_batch(&self, states: &mut [DensityMatrix], q_hi: usize, q_lo: usize) {
        OBS_APPLIES.add(states.len() as u64);
        DensityMatrix::apply_superop_2q_batch(states, q_hi, q_lo, self);
    }

    /// Compressed-row views `(nnz, cols, vals_re, vals_im)` for the
    /// contraction loops.
    #[allow(clippy::type_complexity)]
    pub(crate) fn rows(
        &self,
    ) -> (
        &[u8; 16],
        &[[u8; 16]; 16],
        &[[f64; 16]; 16],
        &[[f64; 16]; 16],
    ) {
        (&self.nnz, &self.cols, &self.vals_re, &self.vals_im)
    }

    /// Total non-zero superoperator entries (≤ 256); Pauli channels compile
    /// to ≤ 64 (28 for uniform depolarizing, whose equal Pauli weights
    /// cancel exactly).
    pub fn nnz(&self) -> usize {
        self.nnz.iter().map(|&n| n as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::{IdleParams, Kraus1, Kraus2};

    const TOL: f64 = 1e-13;

    fn assert_states_close(a: &DensityMatrix, b: &DensityMatrix, tol: f64) {
        assert_eq!(a.dim(), b.dim());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(x.approx_eq(*y, tol), "{x} vs {y}");
        }
    }

    fn entangled_state(n: usize) -> DensityMatrix {
        let mut rho = DensityMatrix::zero_state(n);
        crate::gates::h(&mut rho, 0);
        for q in 1..n {
            crate::gates::cnot(&mut rho, q - 1, q);
        }
        crate::gates::t(&mut rho, n - 1);
        rho
    }

    #[test]
    fn identity_kernel_is_identity() {
        let kernel = ChannelKernel1::compile(Kraus1::identity().ops());
        let mut rho = entangled_state(3);
        let before = rho.clone();
        kernel.apply(&mut rho, 1);
        assert_states_close(&rho, &before, TOL);
    }

    #[test]
    fn kernel1_matches_reference_on_idle_channel() {
        // amplitude damping ∘ dephasing: 4 Kraus operators, dense superop.
        let ch = IdleParams::new(300e-6, 200e-6)
            .unwrap()
            .channel(40e-6)
            .unwrap();
        let kernel = ChannelKernel1::compile(ch.ops());
        for q in 0..3 {
            let mut a = entangled_state(3);
            let mut b = a.clone();
            kernel.apply(&mut a, q);
            ch.apply_reference(&mut b, q);
            assert_states_close(&a, &b, TOL);
        }
    }

    #[test]
    fn kernel2_matches_reference_on_depolarizing() {
        let ch = Kraus2::depolarizing(0.07).unwrap();
        let kernel = ChannelKernel2::compile(ch.ops());
        for (hi, lo) in [(0usize, 1usize), (2, 0), (1, 2)] {
            let mut a = entangled_state(3);
            let mut b = a.clone();
            kernel.apply(&mut a, hi, lo);
            ch.apply_reference(&mut b, hi, lo);
            assert_states_close(&a, &b, TOL);
        }
    }

    #[test]
    fn pauli_channel_kernel_is_three_quarters_sparse() {
        // The uniform depolarizing channel is sparser still than a generic
        // Pauli channel (≤ 64 entries): equal X/Y/Z weights cancel exactly,
        // leaving aδ_ip δ_jq + bδ_ij δ_pq = 16 + 16 − 4 entries.
        let kernel = ChannelKernel2::compile(Kraus2::depolarizing(0.2).unwrap().ops());
        assert_eq!(kernel.nnz(), 28);
        // A Hadamard ⊗ Hadamard conjugation has no zero matrix entries, so
        // its superoperator is fully dense.
        let hh = Mat::hadamard().kron(&Mat::hadamard());
        assert_eq!(
            ChannelKernel2::compile(std::slice::from_ref(&hh)).nnz(),
            256
        );
    }

    #[test]
    fn kernel_preserves_trace_of_cptp_channel() {
        let ch = Kraus2::depolarizing(0.3).unwrap();
        let kernel = ChannelKernel2::compile(ch.ops());
        let mut rho = entangled_state(4);
        kernel.apply(&mut rho, 3, 1);
        assert!(rho.trace().approx_eq(C64::ONE, 1e-12));
        rho.validate(1e-10).unwrap();
    }

    #[test]
    fn trace_decreasing_sets_compile() {
        // A single measurement branch |0><0| is a valid (non-CPTP-complete)
        // kernel: the map B ↦ P0 B P0.
        let p0 = Mat::from_reals(2, &[1.0, 0.0, 0.0, 0.0]);
        let kernel = ChannelKernel1::compile(std::slice::from_ref(&p0));
        let mut rho = DensityMatrix::maximally_mixed(1);
        kernel.apply(&mut rho, 0);
        assert!((rho.diagonal_prob(0) - 0.5).abs() < TOL);
        assert!((rho.diagonal_prob(1)).abs() < TOL);
    }
}
