//! Projective measurement and post-selection on density matrices.

use rand::Rng;

use crate::complex::C64;
use crate::state::DensityMatrix;

/// Probability of obtaining outcome `1` when measuring qubit `q` in the Z
/// basis.
///
/// # Examples
///
/// ```
/// use hetarch_qsim::state::DensityMatrix;
/// use hetarch_qsim::matrix::Mat;
/// use hetarch_qsim::measure::prob_one;
///
/// let mut rho = DensityMatrix::zero_state(1);
/// rho.apply_1q(0, &Mat::hadamard());
/// assert!((prob_one(&rho, 0) - 0.5).abs() < 1e-12);
/// ```
pub fn prob_one(rho: &DensityMatrix, q: usize) -> f64 {
    assert!(q < rho.num_qubits(), "qubit {q} out of range");
    let mask = 1usize << q;
    (0..rho.dim())
        .filter(|b| b & mask != 0)
        .map(|b| rho.diagonal_prob(b))
        .sum()
}

/// Projects qubit `q` onto the Z-basis `outcome` **without renormalizing**,
/// returning the outcome probability.
///
/// The caller decides whether to renormalize (post-selection) or to keep the
/// subnormalized branch (trajectory averaging).
pub fn project_z(rho: &mut DensityMatrix, q: usize, outcome: bool) -> f64 {
    assert!(q < rho.num_qubits(), "qubit {q} out of range");
    let mask = 1usize << q;
    let want = if outcome { mask } else { 0 };
    let dim = rho.dim();
    let mut p = 0.0;
    for r in 0..dim {
        let keep_r = r & mask == want;
        if keep_r {
            p += rho.diagonal_prob(r);
        }
        for c in 0..dim {
            if !(keep_r && c & mask == want) {
                *rho.entry_mut(r, c) = C64::ZERO;
            }
        }
    }
    p
}

/// Branch probabilities at or below this (relative) threshold are treated as
/// numerically-impossible measurement outcomes.
const BRANCH_EPS: f64 = 1e-12;

/// Measures qubit `q` in the Z basis, collapsing and renormalizing the state.
/// Returns the sampled outcome.
///
/// # Panics
///
/// Panics if the state trace is zero.
pub fn measure_z<R: Rng + ?Sized>(rho: &mut DensityMatrix, q: usize, rng: &mut R) -> bool {
    measure_z_with(rho, q, rng.gen::<f64>())
}

/// [`measure_z`] with an explicit uniform sample `u ∈ [0, 1)` instead of an
/// RNG — the deterministic seam behind the sampled branch selection.
///
/// When the sampled branch's probability underflows (a clamped `prob_one`
/// or a numerically pure state can leave the minority branch at ~1e-300;
/// renormalizing by it would fill the state with inf/NaN), the measurement
/// takes the other branch instead: outcomes with probability below
/// ~`1e-12` are physically unobservable, and the surviving branch is the
/// state's entire remaining weight.
///
/// # Panics
///
/// Panics if the state trace is zero (both branches empty).
pub fn measure_z_with(rho: &mut DensityMatrix, q: usize, u: f64) -> bool {
    let p1 = prob_one(rho, q).clamp(0.0, 1.0);
    let mut outcome = u < p1;
    let branch = if outcome { p1 } else { 1.0 - p1 };
    if branch <= BRANCH_EPS {
        outcome = !outcome;
    }
    let p = project_z(rho, q, outcome);
    rho.renormalize(p);
    outcome
}

/// Post-selects qubit `q` on `outcome`, renormalizing. Returns `Some(p)` with
/// the branch probability, or `None` if the probability is (numerically)
/// zero and the state is left unusable.
///
/// "Numerically zero" is judged **relative to the input trace**: the
/// documented trajectory-averaging use of [`project_z`] hands this function
/// subnormalized states whose legitimate branches can sit far below any
/// absolute cutoff, and they must not be spuriously rejected.
pub fn postselect_z(rho: &mut DensityMatrix, q: usize, outcome: bool) -> Option<f64> {
    let trace_in = rho.trace().re;
    let p = project_z(rho, q, outcome);
    // Negated `>` rather than `<=`: a NaN branch probability (e.g. from a
    // zero-trace input) must also take the rejection path.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(p > trace_in * 1e-15) {
        return None;
    }
    rho.renormalize(p);
    Some(p)
}

/// Resets qubit `q` to `|0⟩` (measure and conditionally flip, averaged over
/// outcomes — the standard incoherent reset channel).
pub fn reset(rho: &mut DensityMatrix, q: usize) {
    use crate::matrix::Mat;
    let mut one_branch = rho.clone();
    let p1 = project_z(&mut one_branch, q, true);
    let p0 = project_z(rho, q, false);
    if p1 > 0.0 {
        one_branch.apply_1q(q, &Mat::pauli_x());
        let dim = rho.dim();
        for r in 0..dim {
            for c in 0..dim {
                let v = rho.entry(r, c) + one_branch.entry(r, c);
                *rho.entry_mut(r, c) = v;
            }
        }
    }
    let total = p0 + p1;
    if total > 0.0 {
        rho.renormalize(total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-12;

    #[test]
    fn prob_one_of_basis_states() {
        let mut rho = DensityMatrix::zero_state(2);
        assert_eq!(prob_one(&rho, 0), 0.0);
        rho.apply_1q(1, &Mat::pauli_x());
        assert!((prob_one(&rho, 1) - 1.0).abs() < TOL);
        assert!(prob_one(&rho, 0).abs() < TOL);
    }

    #[test]
    fn measure_collapses_superposition() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ones = 0usize;
        let trials = 2000;
        for _ in 0..trials {
            let mut rho = DensityMatrix::zero_state(1);
            rho.apply_1q(0, &Mat::hadamard());
            if measure_z(&mut rho, 0, &mut rng) {
                ones += 1;
                assert!((prob_one(&rho, 0) - 1.0).abs() < TOL);
            } else {
                assert!(prob_one(&rho, 0).abs() < TOL);
            }
            rho.validate(TOL).unwrap();
        }
        let frac = ones as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.05, "measured fraction {frac}");
    }

    #[test]
    fn bell_measurement_correlations() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let mut rho = DensityMatrix::zero_state(2);
            rho.apply_1q(0, &Mat::hadamard());
            rho.apply_2q(0, 1, &Mat::cnot());
            let a = measure_z(&mut rho, 0, &mut rng);
            let b = measure_z(&mut rho, 1, &mut rng);
            assert_eq!(a, b, "bell pair outcomes must agree");
        }
    }

    #[test]
    fn postselect_returns_branch_probability() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_1q(0, &Mat::ry(1.0)); // cos²(0.5) on |0>
        let p = postselect_z(&mut rho, 0, false).unwrap();
        assert!((p - 0.5f64.cos().powi(2)).abs() < TOL);
        assert!((prob_one(&rho, 0)).abs() < TOL);
        rho.validate(TOL).unwrap();
    }

    #[test]
    fn postselect_impossible_outcome_is_none() {
        let mut rho = DensityMatrix::zero_state(1);
        assert!(postselect_z(&mut rho, 0, true).is_none());
    }

    /// Regression: the sampled branch of a near-pure state can have
    /// probability ~1e-18; the old code renormalized by
    /// `p.max(f64::MIN_POSITIVE)` — dividing by 2.2e-308 and filling the
    /// state with inf/NaN. The measurement must take the other branch.
    #[test]
    fn measure_underflowing_branch_takes_the_other_branch() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_1q(0, &Mat::ry(2e-9)); // p1 = sin²(1e-9) ≈ 1e-18
        let p1 = prob_one(&rho, 0);
        assert!(p1 > 0.0 && p1 < 1e-12, "branch must underflow: {p1}");
        // u = 0.0 < p1 samples the ~zero-probability |1⟩ branch.
        let outcome = measure_z_with(&mut rho, 0, 0.0);
        assert!(!outcome, "must fall back to the dominant branch");
        assert!((prob_one(&rho, 0)).abs() < TOL);
        rho.validate(TOL).unwrap();
    }

    /// Regression: `postselect_z` rejected branches with an *absolute*
    /// `p <= 1e-15` cutoff, spuriously discarding legitimate branches of
    /// subnormalized trajectory states (the documented `project_z` use).
    #[test]
    fn postselect_accepts_branches_of_subnormalized_states() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_1q(0, &Mat::hadamard());
        // A trajectory state carrying 1e-16 of the ensemble weight: both of
        // its Z branches hold 5e-17 — below any absolute cutoff.
        rho.renormalize(1e16);
        assert!((rho.trace().re - 1e-16).abs() < 1e-28);
        let p = postselect_z(&mut rho, 0, false).expect("legitimate branch kept");
        assert!((p - 0.5e-16).abs() < 1e-28, "branch probability {p}");
        rho.validate(TOL).unwrap();
        assert!((rho.trace().re - 1.0).abs() < TOL);
    }

    #[test]
    fn reset_restores_ground_state() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_1q(0, &Mat::hadamard());
        rho.apply_2q(0, 1, &Mat::cnot());
        reset(&mut rho, 0);
        assert!(prob_one(&rho, 0).abs() < TOL);
        // Qubit 1 keeps its mixed marginal.
        assert!((prob_one(&rho, 1) - 0.5).abs() < TOL);
        rho.validate(TOL).unwrap();
    }

    #[test]
    fn reset_of_excited_qubit() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_1q(0, &Mat::pauli_x());
        reset(&mut rho, 0);
        assert!(prob_one(&rho, 0).abs() < TOL);
    }
}
