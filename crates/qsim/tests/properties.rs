//! Property-based tests for the density-matrix substrate.

use hetarch_qsim::prelude::*;
use proptest::prelude::*;

/// Strategy: a random single-qubit unitary from the HetArch gate set.
fn arb_1q_unitary() -> impl Strategy<Value = Mat> {
    prop_oneof![
        Just(Mat::pauli_x()),
        Just(Mat::pauli_y()),
        Just(Mat::pauli_z()),
        Just(Mat::hadamard()),
        Just(Mat::s_gate()),
        Just(Mat::t_gate()),
        (0.0..std::f64::consts::TAU).prop_map(Mat::rx),
        (0.0..std::f64::consts::TAU).prop_map(Mat::ry),
        (0.0..std::f64::consts::TAU).prop_map(Mat::rz),
    ]
}

fn arb_2q_unitary() -> impl Strategy<Value = Mat> {
    prop_oneof![
        Just(Mat::cnot()),
        Just(Mat::cz()),
        Just(Mat::swap()),
        Just(Mat::iswap()),
    ]
}

/// Strategy: random normalized Bell-diagonal components.
fn arb_bell_diagonal() -> impl Strategy<Value = BellDiagonal> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0)
        .prop_filter("non-zero mass", |(a, b, c, d)| a + b + c + d > 1e-6)
        .prop_map(|(a, b, c, d)| BellDiagonal::new([a, b, c, d]))
}

fn arb_pauli_probs() -> impl Strategy<Value = PauliProbs> {
    (0.0f64..0.3, 0.0f64..0.3, 0.0f64..0.3).prop_map(|(px, py, pz)| PauliProbs { px, py, pz })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random circuits of unitaries keep ρ a valid pure state.
    #[test]
    fn random_unitary_circuits_preserve_validity(
        ops in proptest::collection::vec((arb_1q_unitary(), 0usize..3), 1..12),
        two_qs in proptest::collection::vec((arb_2q_unitary(), 0usize..3, 0usize..3), 0..6),
    ) {
        let mut rho = DensityMatrix::zero_state(3);
        for (u, q) in &ops {
            rho.apply_1q(*q, u);
        }
        for (u, a, b) in &two_qs {
            if a != b {
                rho.apply_2q(*a, *b, u);
            }
        }
        rho.validate(1e-8).unwrap();
        prop_assert!((rho.purity() - 1.0).abs() < 1e-8);
    }

    /// Channels keep ρ physical (trace one, Hermitian, non-negative diagonal).
    #[test]
    fn channels_preserve_physicality(
        gamma in 0.0f64..1.0,
        p_deph in 0.0f64..1.0,
        p_depol in 0.0f64..1.0,
        seed_ops in proptest::collection::vec((arb_1q_unitary(), 0usize..2), 0..6),
    ) {
        let mut rho = DensityMatrix::zero_state(2);
        for (u, q) in &seed_ops {
            rho.apply_1q(*q, u);
        }
        Kraus1::amplitude_damping(gamma).unwrap().apply(&mut rho, 0);
        Kraus1::phase_flip(p_deph).unwrap().apply(&mut rho, 1);
        Kraus1::depolarizing(p_depol).unwrap().apply(&mut rho, 0);
        Kraus2::depolarizing(p_depol).unwrap().apply(&mut rho, 0, 1);
        rho.validate(1e-8).unwrap();
        // Purity can only decrease from a pure state.
        prop_assert!(rho.purity() <= 1.0 + 1e-9);
    }

    /// Partial trace of a product state recovers the factors.
    #[test]
    fn partial_trace_inverts_tensor(
        ops_a in proptest::collection::vec(arb_1q_unitary(), 0..4),
        ops_b in proptest::collection::vec(arb_1q_unitary(), 0..4),
    ) {
        let mut a = DensityMatrix::zero_state(1);
        for u in &ops_a { a.apply_1q(0, u); }
        let mut b = DensityMatrix::zero_state(1);
        for u in &ops_b { b.apply_1q(0, u); }
        let ab = a.tensor(&b);
        let ra = ab.partial_trace(&[0]);
        let rb = ab.partial_trace(&[1]);
        for r in 0..2 {
            for c in 0..2 {
                prop_assert!(ra.entry(r, c).approx_eq(a.entry(r, c), 1e-10));
                prop_assert!(rb.entry(r, c).approx_eq(b.entry(r, c), 1e-10));
            }
        }
    }

    /// Bell-diagonal Pauli-noise permutation matches the exact density-matrix
    /// channel application (the closed form used on the event-sim fast path).
    #[test]
    fn bell_diagonal_noise_matches_density_matrix(
        pair in arb_bell_diagonal(),
        probs in arb_pauli_probs(),
        qubit in 0usize..2,
    ) {
        let mut fast = pair;
        fast.apply_pauli_noise(probs);

        let mut rho = pair.to_density_matrix();
        probs.channel().unwrap().apply(&mut rho, qubit);
        let exact = BellDiagonal::from_density_matrix(&rho);

        for k in 0..4 {
            prop_assert!(
                (fast.components()[k] - exact.components()[k]).abs() < 1e-9,
                "component {} mismatch: {} vs {}", k, fast.components()[k], exact.components()[k]
            );
        }
    }

    /// The bilinear DEJMPS table agrees with the exact 4-qubit simulation for
    /// arbitrary Bell-diagonal inputs and noise settings.
    #[test]
    fn dejmps_table_matches_exact(
        a in arb_bell_diagonal(),
        b in arb_bell_diagonal(),
        p2q in 0.0f64..0.05,
        meas in 0.0f64..0.05,
    ) {
        let noise = DistillNoise { p2q, p1q: p2q / 10.0, meas_flip: meas };
        let table = DejmpsTable::new(&noise);
        let exact = hetarch_qsim::bell::dejmps_density(&a, &b, &noise);
        let fast = table.round(&a, &b);
        match (exact, fast) {
            (Some(e), Some(f)) => {
                prop_assert!((e.success_prob - f.success_prob).abs() < 1e-9);
                for k in 0..4 {
                    prop_assert!((e.pair.components()[k] - f.pair.components()[k]).abs() < 1e-8);
                }
            }
            (None, None) => {}
            (e, f) => prop_assert!(false, "success mismatch: {:?} vs {:?}", e.is_some(), f.is_some()),
        }
    }

    /// DEJMPS on two identical Werner pairs with F > 0.5 increases fidelity.
    #[test]
    fn dejmps_improves_distillable_werner(f in 0.55f64..0.99) {
        let pair = BellDiagonal::werner(f);
        let out = hetarch_qsim::bell::dejmps_density(
            &pair, &pair, &DistillNoise::default()).unwrap();
        prop_assert!(out.pair.fidelity() > f - 1e-12,
            "distillation decreased fidelity: {} -> {}", f, out.pair.fidelity());
    }

    /// Idle twirl probabilities are valid and monotone in duration.
    #[test]
    fn idle_twirl_monotone(t1_us in 50.0f64..5000.0, ratio in 0.2f64..2.0, t_us in 0.1f64..100.0) {
        let t1 = t1_us * 1e-6;
        let t2 = (t1 * ratio).min(2.0 * t1);
        let idle = IdleParams::new(t1, t2).unwrap();
        let p_short = idle.twirl_probs(t_us * 1e-6);
        let p_long = idle.twirl_probs(t_us * 2e-6);
        prop_assert!(p_short.total() >= 0.0 && p_short.total() <= 1.0);
        prop_assert!(p_long.total() + 1e-12 >= p_short.total());
    }

    /// Measurement branch probabilities sum to one.
    #[test]
    fn projection_probabilities_sum_to_one(
        ops in proptest::collection::vec((arb_1q_unitary(), 0usize..2), 0..8),
        q in 0usize..2,
    ) {
        let mut rho = DensityMatrix::zero_state(2);
        for (u, qq) in &ops { rho.apply_1q(*qq, u); }
        let mut b0 = rho.clone();
        let p0 = hetarch_qsim::measure::project_z(&mut b0, q, false);
        let mut b1 = rho.clone();
        let p1 = hetarch_qsim::measure::project_z(&mut b1, q, true);
        prop_assert!((p0 + p1 - 1.0).abs() < 1e-9);
    }
}
