//! Decoder differential harness.
//!
//! The exhaustive [`LookupDecoder`] is the reference: it enumerates
//! minimum-weight corrections per syndrome, so on any error of weight up to
//! `⌊(d−1)/2⌋` its correction lands in the error's coset. The approximate
//! matching decoders ([`UnionFindDecoder`], `GreedyMatchingDecoder`) must
//! never do worse on those correctable errors, and must stay statistically
//! competitive on random errors.
//!
//! The harness works in the code-capacity setting: i.i.d. X errors on data
//! qubits of a CSS code, decoded from the Z-stabilizer syndrome. The
//! matching decoders see a [`MatchingGraph`] derived mechanically from the
//! code (one node per Z stabilizer, one edge per data qubit connecting the
//! stabilizers its X error flips, boundary edges for qubits on one
//! stabilizer, observable masks from the logical-Z support), so the same
//! construction serves the repetition code, the rotated surface code, and
//! any other CSS code.

use hetarch_stab::codes::StabilizerCode;
use hetarch_stab::decoder::{
    GreedyMatchingDecoder, LookupDecoder, MatchingGraph, UnionFindDecoder,
};
use hetarch_stab::pauli::{Pauli, PauliString};
use rand::rngs::StdRng;
use rand::Rng;

/// A code-capacity decoding setup for X errors on a CSS code.
pub struct CodeCapacity {
    code: StabilizerCode,
    graph: MatchingGraph,
    /// Indices into `code.stabilizers()` of the Z-type generators, in graph
    /// node order.
    z_stabs: Vec<usize>,
    /// Per data qubit: does an X error there flip logical Z?
    obs: Vec<bool>,
}

impl CodeCapacity {
    /// Derives the matching setup from `code`, weighting every edge with
    /// the physical error probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if the code is not CSS or an X error on some qubit flips more
    /// than two Z stabilizers (not a matchable code).
    pub fn new(code: StabilizerCode, p: f64) -> Self {
        assert!(code.is_css(), "code-capacity matching needs a CSS code");
        let n = code.num_qubits();
        // Z-type generators: no X support.
        let z_stabs: Vec<usize> = (0..code.stabilizers().len())
            .filter(|&i| {
                code.stabilizers()[i]
                    .iter_support()
                    .all(|(_, pauli)| pauli == Pauli::Z)
            })
            .collect();
        let mut graph = MatchingGraph::new(z_stabs.len());
        let mut obs = Vec::with_capacity(n);
        for q in 0..n {
            let x_q = PauliString::from_sparse(n, &[(q, Pauli::X)]);
            let flips_logical = !code.logical_z()[0].commutes_with(&x_q);
            obs.push(flips_logical);
            let touched: Vec<u32> = z_stabs
                .iter()
                .enumerate()
                .filter(|(_, &s)| !code.stabilizers()[s].commutes_with(&x_q))
                .map(|(node, _)| node as u32)
                .collect();
            let obs_mask = u64::from(flips_logical);
            match touched.as_slice() {
                [] => {} // X error invisible to Z stabilizers (not matchable).
                [u] => graph.add_edge(*u, None, p, obs_mask),
                [u, v] => graph.add_edge(*u, Some(*v), p, obs_mask),
                more => panic!("qubit {q} flips {} Z stabilizers, cannot match", more.len()),
            }
        }
        CodeCapacity {
            code,
            graph,
            z_stabs,
            obs,
        }
    }

    /// The underlying code.
    pub fn code(&self) -> &StabilizerCode {
        &self.code
    }

    /// The derived matching graph.
    pub fn graph(&self) -> &MatchingGraph {
        &self.graph
    }

    /// The X-error pattern's syndrome restricted to the graph's Z-stabilizer
    /// nodes.
    pub fn node_syndrome(&self, error: &PauliString) -> Vec<bool> {
        let full = self.code.syndrome_of(error);
        self.z_stabs.iter().map(|&s| full[s]).collect()
    }

    /// Whether `error` flips logical Z (the observable the matching
    /// decoders predict).
    pub fn actual_obs(&self, error: &PauliString) -> bool {
        !self.code.logical_z()[0].commutes_with(error)
    }

    /// Builds the X-error string for a set of qubits.
    pub fn x_error(&self, qubits: &[usize]) -> PauliString {
        let support: Vec<(usize, Pauli)> = qubits.iter().map(|&q| (q, Pauli::X)).collect();
        PauliString::from_sparse(self.code.num_qubits(), &support)
    }

    /// Samples an i.i.d. X-error pattern at rate `p`.
    pub fn sample_error(&self, p: f64, rng: &mut StdRng) -> PauliString {
        let qubits: Vec<usize> = (0..self.code.num_qubits())
            .filter(|_| rng.gen_bool(p))
            .collect();
        self.x_error(&qubits)
    }

    /// Per data qubit, whether its X error flips the logical observable.
    pub fn obs_flags(&self) -> &[bool] {
        &self.obs
    }
}

/// Outcome of decoding one error with all three decoders.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// Did the lookup (reference) decoder leave a logical error?
    pub lookup_failed: bool,
    /// Did union-find mispredict the observable?
    pub unionfind_failed: bool,
    /// Did greedy matching mispredict the observable?
    pub greedy_failed: bool,
}

/// Decodes `error` with the exhaustive lookup decoder and both matching
/// decoders, reporting which of them left a logical error.
///
/// The lookup decoder's correction is applied and the residual classified
/// via [`StabilizerCode::is_logical_error`]; the matching decoders predict
/// the observable directly and are compared against the true observable
/// parity of `error`.
pub fn decode_all(
    setup: &CodeCapacity,
    lookup: &LookupDecoder,
    uf: &UnionFindDecoder,
    greedy: &GreedyMatchingDecoder,
    error: &PauliString,
) -> DecodeOutcome {
    let full_syndrome = setup.code.syndrome_of(error);
    let correction = lookup.decode(&full_syndrome);
    let residual = error.xor(&correction);
    debug_assert!(
        setup.code.in_normalizer(&residual),
        "lookup correction must clear the syndrome"
    );
    let lookup_failed = setup.code.is_logical_error(&residual);

    let node_syndrome = setup.node_syndrome(error);
    let actual = u64::from(setup.actual_obs(error));
    let uf_prediction = uf.decode(&node_syndrome);
    assert_eq!(
        uf_prediction,
        uf.decode_reference(&node_syndrome),
        "scratch union-find diverged from the reference decoder"
    );
    let unionfind_failed = uf_prediction & 1 != actual;
    let greedy_failed = greedy.decode(&node_syndrome) & 1 != actual;
    DecodeOutcome {
        lookup_failed,
        unionfind_failed,
        greedy_failed,
    }
}

/// Decodes every shot of a packed detector/observable table three ways —
/// per-shot [`UnionFindDecoder::decode_reference`], the dense scratch path
/// through ONE reused arena, and the sparse batch path — asserting the
/// three agree bit for bit, then returns the batch failure count.
///
/// This is the testkit face of the DESIGN.md §5k bit-identity contract.
pub fn assert_decode_paths_agree(
    uf: &UnionFindDecoder,
    detectors: &hetarch_stab::bits::BitTable,
    observables: &hetarch_stab::bits::BitTable,
) -> u64 {
    let shots = detectors.shots();
    let n = detectors.rows();
    let mut scratch = uf.new_scratch();
    let mut syndrome = vec![false; n];
    let mut reference_failures = 0u64;
    for shot in 0..shots {
        for (d, s) in syndrome.iter_mut().enumerate() {
            *s = detectors.get(d, shot);
        }
        let reference = uf.decode_reference(&syndrome);
        assert_eq!(
            uf.decode_with(&mut scratch, &syndrome),
            reference,
            "scratch path diverged at shot {shot}"
        );
        if (reference & 1 == 1) != observables.get(0, shot) {
            reference_failures += 1;
        }
    }
    let mut batch_failures = 0u64;
    uf.decode_shots(
        &mut scratch,
        detectors,
        observables,
        0,
        0,
        shots,
        |shot, failed| {
            for (d, s) in syndrome.iter_mut().enumerate() {
                *s = detectors.get(d, shot);
            }
            let reference = uf.decode_reference(&syndrome) & 1 == 1;
            assert_eq!(
                failed,
                reference != observables.get(0, shot),
                "batch path diverged at shot {shot}"
            );
            if failed {
                batch_failures += 1;
            }
        },
    );
    assert_eq!(
        batch_failures,
        uf.count_failures(&mut scratch, detectors, observables, 0, 0, shots),
        "count_failures disagrees with decode_shots"
    );
    assert_eq!(batch_failures, reference_failures);
    batch_failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_stab::codes::{repetition_code, rotated_surface_code};

    fn decoders(setup: &CodeCapacity) -> (LookupDecoder, UnionFindDecoder, GreedyMatchingDecoder) {
        (
            LookupDecoder::new(setup.code(), setup.code().distance()),
            UnionFindDecoder::new(setup.graph()),
            GreedyMatchingDecoder::new(setup.graph()),
        )
    }

    #[test]
    fn repetition_graph_shape() {
        let setup = CodeCapacity::new(repetition_code(3), 0.05);
        // d=3 repetition: 2 Z stabilizers, 3 qubit edges (2 boundary).
        assert_eq!(setup.graph().num_nodes(), 2);
        assert_eq!(setup.graph().edges().len(), 3);
    }

    #[test]
    fn surface_graph_shape() {
        let setup = CodeCapacity::new(rotated_surface_code(3), 0.05);
        // d=3 rotated surface code: 4 Z stabilizers. 9 data qubits, but
        // parallel edges (same endpoints, same observable) merge: the two
        // boundary-qubit pairs on the logical-Z edge collapse, leaving 7.
        assert_eq!(setup.graph().num_nodes(), 4);
        assert_eq!(setup.graph().edges().len(), 7);
    }

    #[test]
    fn all_correctable_errors_decode_cleanly_on_both_codes() {
        for code in [repetition_code(3), rotated_surface_code(3)] {
            let setup = CodeCapacity::new(code, 0.05);
            let (lookup, uf, greedy) = decoders(&setup);
            let t = (setup.code().distance() - 1) / 2;
            // Exhaustive over weight 0..=t X errors.
            let n = setup.code().num_qubits();
            let mut patterns: Vec<Vec<usize>> = vec![vec![]];
            for _ in 0..t {
                patterns = patterns
                    .iter()
                    .flat_map(|p| {
                        (0..n).filter(move |q| !p.contains(q)).map(move |q| {
                            let mut ext = p.clone();
                            ext.push(q);
                            ext
                        })
                    })
                    .collect();
            }
            for qubits in [vec![]].into_iter().chain(patterns) {
                let error = setup.x_error(&qubits);
                let outcome = decode_all(&setup, &lookup, &uf, &greedy, &error);
                assert_eq!(
                    outcome,
                    DecodeOutcome {
                        lookup_failed: false,
                        unionfind_failed: false,
                        greedy_failed: false,
                    },
                    "{} qubits {qubits:?}",
                    setup.code().name()
                );
            }
        }
    }
}
