//! Golden-snapshot files with byte-stable formatting.
//!
//! A golden test renders a result into a canonical text form, compares it
//! byte-for-byte against a committed file, and regenerates the file when the
//! `GOLDEN_UPDATE=1` environment variable is set:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -q golden   # refresh tests/golden/*.txt
//! cargo test -q golden                   # verify against committed files
//! ```
//!
//! Byte stability rests on two pillars:
//!
//! * floats are rendered with Rust's `{:?}`, the shortest decimal that
//!   round-trips the exact bit pattern — deterministic across runs,
//!   platforms, and optimization levels;
//! * results themselves come from worker-count-invariant seeded Monte
//!   Carlo, so the rendered values are identical for any `HETARCH_WORKERS`.
//!
//! For serde-serializable values, [`Snapshot::serde_hex`] additionally pins
//! the binary encoding (hex-dumped), so format drift in `vendor/serde` or
//! in a type's derived layout is caught by the same mechanism.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// Environment variable that switches golden assertions into record mode.
pub const GOLDEN_UPDATE_ENV: &str = "GOLDEN_UPDATE";

/// A canonical, byte-stable text rendering of a test result.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    out: String,
}

impl Snapshot {
    /// Starts a snapshot with a `# title` header line.
    pub fn new(title: &str) -> Self {
        let mut s = Snapshot { out: String::new() };
        let _ = writeln!(s.out, "# {title}");
        s
    }

    /// Appends a `[section]` divider.
    pub fn section(&mut self, name: &str) -> &mut Self {
        let _ = writeln!(self.out, "[{name}]");
        self
    }

    /// Appends `key = value` for a display-formatted value (integers,
    /// strings, booleans — anything whose `Display` is already stable).
    pub fn field(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        let _ = writeln!(self.out, "{key} = {value}");
        self
    }

    /// Appends `key = value` with the float rendered via `{:?}` (shortest
    /// round-trip form, bit-stable).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        let _ = writeln!(self.out, "{key} = {value:?}");
        self
    }

    /// Appends `key = hex(serde::to_bytes(value))`, pinning the value's
    /// binary serde encoding.
    pub fn serde_hex<T: Serialize + ?Sized>(&mut self, key: &str, value: &T) -> &mut Self {
        let bytes = serde::to_bytes(value);
        let mut hex = String::with_capacity(bytes.len() * 2);
        for b in bytes {
            let _ = write!(hex, "{b:02x}");
        }
        let _ = writeln!(self.out, "{key} = {hex}");
        self
    }

    /// The rendered snapshot text.
    pub fn render(&self) -> &str {
        &self.out
    }
}

/// True when golden assertions should record instead of compare.
pub fn update_mode() -> bool {
    std::env::var(GOLDEN_UPDATE_ENV).is_ok_and(|v| v == "1")
}

/// Compares `snapshot` against the golden file `dir/name.txt`.
///
/// In update mode ([`GOLDEN_UPDATE_ENV`] set to `1`) the file is
/// (re)written and the assertion passes. Otherwise the file must exist and
/// match byte-for-byte; the failure message pinpoints the first divergent
/// line and explains the regeneration workflow.
///
/// # Panics
///
/// Panics on a missing golden file, a byte mismatch, or an I/O error.
#[track_caller]
pub fn assert_golden(dir: &Path, name: &str, snapshot: &Snapshot) {
    let path: PathBuf = dir.join(format!("{name}.txt"));
    let rendered = snapshot.render();
    if update_mode() {
        std::fs::create_dir_all(dir).expect("create golden directory");
        std::fs::write(&path, rendered).expect("write golden file");
        return;
    }
    let committed = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!(
            "missing golden file {path:?} ({e}); record it with \
             {GOLDEN_UPDATE_ENV}=1 cargo test -q {name}"
        ),
    };
    if committed != rendered {
        let diff = first_divergence(&committed, rendered);
        panic!(
            "golden mismatch for {path:?}:\n{diff}\n\
             If the change is intentional, regenerate with \
             {GOLDEN_UPDATE_ENV}=1 cargo test -q and review the diff."
        );
    }
}

/// Renders the first line where two texts diverge.
fn first_divergence(committed: &str, actual: &str) -> String {
    let mut committed_lines = committed.lines();
    let mut actual_lines = actual.lines();
    let mut line_no = 1usize;
    loop {
        match (committed_lines.next(), actual_lines.next()) {
            (Some(c), Some(a)) if c == a => line_no += 1,
            (Some(c), Some(a)) => {
                return format!("line {line_no}:\n  committed: {c}\n  actual:    {a}")
            }
            (Some(c), None) => return format!("line {line_no}: committed has extra: {c}"),
            (None, Some(a)) => return format!("line {line_no}: actual has extra: {a}"),
            (None, None) => return "identical texts (whitespace-only difference?)".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hetarch-golden-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn snapshot_floats_are_shortest_roundtrip() {
        let mut s = Snapshot::new("demo");
        s.f64("third", 1.0 / 3.0).f64("whole", 2.0);
        let text = s.render();
        assert!(text.contains("third = 0.3333333333333333\n"), "{text}");
        assert!(text.contains("whole = 2.0\n"), "{text}");
    }

    #[test]
    fn serde_hex_is_deterministic() {
        let mut a = Snapshot::new("x");
        a.serde_hex("v", &(1u32, 0.5f64));
        let mut b = Snapshot::new("x");
        b.serde_hex("v", &(1u32, 0.5f64));
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn roundtrip_matches_after_record() {
        let dir = tmp_dir("roundtrip");
        let mut s = Snapshot::new("roundtrip");
        s.field("answer", 42).f64("pi", std::f64::consts::PI);
        // Record by writing directly (equivalent to update mode, without
        // mutating the process environment).
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("case.txt"), s.render()).unwrap();
        assert_golden(&dir, "case", &s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatch_reports_first_divergent_line() {
        let dir = tmp_dir("mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("case.txt"), "# t\na = 1\n").unwrap();
        let mut s = Snapshot::new("t");
        s.field("a", 2);
        let err = std::panic::catch_unwind(|| assert_golden(&dir, "case", &s)).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("GOLDEN_UPDATE=1"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_explains_workflow() {
        let dir = tmp_dir("missing");
        let s = Snapshot::new("t");
        let err = std::panic::catch_unwind(|| assert_golden(&dir, "nope", &s)).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("GOLDEN_UPDATE=1"), "{msg}");
    }
}
