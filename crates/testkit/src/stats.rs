//! Statistical assertions with derived, not hand-tuned, tolerances.
//!
//! Monte-Carlo tests in this workspace compare an observed success count
//! against an analytically expected rate. The contract everywhere is the
//! **sigma contract**: a check at `sigma = k` passes whenever the expected
//! rate is statistically compatible with the observation at the `k`-standard-
//! deviation level, i.e. the test's false-failure probability is roughly
//! `2·Φ(−k)` per comparison (`k = 5` → ~6e−7). Tolerances are computed from
//! the shot count — raising shots tightens the check automatically.
//!
//! Two complementary bounds back the sigma contract:
//!
//! * the **Wilson score interval**, the right confidence interval for a
//!   binomial proportion (well-behaved at rates near 0 or 1), and
//! * the **Hoeffding bound**, a distribution-free tail bound
//!   `P(|p̂ − p| ≥ t) ≤ 2·exp(−2·N·t²)`, conservative but assumption-free.
//!
//! A [`BinomialTest`] accepts an expected rate if *either* bound does at the
//! same nominal confidence, which keeps checks tight in the Gaussian regime
//! without going flaky in the heavy-tail regime.

/// Result of a binomial compatibility check, carrying the evidence needed
/// for an actionable failure message.
#[derive(Clone, Debug)]
pub struct BinomialReport {
    /// Observed success rate `successes / trials`.
    pub observed_rate: f64,
    /// Expected rate under the null hypothesis.
    pub expected_rate: f64,
    /// Deviation in units of the binomial standard error (the effect size).
    pub effect_sigmas: f64,
    /// Wilson score interval at the requested sigma.
    pub wilson: (f64, f64),
    /// Hoeffding tolerance at the requested sigma's nominal confidence.
    pub hoeffding_tol: f64,
    /// Shots needed to resolve the observed deviation at the requested
    /// sigma, if the deviation is real.
    pub required_shots: u64,
    /// True when the expected rate is compatible with the observation.
    pub compatible: bool,
}

impl std::fmt::Display for BinomialReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "observed {:.6} vs expected {:.6}: effect {:.2}σ, wilson [{:.6}, {:.6}], \
             hoeffding ±{:.6}; ~{} shots would resolve this deviation",
            self.observed_rate,
            self.expected_rate,
            self.effect_sigmas,
            self.wilson.0,
            self.wilson.1,
            self.hoeffding_tol,
            self.required_shots,
        )
    }
}

/// An observed binomial sample: `successes` out of `trials`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BinomialTest {
    /// Number of successes observed.
    pub successes: u64,
    /// Number of independent trials.
    pub trials: u64,
}

impl BinomialTest {
    /// Wraps an observation.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero or `successes > trials`.
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(trials > 0, "binomial test needs at least one trial");
        assert!(
            successes <= trials,
            "{successes} successes out of {trials} trials"
        );
        BinomialTest { successes, trials }
    }

    /// Observed success rate.
    pub fn rate(&self) -> f64 {
        self.successes as f64 / self.trials as f64
    }

    /// Wilson score interval at `sigma` standard deviations: the range of
    /// true rates compatible with this observation.
    pub fn wilson_interval(&self, sigma: f64) -> (f64, f64) {
        let n = self.trials as f64;
        let p = self.rate();
        let z2 = sigma * sigma;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (sigma / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Hoeffding tolerance `t` such that `P(|p̂ − p| ≥ t) ≤ 2·exp(−2Nt²)`
    /// equals the two-sided Gaussian tail probability at `sigma`.
    pub fn hoeffding_tolerance(&self, sigma: f64) -> f64 {
        let alpha = 2.0 * normal_tail(sigma);
        // Solve 2·exp(−2Nt²) = alpha for t.
        ((2.0 / alpha).ln() / (2.0 * self.trials as f64)).sqrt()
    }

    /// Full compatibility report against `expected` at `sigma`.
    pub fn check(&self, expected: f64, sigma: f64) -> BinomialReport {
        assert!(
            (0.0..=1.0).contains(&expected),
            "expected rate {expected} outside [0, 1]"
        );
        assert!(sigma > 0.0, "sigma must be positive");
        let n = self.trials as f64;
        let observed = self.rate();
        let deviation = (observed - expected).abs();
        // Standard error under the null; floored at one count so a zero/one
        // expected rate still yields a meaningful effect size.
        let se = (expected * (1.0 - expected) / n).sqrt().max(1.0 / n);
        let wilson = self.wilson_interval(sigma);
        let hoeffding_tol = self.hoeffding_tolerance(sigma);
        let in_wilson = (wilson.0..=wilson.1).contains(&expected);
        let in_hoeffding = deviation <= hoeffding_tol;
        let required_shots = if deviation > 0.0 {
            let var = (expected * (1.0 - expected)).max(expected.clamp(1e-12, 0.5));
            ((sigma * sigma * var / (deviation * deviation)).ceil() as u64).max(1)
        } else {
            self.trials
        };
        BinomialReport {
            observed_rate: observed,
            expected_rate: expected,
            effect_sigmas: deviation / se,
            wilson,
            hoeffding_tol,
            required_shots,
            compatible: in_wilson || in_hoeffding,
        }
    }

    /// Asserts compatibility with `expected` at `sigma`, panicking with the
    /// full [`BinomialReport`] (effect size, intervals, required shots) on
    /// failure.
    ///
    /// # Panics
    ///
    /// Panics when the expected rate is incompatible with the observation.
    #[track_caller]
    pub fn assert_compatible(&self, expected: f64, sigma: f64, context: &str) {
        let report = self.check(expected, sigma);
        assert!(
            report.compatible,
            "{context}: rate incompatible at {sigma}σ — {report}"
        );
    }
}

/// The sigma-contract entry point: asserts that `observed` successes out of
/// `shots` are statistically compatible with `expected` at `sigma` standard
/// deviations. The failure message reports the effect size and the shot
/// count that would resolve the deviation.
///
/// # Panics
///
/// Panics when the rates are incompatible.
#[track_caller]
pub fn assert_rates_compatible(observed: u64, expected: f64, shots: u64, sigma: f64) {
    BinomialTest::new(observed, shots).assert_compatible(expected, sigma, "rate check");
}

/// Two-proportion z statistic for `a` vs `b` (positive when `b`'s rate
/// exceeds `a`'s), using the pooled standard error.
pub fn two_proportion_z(a: BinomialTest, b: BinomialTest) -> f64 {
    let (na, nb) = (a.trials as f64, b.trials as f64);
    let pooled = (a.successes + b.successes) as f64 / (na + nb);
    let se = (pooled * (1.0 - pooled) * (1.0 / na + 1.0 / nb)).sqrt();
    if se == 0.0 {
        return 0.0;
    }
    (b.rate() - a.rate()) / se
}

/// Asserts that `low`'s underlying rate is below `high`'s at `sigma`
/// significance (a one-sided two-proportion z-test).
///
/// A zero-failure `low` sample must additionally clear a minimum-power
/// check: the probability that `low.trials` shots would have produced at
/// least one failure *if* the true rate equalled `high`'s observed rate —
/// `1 − (1 − p̂_high)^n` — must be at least 0.5. Without it, a tiny budget
/// passes vacuously: observing `0/N` for small `N` is likely under both
/// hypotheses and carries no evidence of separation.
///
/// # Panics
///
/// Panics when the separation is not significant at `sigma`, or when a
/// zero-failure sample is underpowered.
#[track_caller]
pub fn assert_rate_below(low: BinomialTest, high: BinomialTest, sigma: f64, context: &str) {
    if low.successes == 0 {
        let p_high = high.rate();
        let power = 1.0 - (1.0 - p_high).powf(low.trials as f64);
        if power < 0.5 {
            let needed = if p_high > 0.0 && p_high < 1.0 {
                (0.5f64.ln() / (1.0 - p_high).ln()).ceil() as u64
            } else {
                u64::MAX
            };
            panic!(
                "{context}: zero-failure sample is underpowered — {} trials would catch a \
                 true rate of {:.6} with probability {power:.3} (< 0.5); \
                 need at least {needed} trials for the pass to mean anything",
                low.trials, p_high,
            );
        }
    }
    let z = two_proportion_z(low, high);
    assert!(
        z >= sigma,
        "{context}: rate {:.6} ({}/{}) not below {:.6} ({}/{}) at {sigma}σ (z = {z:.2})",
        low.rate(),
        low.successes,
        low.trials,
        high.rate(),
        high.successes,
        high.trials,
    );
}

/// Cross-validation of a stratified rare-event estimate against a plain
/// frequency observation of the same quantity.
///
/// The stratified estimator reports `(p̂_L, σ, truncation_bound)`; the plain
/// estimator reports `failures / shots`. The two agree when the observed
/// difference, less the deterministic truncation allowance, is explained by
/// the combined statistical error: primarily a z-test against
/// `√(σ_plain² + σ_strat²)` (the two-proportion contract adapted to a
/// mixed pair), with the distribution-free Hoeffding tolerance on the plain
/// side as a fallback so heavy-tailed small-sample cases don't go flaky.
#[derive(Clone, Copy, Debug)]
pub struct CrossValidation {
    /// The plain estimator's observation.
    pub plain: BinomialTest,
    /// The stratified point estimate.
    pub stratified_p: f64,
    /// The stratified estimate's statistical standard deviation.
    pub stratified_sigma: f64,
    /// The stratified estimate's rigorous truncation bound.
    pub truncation_bound: f64,
}

impl CrossValidation {
    /// Pairs a plain observation with a stratified report.
    pub fn new(
        plain: BinomialTest,
        stratified_p: f64,
        stratified_sigma: f64,
        truncation_bound: f64,
    ) -> Self {
        assert!(stratified_p >= 0.0, "negative stratified estimate");
        assert!(stratified_sigma >= 0.0 && truncation_bound >= 0.0);
        CrossValidation {
            plain,
            stratified_p,
            stratified_sigma,
            truncation_bound,
        }
    }

    /// The part of the observed difference not covered by the truncation
    /// allowance.
    fn excess(&self) -> f64 {
        ((self.plain.rate() - self.stratified_p).abs() - self.truncation_bound).max(0.0)
    }

    /// The discrepancy in combined standard deviations: `excess / √(σ_p² +
    /// σ_s²)`, with the plain standard error floored at one count.
    pub fn z(&self) -> f64 {
        let n = self.plain.trials as f64;
        let p = self.plain.rate();
        let var_plain = (p * (1.0 - p) / n).max(1.0 / (n * n));
        let se = (var_plain + self.stratified_sigma * self.stratified_sigma).sqrt();
        self.excess() / se
    }

    /// Whether the two estimates agree at `sigma` under the z-test, or
    /// failing that under the Hoeffding fallback
    /// `excess ≤ hoeffding_tol(sigma) + sigma·σ_strat`.
    pub fn agrees(&self, sigma: f64) -> bool {
        assert!(sigma > 0.0, "sigma must be positive");
        self.z() <= sigma
            || self.excess()
                <= self.plain.hoeffding_tolerance(sigma) + sigma * self.stratified_sigma
    }

    /// Asserts agreement at `sigma` with a full evidence trail.
    ///
    /// # Panics
    ///
    /// Panics when the estimates disagree.
    #[track_caller]
    pub fn assert_agrees(&self, sigma: f64, context: &str) {
        assert!(
            self.agrees(sigma),
            "{context}: stratified {:.3e} (σ {:.2e}, truncation {:.2e}) vs plain {:.3e} \
             ({}/{}): z = {:.2} exceeds {sigma}σ and the Hoeffding fallback",
            self.stratified_p,
            self.stratified_sigma,
            self.truncation_bound,
            self.plain.rate(),
            self.plain.successes,
            self.plain.trials,
            self.z(),
        );
    }
}

/// Result of a chi-squared goodness-of-fit test.
#[derive(Clone, Copy, Debug)]
pub struct Chi2Result {
    /// The chi-squared statistic `Σ (O − E)² / E`.
    pub statistic: f64,
    /// Degrees of freedom (`bins − 1`).
    pub dof: usize,
    /// Upper-tail probability of the statistic under the null.
    pub p_value: f64,
}

/// Chi-squared goodness-of-fit of observed counts against expected
/// probabilities (which must sum to ~1). Bins with expected count below
/// `5` are pooled into their successor to keep the asymptotics honest.
///
/// # Panics
///
/// Panics on length mismatch, empty input, or probabilities that do not
/// sum to 1 within 1e-6.
pub fn chi2_goodness_of_fit(observed: &[u64], expected_probs: &[f64]) -> Chi2Result {
    assert_eq!(
        observed.len(),
        expected_probs.len(),
        "bin count mismatch between observed and expected"
    );
    assert!(!observed.is_empty(), "need at least one bin");
    let psum: f64 = expected_probs.iter().sum();
    assert!(
        (psum - 1.0).abs() < 1e-6,
        "expected probabilities sum to {psum}, not 1"
    );
    let total: u64 = observed.iter().sum();
    let n = total as f64;
    // Pool low-expectation bins left-to-right until each pooled bin has an
    // expected count of at least 5 (or the input runs out).
    let mut pooled: Vec<(f64, f64)> = Vec::new(); // (observed, expected)
    let mut acc_o = 0.0;
    let mut acc_e = 0.0;
    for (o, p) in observed.iter().zip(expected_probs) {
        acc_o += *o as f64;
        acc_e += p * n;
        if acc_e >= 5.0 {
            pooled.push((acc_o, acc_e));
            acc_o = 0.0;
            acc_e = 0.0;
        }
    }
    if acc_e > 0.0 || acc_o > 0.0 {
        if let Some(last) = pooled.last_mut() {
            last.0 += acc_o;
            last.1 += acc_e;
        } else {
            pooled.push((acc_o, acc_e));
        }
    }
    let statistic: f64 = pooled
        .iter()
        .map(|(o, e)| if *e > 0.0 { (o - e) * (o - e) / e } else { 0.0 })
        .sum();
    let dof = pooled.len().saturating_sub(1).max(1);
    Chi2Result {
        statistic,
        dof,
        p_value: chi2_survival(statistic, dof),
    }
}

/// Upper-tail probability `P(X ≥ x)` for a chi-squared distribution with
/// `dof` degrees of freedom: the regularized upper incomplete gamma
/// `Q(dof/2, x/2)`.
pub fn chi2_survival(x: f64, dof: usize) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(dof as f64 / 2.0, x / 2.0)
}

/// Two-sided Gaussian tail probability `Φ(−sigma)` for `sigma ≥ 0`, via
/// `erfc(sigma/√2)/2 = Q(1/2, sigma²/2)/2`.
pub fn normal_tail(sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    gamma_q(0.5, sigma * sigma / 2.0) / 2.0
}

/// Complementary error function via the incomplete gamma identity
/// `erfc(x) = Q(1/2, x²)` for `x ≥ 0`, extended by symmetry.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        2.0 - gamma_q(0.5, x * x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = Γ(a, x)/Γ(a)`, computed by
/// the series for `x < a + 1` and the continued fraction otherwise
/// (Numerical Recipes `gammq`).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain: a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

/// Series expansion of the regularized lower incomplete gamma `P(a, x)`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Lentz continued fraction for `Q(a, x)`.
fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    // Published Lanczos coefficients, kept verbatim even where the last
    // digit exceeds f64 precision.
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Standard normal quantile helper: the `z` value whose two-sided tail mass
/// is `alpha` (bisection on [`normal_tail`]; used in tests and shot-count
/// planning).
pub fn sigma_for_alpha(alpha: f64) -> f64 {
    assert!((0.0..1.0).contains(&alpha) && alpha > 0.0);
    let (mut lo, mut hi) = (0.0, 40.0);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if 2.0 * normal_tail(mid) > alpha {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for (n, fact) in [(1.0, 1.0f64), (2.0, 1.0), (5.0, 24.0), (10.0, 362_880.0)] {
            let got = ln_gamma(n);
            assert!((got - fact.ln()).abs() < 1e-10, "ln_gamma({n}) = {got}");
        }
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-12);
        // erfc(1) ≈ 0.157299207...
        assert!((erfc(1.0) - 0.157_299_207_050_285).abs() < 1e-9);
        assert!((erfc(-1.0) - (2.0 - 0.157_299_207_050_285)).abs() < 1e-9);
        assert!(erfc(5.0) < 2e-12);
    }

    #[test]
    fn normal_tail_known_values() {
        // Φ(−1.96) ≈ 0.0249979.
        assert!((normal_tail(1.96) - 0.024_997_9).abs() < 1e-5);
        assert!((normal_tail(0.0) - 0.5).abs() < 1e-12);
        assert!((sigma_for_alpha(0.05) - 1.959_96).abs() < 1e-3);
    }

    #[test]
    fn chi2_survival_known_values() {
        // P(X ≥ 3.841) for dof 1 ≈ 0.05.
        assert!((chi2_survival(3.841, 1) - 0.05).abs() < 1e-3);
        // P(X ≥ k) for dof k is near 0.44 for moderate k.
        assert!((chi2_survival(5.0, 5) - 0.4159).abs() < 1e-3);
        assert!((chi2_survival(0.0, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wilson_interval_contains_truth() {
        let t = BinomialTest::new(480, 1000);
        let (lo, hi) = t.wilson_interval(3.0);
        assert!(lo < 0.48 && 0.48 < hi);
        assert!(lo > 0.42 && hi < 0.54, "interval [{lo}, {hi}] too wide");
        // Degenerate observations stay in [0, 1].
        let z = BinomialTest::new(0, 50).wilson_interval(5.0);
        assert!(z.0 == 0.0 && z.1 > 0.0 && z.1 < 1.0);
        let o = BinomialTest::new(50, 50).wilson_interval(5.0);
        assert!(o.1 == 1.0 && o.0 < 1.0);
    }

    #[test]
    fn compatible_rates_pass_and_incompatible_fail() {
        // 10k shots at p = 0.3: ±5σ is about ±0.023.
        let t = BinomialTest::new(3050, 10_000);
        assert!(t.check(0.3, 5.0).compatible);
        let far = BinomialTest::new(4000, 10_000);
        let report = far.check(0.3, 5.0);
        assert!(!report.compatible);
        assert!(report.effect_sigmas > 20.0);
        assert!(
            report.required_shots < 10_000,
            "huge effect needs few shots"
        );
    }

    #[test]
    fn failure_report_formats_effect_and_required_shots() {
        let report = BinomialTest::new(400, 1000).check(0.3, 5.0);
        let msg = report.to_string();
        assert!(msg.contains("σ") && msg.contains("shots"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "rate incompatible")]
    fn assert_compatible_panics_on_large_deviation() {
        BinomialTest::new(900, 1000).assert_compatible(0.3, 5.0, "demo");
    }

    #[test]
    fn assert_rates_compatible_accepts_exact_rate() {
        assert_rates_compatible(300, 0.3, 1000, 5.0);
    }

    #[test]
    fn zero_and_one_expected_rates_are_handled() {
        // Expected 0 with 0 observed: trivially compatible.
        assert_rates_compatible(0, 0.0, 10_000, 5.0);
        assert_rates_compatible(10_000, 1.0, 10_000, 5.0);
        // Expected 0 with a handful observed: Hoeffding still tolerates a
        // few counts at small N, catches gross violations.
        let bad = BinomialTest::new(500, 1000).check(0.0, 5.0);
        assert!(!bad.compatible);
    }

    #[test]
    fn two_proportion_separates_distinct_rates() {
        let a = BinomialTest::new(100, 10_000); // 1%
        let b = BinomialTest::new(300, 10_000); // 3%
        let z = two_proportion_z(a, b);
        assert!(z > 5.0, "z = {z}");
        assert_rate_below(a, b, 5.0, "demo");
    }

    #[test]
    #[should_panic(expected = "not below")]
    fn rate_below_rejects_equal_rates() {
        assert_rate_below(
            BinomialTest::new(200, 10_000),
            BinomialTest::new(210, 10_000),
            5.0,
            "demo",
        );
    }

    #[test]
    fn zero_failures_with_adequate_power_pass() {
        // 1 − (1 − 0.05)^2000 ≈ 1: the budget could not have missed a 5%
        // rate, so 0 failures is real evidence.
        assert_rate_below(
            BinomialTest::new(0, 2_000),
            BinomialTest::new(500, 10_000),
            5.0,
            "powered",
        );
    }

    #[test]
    #[should_panic(expected = "underpowered")]
    fn zero_failures_at_tiny_budget_are_rejected() {
        // 10 trials catch a 3% rate with probability 1 − 0.97^10 ≈ 0.26:
        // the vacuous-pass footgun this guard exists for.
        assert_rate_below(
            BinomialTest::new(0, 10),
            BinomialTest::new(300, 10_000),
            0.5,
            "vacuous",
        );
    }

    #[test]
    fn underpowered_message_reports_required_trials() {
        let result = std::panic::catch_unwind(|| {
            assert_rate_below(
                BinomialTest::new(0, 5),
                BinomialTest::new(100, 1_000),
                1.0,
                "budget",
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        // ln(0.5)/ln(0.9) ≈ 6.58 → 7 trials for 50% power at a 10% rate.
        assert!(msg.contains("at least 7 trials"), "{msg}");
    }

    #[test]
    fn cross_validation_accepts_consistent_estimates() {
        // Plain: 100/10_000 = 1%; stratified: 0.98% ± 0.05%.
        let cv = CrossValidation::new(BinomialTest::new(100, 10_000), 0.0098, 5e-4, 1e-6);
        assert!(cv.agrees(5.0));
        cv.assert_agrees(5.0, "consistent");
        // A zero-sigma (fully enumerated) stratified estimate inside the
        // plain error bars also agrees.
        let enumerated = CrossValidation::new(BinomialTest::new(100, 10_000), 0.0101, 0.0, 0.0);
        assert!(enumerated.agrees(5.0));
    }

    #[test]
    fn cross_validation_truncation_bound_absorbs_deficit() {
        // The stratified estimate is a lower bound; a deficit fully covered
        // by the truncation bound is not a disagreement.
        let cv = CrossValidation::new(BinomialTest::new(200, 10_000), 0.012, 1e-9, 0.01);
        assert_eq!(cv.z(), 0.0);
        assert!(cv.agrees(3.0));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn cross_validation_rejects_gross_disagreement() {
        CrossValidation::new(BinomialTest::new(500, 10_000), 0.001, 1e-5, 1e-8)
            .assert_agrees(5.0, "gross");
    }

    #[test]
    fn cross_validation_hoeffding_fallback_covers_small_samples() {
        // 3/100 vs a stratified 0.5%: z on the floored SE is large, but at
        // 100 trials the Hoeffding tolerance at 5σ is ~0.27 — small-sample
        // noise, not disagreement.
        let cv = CrossValidation::new(BinomialTest::new(3, 100), 0.005, 0.0, 0.0);
        assert!(cv.agrees(5.0));
    }

    #[test]
    fn chi2_accepts_fair_and_rejects_biased_counts() {
        // Near-uniform counts over 4 bins.
        let fair = chi2_goodness_of_fit(&[250, 251, 249, 250], &[0.25; 4]);
        assert!(fair.p_value > 0.9, "p = {}", fair.p_value);
        let biased = chi2_goodness_of_fit(&[400, 200, 200, 200], &[0.25; 4]);
        assert!(biased.p_value < 1e-6, "p = {}", biased.p_value);
    }

    #[test]
    fn chi2_pools_sparse_bins() {
        // Last bin expects 0.4 counts; it must pool into a neighbor rather
        // than blow up the statistic.
        let r = chi2_goodness_of_fit(&[96, 100, 4], &[0.48, 0.5, 0.02]);
        assert!(r.dof <= 2);
        assert!(r.p_value > 0.05);
    }

    #[test]
    fn hoeffding_tolerance_shrinks_with_shots() {
        let small = BinomialTest::new(10, 100).hoeffding_tolerance(5.0);
        let large = BinomialTest::new(1000, 10_000).hoeffding_tolerance(5.0);
        assert!(large < small);
        assert!((small / large - 10.0).abs() < 1e-9, "√N scaling");
    }
}
