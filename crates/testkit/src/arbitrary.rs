//! Random-instance strategies for differential testing.
//!
//! The vendored proptest subset has no `Arbitrary` trait, so the testkit
//! defines its own: [`Arbitrary`] names a canonical strategy per type, and
//! [`NoisyCircuit`]/[`NoiseConfig`] implement it for the circuit class the
//! differential oracle consumes (random Clifford circuits with depolarizing
//! noise — the exact class both simulation substrates must agree on).

use proptest::collection::vec;
use proptest::prelude::*;

/// A type with a canonical random-generation strategy (the role upstream
/// proptest's `Arbitrary` plays).
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// One element of a random noisy Clifford circuit.
///
/// Qubit operands are drawn from a wide range and folded modulo the circuit
/// width when lowered, so a single strategy serves every width.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoisyOp {
    /// Hadamard.
    H(u32),
    /// Phase gate.
    S(u32),
    /// Pauli X.
    X(u32),
    /// CNOT (control, target).
    Cx(u32, u32),
    /// Controlled-Z.
    Cz(u32, u32),
    /// Single-qubit depolarizing noise with probability `p`.
    Depol(u32, f64),
}

/// A random noisy Clifford circuit: `ops` over `num_qubits` qubits, each
/// qubit measured in Z at the end.
#[derive(Clone, Debug, PartialEq)]
pub struct NoisyCircuit {
    /// Circuit width.
    pub num_qubits: u32,
    /// Operation sequence (operands folded modulo `num_qubits` on use).
    pub ops: Vec<NoisyOp>,
}

impl NoisyCircuit {
    /// Canonicalizes the circuit: folds qubit operands into range and drops
    /// two-qubit ops whose operands coincide after folding. The result
    /// lowers identically but reads cleanly in failure reports.
    pub fn canonical(&self) -> NoisyCircuit {
        let n = self.num_qubits;
        let ops = self
            .ops
            .iter()
            .filter_map(|op| match *op {
                NoisyOp::H(q) => Some(NoisyOp::H(q % n)),
                NoisyOp::S(q) => Some(NoisyOp::S(q % n)),
                NoisyOp::X(q) => Some(NoisyOp::X(q % n)),
                NoisyOp::Cx(a, b) => {
                    let (a, b) = (a % n, b % n);
                    (a != b).then_some(NoisyOp::Cx(a, b))
                }
                NoisyOp::Cz(a, b) => {
                    let (a, b) = (a % n, b % n);
                    (a != b).then_some(NoisyOp::Cz(a, b))
                }
                NoisyOp::Depol(q, p) => Some(NoisyOp::Depol(q % n, p)),
            })
            .collect();
        NoisyCircuit { num_qubits: n, ops }
    }
}

/// Noise-configuration bounds for generated circuits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseConfig {
    /// Minimum per-event depolarizing probability.
    pub depol_min: f64,
    /// Maximum per-event depolarizing probability.
    pub depol_max: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            depol_min: 0.01,
            depol_max: 0.15,
        }
    }
}

/// Strategy for one [`NoisyOp`] drawing qubits from `0..qubit_span` and
/// depolarizing strengths from `noise`.
pub fn noisy_op(qubit_span: u32, noise: NoiseConfig) -> BoxedStrategy<NoisyOp> {
    let n = qubit_span;
    prop_oneof![
        (0..n).prop_map(NoisyOp::H),
        (0..n).prop_map(NoisyOp::S),
        (0..n).prop_map(NoisyOp::X),
        (0..n, 1..n).prop_map(move |(a, d)| NoisyOp::Cx(a, (a + d) % n)),
        (0..n, 1..n).prop_map(move |(a, d)| NoisyOp::Cz(a, (a + d) % n)),
        (0..n, noise.depol_min..noise.depol_max).prop_map(|(q, p)| NoisyOp::Depol(q, p)),
    ]
    .boxed()
}

/// Strategy for a [`NoisyCircuit`] with `qubits` in `2..=max_qubits` and an
/// op count drawn from `min_ops..max_ops`.
pub fn noisy_circuit(
    max_qubits: u32,
    min_ops: usize,
    max_ops: usize,
    noise: NoiseConfig,
) -> BoxedStrategy<NoisyCircuit> {
    assert!(max_qubits >= 2, "need at least two qubits");
    (
        2..=max_qubits,
        vec(noisy_op(max_qubits, noise), min_ops..max_ops),
    )
        .prop_map(|(num_qubits, ops)| NoisyCircuit { num_qubits, ops }.canonical())
        .boxed()
}

impl Arbitrary for NoiseConfig {
    fn arbitrary() -> BoxedStrategy<Self> {
        (0.005f64..0.05, 0.05f64..0.2)
            .prop_map(|(depol_min, depol_max)| NoiseConfig {
                depol_min,
                depol_max,
            })
            .boxed()
    }
}

impl Arbitrary for NoisyCircuit {
    fn arbitrary() -> BoxedStrategy<Self> {
        noisy_circuit(4, 8, 24, NoiseConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::test_runner::TestRng;

    #[test]
    fn canonical_folds_and_drops_degenerate_pairs() {
        let c = NoisyCircuit {
            num_qubits: 2,
            ops: vec![
                NoisyOp::H(3),
                NoisyOp::Cx(1, 3), // folds to (1, 1): dropped
                NoisyOp::Cz(0, 3), // folds to (0, 1): kept
                NoisyOp::Depol(2, 0.1),
            ],
        }
        .canonical();
        assert_eq!(
            c.ops,
            vec![NoisyOp::H(1), NoisyOp::Cz(0, 1), NoisyOp::Depol(0, 0.1)]
        );
    }

    #[test]
    fn arbitrary_circuits_are_canonical_and_in_bounds() {
        let mut rng = TestRng::deterministic();
        let strategy = NoisyCircuit::arbitrary();
        for _ in 0..50 {
            let c = strategy.generate(&mut rng);
            assert!((2..=4).contains(&c.num_qubits));
            assert_eq!(c, c.canonical(), "already canonical");
            for op in &c.ops {
                if let NoisyOp::Depol(_, p) = op {
                    assert!((0.01..0.15).contains(p));
                }
            }
        }
    }
}
