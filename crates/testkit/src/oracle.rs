//! The cross-simulator differential oracle.
//!
//! [`DiffOracle`] runs one random noisy Clifford circuit
//! ([`NoisyCircuit`]) through the workspace's three independent models of
//! the same physics and demands pairwise agreement:
//!
//! 1. **Exact** — the density-matrix simulator (`hetarch-qsim`), applying
//!    each depolarizing event as a Kraus channel.
//! 2. **Composed** — the phenomenological `compose_errors` path
//!    (`hetarch-cells`): each depolarizing event's Pauli components are
//!    propagated through the remaining Cliffords as deterministic frames,
//!    giving a per-qubit flip probability that is XOR-composed across
//!    independent events. For Pauli noise on Clifford circuits this model
//!    is *exact*, so it must match (1) to float precision.
//! 3. **Sampled** — the sharded Pauli-frame Monte-Carlo sampler
//!    (`hetarch-stab` via `exec::WorkerPool`), which must match (1)
//!    statistically under the testkit sigma contract.
//!
//! Comparisons use the flip rate of each end-of-circuit Z measurement
//! relative to the noiseless reference, restricted to qubits whose
//! reference outcome is deterministic (the only qubits for which frame
//! flips have a probability interpretation).
//!
//! A failing circuit can be [`minimize`](DiffOracle::minimize)d: greedy
//! delta-debugging drops ops while the failure persists, typically leaving
//! a few gates that pin down the disagreement.

use hetarch_cells::channel::compose_errors;
use hetarch_exec::WorkerPool;
use hetarch_qsim::backend::{self, DmBackend};
use hetarch_qsim::channels::Kraus1;
use hetarch_qsim::state::DensityMatrix;
use hetarch_qsim::{gates, measure};
use hetarch_stab::circuit::Circuit;
use hetarch_stab::frame::FrameSampler;
use hetarch_stab::tableau::Tableau;

use crate::arbitrary::{NoisyCircuit, NoisyOp};
use crate::stats::BinomialTest;

/// Which pairwise comparison a failure came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleComparison {
    /// Frame-sampler statistics disagreed with the exact density matrix.
    SamplerVsExact,
    /// The phenomenological composed-error path disagreed with the exact
    /// density matrix.
    ExactVsComposed,
}

/// A differential-oracle disagreement on one measured qubit.
#[derive(Clone, Debug)]
pub struct OracleFailure {
    /// Which model pair disagreed.
    pub comparison: OracleComparison,
    /// The measured qubit.
    pub qubit: usize,
    /// Rate produced by the model under test (sampler or composed path).
    pub observed: f64,
    /// Exact density-matrix rate.
    pub expected: f64,
    /// Human-readable evidence (statistical report or deviation).
    pub detail: String,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pair = match self.comparison {
            OracleComparison::SamplerVsExact => "frame sampler vs density matrix",
            OracleComparison::ExactVsComposed => "composed errors vs density matrix",
        };
        write!(
            f,
            "{pair} disagree on qubit {}: {:.6} vs {:.6} ({})",
            self.qubit, self.observed, self.expected, self.detail
        )
    }
}

/// Differential oracle over the three simulation paths.
#[derive(Clone, Debug)]
pub struct DiffOracle {
    shots: usize,
    seed: u64,
    sigma: f64,
    workers: usize,
    depol_scale: f64,
    backend: &'static dyn DmBackend,
}

impl DiffOracle {
    /// Creates an oracle running `shots` Monte-Carlo shots per check at RNG
    /// seed `seed`, with the default `5σ` statistical contract. The exact
    /// path applies channels through the process-wide active
    /// [`DmBackend`](hetarch_qsim::backend::DmBackend).
    pub fn new(shots: usize, seed: u64) -> Self {
        assert!(shots > 0, "oracle needs at least one shot");
        DiffOracle {
            shots,
            seed,
            sigma: 5.0,
            workers: 4,
            depol_scale: 1.0,
            backend: backend::active(),
        }
    }

    /// Overrides the statistical significance threshold.
    pub fn with_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma > 0.0);
        self.sigma = sigma;
        self
    }

    /// Closes the oracle's exact path over an explicit
    /// [`DmBackend`](hetarch_qsim::backend::DmBackend): every depolarizing
    /// event is routed through `backend`, so the three-path differential
    /// (exact vs composed vs sampled) exercises that backend end to end.
    pub fn with_backend(mut self, backend: &'static dyn DmBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the worker count used for the sharded sampler (results are
    /// worker-count-invariant; this only changes wall-clock).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Fault-injection hook: scales every depolarizing probability in the
    /// *stabilizer lowering only*, simulating a mutated noise constant in
    /// the sampler. `1.0` (the default) is the faithful lowering; anything
    /// else is a deliberately injected bug the oracle must catch.
    ///
    /// Test-only: exists so the oracle's detection power is itself testable.
    #[doc(hidden)]
    pub fn with_depol_scale(mut self, scale: f64) -> Self {
        assert!(scale >= 0.0 && scale.is_finite());
        self.depol_scale = scale;
        self
    }

    /// Runs all three models on `circuit` and checks pairwise agreement.
    ///
    /// # Errors
    ///
    /// Returns the first [`OracleFailure`] found.
    pub fn check(&self, circuit: &NoisyCircuit) -> Result<(), OracleFailure> {
        let nc = circuit.canonical();
        let n = nc.num_qubits as usize;

        // Exact path + noiseless reference.
        let mut dm = DensityMatrix::zero_state(n);
        let mut tb = Tableau::new(n);
        for op in &nc.ops {
            match *op {
                NoisyOp::H(q) => {
                    gates::h(&mut dm, q as usize);
                    tb.h(q as usize);
                }
                NoisyOp::S(q) => {
                    gates::s(&mut dm, q as usize);
                    tb.s(q as usize);
                }
                NoisyOp::X(q) => {
                    gates::x(&mut dm, q as usize);
                    tb.x(q as usize);
                }
                NoisyOp::Cx(a, b) => {
                    gates::cnot(&mut dm, a as usize, b as usize);
                    tb.cx(a as usize, b as usize);
                }
                NoisyOp::Cz(a, b) => {
                    gates::cz(&mut dm, a as usize, b as usize);
                    tb.cz(a as usize, b as usize);
                }
                NoisyOp::Depol(q, p) => {
                    let ch = Kraus1::depolarizing(p).expect("generated probability is valid");
                    self.backend
                        .apply_1q(&ch, std::slice::from_mut(&mut dm), q as usize);
                }
            }
        }

        // Composed path: XOR-composition of per-event flip probabilities.
        let composed = self.composed_flip_rates(&nc);

        // Sampled path.
        let stab_circuit = self.lower(&nc);
        let pool = WorkerPool::new(self.workers);
        let result = FrameSampler::sample(&stab_circuit, self.shots, self.seed, &pool);

        for (q, &composed_q) in composed.iter().enumerate().take(n) {
            let p_ref = tb.prob_one(q);
            if (p_ref - 0.5).abs() < 0.25 {
                // Reference outcome is random: flips carry no probability
                // meaning for this qubit.
                continue;
            }
            let reference_one = p_ref > 0.5;
            let p_one = measure::prob_one(&dm, q);
            // Clamp float roundoff (prob_one can land at -2e-16 or 1+ε).
            let exact_flip = if reference_one { 1.0 - p_one } else { p_one }.clamp(0.0, 1.0);

            // Composed vs exact: both are analytic, so the agreement is
            // float-precision, not statistical.
            if (composed_q - exact_flip).abs() > 1e-9 {
                return Err(OracleFailure {
                    comparison: OracleComparison::ExactVsComposed,
                    qubit: q,
                    observed: composed_q,
                    expected: exact_flip,
                    detail: format!("deviation {:.3e} > 1e-9", (composed_q - exact_flip).abs()),
                });
            }

            // Sampler vs exact: sigma contract.
            let flips = result.meas_flips.count_ones(q) as u64;
            let test = BinomialTest::new(flips, self.shots as u64);
            let report = test.check(exact_flip, self.sigma);
            if !report.compatible {
                return Err(OracleFailure {
                    comparison: OracleComparison::SamplerVsExact,
                    qubit: q,
                    observed: test.rate(),
                    expected: exact_flip,
                    detail: report.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Asserts agreement, panicking with the failure (and its minimized
    /// circuit) otherwise.
    ///
    /// # Panics
    ///
    /// Panics on the first oracle disagreement.
    #[track_caller]
    pub fn assert_agrees(&self, circuit: &NoisyCircuit) {
        if let Err(failure) = self.check(circuit) {
            let minimal = self.minimize(circuit);
            panic!(
                "differential oracle failed: {failure}\nminimized circuit ({} qubits, {} ops): {:?}",
                minimal.num_qubits,
                minimal.ops.len(),
                minimal.ops
            );
        }
    }

    /// Greedy shrinker: repeatedly drops ops from a failing circuit while
    /// the failure persists, returning a (locally) minimal failing circuit.
    /// Returns the canonical input unchanged if it does not fail.
    pub fn minimize(&self, circuit: &NoisyCircuit) -> NoisyCircuit {
        let mut current = circuit.canonical();
        if self.check(&current).is_ok() {
            return current;
        }
        loop {
            let mut shrunk = false;
            let mut i = 0;
            while i < current.ops.len() {
                let mut candidate = current.clone();
                candidate.ops.remove(i);
                if self.check(&candidate).is_err() {
                    current = candidate;
                    shrunk = true;
                } else {
                    i += 1;
                }
            }
            if !shrunk {
                return current;
            }
        }
    }

    /// Lowers the abstract circuit to a stabilizer [`Circuit`], applying
    /// the fault-injection [`depol_scale`](Self::with_depol_scale) to every
    /// depolarizing probability.
    fn lower(&self, nc: &NoisyCircuit) -> Circuit {
        let mut c = Circuit::new(nc.num_qubits);
        for op in &nc.ops {
            match *op {
                NoisyOp::H(q) => {
                    c.h(&[q]);
                }
                NoisyOp::S(q) => {
                    c.s(&[q]);
                }
                NoisyOp::X(q) => {
                    c.x(&[q]);
                }
                NoisyOp::Cx(a, b) => {
                    c.cx(&[(a, b)]);
                }
                NoisyOp::Cz(a, b) => {
                    c.cz(&[(a, b)]);
                }
                NoisyOp::Depol(q, p) => {
                    c.depolarize1((p * self.depol_scale).min(1.0), &[q]);
                }
            }
        }
        let qubits: Vec<u32> = (0..nc.num_qubits).collect();
        c.measure(&qubits, 0.0);
        c
    }

    /// Per-qubit measurement-flip probabilities from the phenomenological
    /// composed-error model: each depolarizing event's X/Y/Z components are
    /// propagated as deterministic Pauli frames through the remaining
    /// Cliffords; the event flips qubit `m`'s Z measurement with probability
    /// `p/3 · k_m` (`k_m` = components whose propagated frame has X support
    /// on `m`), and independent events compose by [`compose_errors`].
    fn composed_flip_rates(&self, nc: &NoisyCircuit) -> Vec<f64> {
        let n = nc.num_qubits as usize;
        let mut flip = vec![0.0f64; n];
        for (i, op) in nc.ops.iter().enumerate() {
            if let NoisyOp::Depol(q, p) = *op {
                let mut k = vec![0u32; n];
                // Components X=(1,0), Y=(1,1), Z=(0,1) on qubit q.
                for (x0, z0) in [(true, false), (true, true), (false, true)] {
                    let x_mask = propagate_frame(&nc.ops[i + 1..], q, x0, z0);
                    for (m, count) in k.iter_mut().enumerate() {
                        if (x_mask >> m) & 1 == 1 {
                            *count += 1;
                        }
                    }
                }
                for (m, count) in k.iter().enumerate() {
                    if *count > 0 {
                        flip[m] = compose_errors(flip[m], p * f64::from(*count) / 3.0);
                    }
                }
            }
        }
        flip
    }
}

/// Propagates a single-qubit Pauli frame `(x0, z0)` on `start_qubit`
/// through the Clifford part of `ops` (noise ops act trivially on frames),
/// returning the final X-support mask — the set of Z measurements the frame
/// flips. Same update rules as the frame sampler, one frame instead of a
/// bit-packed batch.
fn propagate_frame(ops: &[NoisyOp], start_qubit: u32, x0: bool, z0: bool) -> u64 {
    let mut x: u64 = (x0 as u64) << start_qubit;
    let mut z: u64 = (z0 as u64) << start_qubit;
    for op in ops {
        match *op {
            NoisyOp::H(q) => {
                let (xb, zb) = ((x >> q) & 1, (z >> q) & 1);
                x = (x & !(1 << q)) | (zb << q);
                z = (z & !(1 << q)) | (xb << q);
            }
            NoisyOp::S(q) => {
                z ^= ((x >> q) & 1) << q;
            }
            NoisyOp::X(_) => {}
            NoisyOp::Cx(a, b) => {
                x ^= ((x >> a) & 1) << b;
                z ^= ((z >> b) & 1) << a;
            }
            NoisyOp::Cz(a, b) => {
                z ^= ((x >> a) & 1) << b;
                z ^= ((x >> b) & 1) << a;
            }
            NoisyOp::Depol(_, _) => {}
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faithful_oracle() -> DiffOracle {
        DiffOracle::new(20_000, 11)
    }

    #[test]
    fn noiseless_ghz_circuit_agrees() {
        let c = NoisyCircuit {
            num_qubits: 3,
            ops: vec![NoisyOp::H(0), NoisyOp::Cx(0, 1), NoisyOp::Cx(1, 2)],
        };
        faithful_oracle().check(&c).unwrap();
    }

    #[test]
    fn depolarized_deterministic_qubit_agrees() {
        let c = NoisyCircuit {
            num_qubits: 2,
            ops: vec![NoisyOp::X(0), NoisyOp::Depol(0, 0.12), NoisyOp::Cx(0, 1)],
        };
        faithful_oracle().check(&c).unwrap();
    }

    #[test]
    fn composed_path_tracks_error_propagation() {
        // A depol on q0 *before* CX propagates X components to q1; the
        // composed path must account for that (flip rate 2p/3 on both).
        let c = NoisyCircuit {
            num_qubits: 2,
            ops: vec![NoisyOp::Depol(0, 0.09), NoisyOp::Cx(0, 1)],
        };
        let oracle = faithful_oracle();
        let rates = oracle.composed_flip_rates(&c.canonical());
        assert!((rates[0] - 0.06).abs() < 1e-12);
        // q1 flips when the component is X or Y on q0 (propagated to X on
        // q1): also 2p/3.
        assert!((rates[1] - 0.06).abs() < 1e-12);
        oracle.check(&c).unwrap();
    }

    #[test]
    fn injected_depol_bug_is_caught() {
        // Mutating the sampler's depolarizing constant by 60% must trip the
        // sampler-vs-exact comparison on a deterministic qubit.
        let c = NoisyCircuit {
            num_qubits: 2,
            ops: vec![NoisyOp::X(0), NoisyOp::Depol(0, 0.1)],
        };
        let buggy = DiffOracle::new(50_000, 13).with_depol_scale(1.6);
        let failure = buggy.check(&c).unwrap_err();
        assert_eq!(failure.comparison, OracleComparison::SamplerVsExact);
        // The same oracle with the faithful constant passes.
        DiffOracle::new(50_000, 13).check(&c).unwrap();
    }

    #[test]
    fn minimize_strips_irrelevant_ops() {
        // Pad a failing core (X + Depol on q0) with ops on other qubits;
        // the shrinker must strip the padding.
        let c = NoisyCircuit {
            num_qubits: 3,
            ops: vec![
                NoisyOp::H(1),
                NoisyOp::S(2),
                NoisyOp::X(0),
                NoisyOp::Cz(1, 2),
                NoisyOp::Depol(0, 0.1),
                NoisyOp::S(2),
            ],
        };
        let buggy = DiffOracle::new(50_000, 17).with_depol_scale(1.8);
        assert!(buggy.check(&c).is_err());
        let minimal = buggy.minimize(&c);
        assert!(
            minimal.ops.len() <= 2,
            "expected a near-minimal circuit, got {:?}",
            minimal.ops
        );
        assert!(minimal.ops.contains(&NoisyOp::Depol(0, 0.1)));
    }

    #[test]
    fn worker_count_does_not_change_the_verdict() {
        let c = NoisyCircuit {
            num_qubits: 2,
            ops: vec![NoisyOp::X(1), NoisyOp::Depol(1, 0.08), NoisyOp::Cx(1, 0)],
        };
        for workers in [1, 8] {
            DiffOracle::new(20_000, 23)
                .with_workers(workers)
                .check(&c)
                .unwrap();
        }
    }
}
