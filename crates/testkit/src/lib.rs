//! # hetarch-testkit
//!
//! The verification subsystem of the HetArch workspace (reproduction of
//! *HetArch: Heterogeneous Microarchitectures for Superconducting Quantum
//! Systems*, MICRO 2023).
//!
//! HetArch's hierarchical-simulation claim — density matrices at the cell
//! level, composed error channels at the module level, stabilizer sampling
//! for QEC — is only as trustworthy as the cross-layer consistency checks
//! backing it. This crate turns those checks into a library with four
//! parts:
//!
//! * [`conformance`] — CPTP / trace-preservation / Hermiticity validators
//!   for Kraus channels and density-matrix invariant checks (unit trace,
//!   PSD via Gershgorin + Cholesky). Depending on this crate also enables
//!   `hetarch-qsim`'s `validate` feature, auditing every channel
//!   application in debug builds.
//! * [`stats`] — statistical assertions under the **sigma contract**:
//!   tolerances derived from shot counts (Wilson interval + Hoeffding
//!   bound), chi-squared goodness of fit, and two-proportion comparisons,
//!   with failure messages reporting effect size and required shots.
//! * [`oracle`] + [`arbitrary`] — the [`DiffOracle`](oracle::DiffOracle)
//!   differential harness running random noisy Clifford circuits through
//!   the density-matrix simulator, the sharded Pauli-frame sampler, and
//!   the phenomenological `compose_errors` path, with strategies for
//!   random circuits and a greedy shrinker for failing cases.
//! * [`golden`] — byte-stable golden-snapshot files with a
//!   `GOLDEN_UPDATE=1` regeneration workflow.
//! * [`decoder`] — a decoder differential harness checking the
//!   approximate matching decoders against the exhaustive lookup decoder.
//!
//! # Example
//!
//! ```
//! use hetarch_testkit::prelude::*;
//!
//! // Derived tolerance: 5σ compatibility of 1 030 hits in 10 000 shots
//! // with an expected rate of 10%.
//! BinomialTest::new(1_030, 10_000).assert_compatible(0.10, 5.0, "hit rate");
//!
//! // Differential oracle on a small noisy circuit.
//! let circuit = NoisyCircuit {
//!     num_qubits: 2,
//!     ops: vec![NoisyOp::X(0), NoisyOp::Depol(0, 0.05), NoisyOp::Cx(0, 1)],
//! };
//! DiffOracle::new(8_192, 7).check(&circuit).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod conformance;
pub mod decoder;
pub mod golden;
pub mod oracle;
pub mod stats;

pub use stats::BinomialTest;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use crate::arbitrary::{
        noisy_circuit, noisy_op, Arbitrary, NoiseConfig, NoisyCircuit, NoisyOp,
    };
    pub use crate::conformance::{assert_cptp1, assert_cptp2, assert_valid_density};
    pub use crate::decoder::{decode_all, CodeCapacity, DecodeOutcome};
    pub use crate::golden::{assert_golden, Snapshot};
    pub use crate::oracle::{DiffOracle, OracleComparison, OracleFailure};
    pub use crate::stats::{
        assert_rate_below, assert_rates_compatible, chi2_goodness_of_fit, two_proportion_z,
        BinomialTest, Chi2Result, CrossValidation,
    };
}
