//! Channel and state conformance assertions.
//!
//! The checking logic lives in [`hetarch_qsim::conformance`] (it must sit
//! below the channel types to power the `validate`-feature hooks); this
//! module re-exports it and adds panic-on-violation wrappers for test code.
//!
//! Building against `hetarch-testkit` also enables `hetarch-qsim`'s
//! `validate` feature, so in debug builds every `Kraus1::apply` /
//! `Kraus2::apply` anywhere in the dependency graph checks its output state.

pub use hetarch_qsim::conformance::{
    check_density_matrix, check_kraus1, check_kraus2, check_kraus_ops, VALIDATE_TOL,
};

use hetarch_qsim::channels::{Kraus1, Kraus2};
use hetarch_qsim::state::DensityMatrix;

/// Asserts that a single-qubit channel is a CPTP map.
///
/// # Panics
///
/// Panics with the violated property on failure.
#[track_caller]
pub fn assert_cptp1(channel: &Kraus1) {
    if let Err(e) = check_kraus1(channel, VALIDATE_TOL) {
        panic!("single-qubit channel violates CPTP: {e}");
    }
}

/// Asserts that a two-qubit channel is a CPTP map.
///
/// # Panics
///
/// Panics with the violated property on failure.
#[track_caller]
pub fn assert_cptp2(channel: &Kraus2) {
    if let Err(e) = check_kraus2(channel, VALIDATE_TOL) {
        panic!("two-qubit channel violates CPTP: {e}");
    }
}

/// Asserts that `rho` is a valid density matrix (unit trace, Hermitian,
/// positive semidefinite).
///
/// # Panics
///
/// Panics with the violated invariant on failure.
#[track_caller]
pub fn assert_valid_density(rho: &DensityMatrix) {
    if let Err(e) = check_density_matrix(rho, VALIDATE_TOL) {
        panic!("density matrix invariant violated: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_qsim::gates;

    #[test]
    fn standard_objects_pass_assertions() {
        assert_cptp1(&Kraus1::depolarizing(0.2).unwrap());
        assert_cptp2(&Kraus2::depolarizing(0.2).unwrap());
        let mut rho = DensityMatrix::zero_state(2);
        gates::h(&mut rho, 0);
        gates::cnot(&mut rho, 0, 1);
        assert_valid_density(&rho);
    }

    #[test]
    fn validate_hooks_fire_through_apply() {
        // With the `validate` feature on (always, in this crate), applying a
        // channel audits the output; this simply must not panic.
        let mut rho = DensityMatrix::zero_state(2);
        Kraus1::amplitude_damping(0.4).unwrap().apply(&mut rho, 0);
        Kraus2::depolarizing(0.3).unwrap().apply(&mut rho, 1, 0);
        assert_valid_density(&rho);
    }
}
