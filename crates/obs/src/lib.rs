//! Runtime observability for the HetArch workspace: lock-free counters,
//! gauges, f64 ledgers and wall-time histograms behind a global registry,
//! scoped span timers, and a [`RunReport`] that serializes to deterministic
//! JSON.
//!
//! # The no-op guarantee
//!
//! Instrumentation must never perturb the workspace's bit-identical
//! Monte-Carlo contract or its hot-path throughput, so collection is double
//! gated:
//!
//! * **Compile time** — without the `enabled` cargo feature (exposed as the
//!   `obs` feature by every instrumented crate), every operation in this
//!   crate is an inline empty function and the instrumented binaries are
//!   identical to uninstrumented ones.
//! * **Run time** — with the feature on, collection still only happens when
//!   `HETARCH_OBS=1` is set in the environment (checked once, cached); the
//!   hot-path cost when disabled is a single relaxed atomic load.
//!
//! Metrics only ever *count* and *time* — they never feed back into RNG
//! streams, shard plans or results, so enabling them cannot change any
//! simulation output.
//!
//! # Usage
//!
//! Call sites declare `static` metrics and touch them directly; a metric
//! registers itself in the global registry on first touch:
//!
//! ```
//! use hetarch_obs as obs;
//!
//! static SHOTS: obs::Counter = obs::Counter::new("example.shots");
//! static RUN: obs::Histogram = obs::Histogram::new("example.run_ns");
//!
//! obs::force_enabled(true); // tests/tools; production uses HETARCH_OBS=1
//! let _span = RUN.span();
//! SHOTS.add(128);
//! let report = obs::report();
//! # #[cfg(feature = "enabled")]
//! assert_eq!(report.counters.get("example.shots"), Some(&128));
//! ```
//!
//! [`report`] snapshots every registered metric into a [`RunReport`];
//! [`RunReport::to_json`] emits JSON with stable (sorted) key order, and
//! [`RunReport::golden_json`] restricts the payload to worker-count- and
//! wall-clock-independent quantities (counters), making it safe to check
//! against golden files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

/// Snapshot of one histogram: total observations, summed nanoseconds, and
/// the non-empty power-of-two buckets as `(upper_bound_ns, count)` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations (nanoseconds for time histograms).
    pub sum: u64,
    /// Non-empty buckets as `(exclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another snapshot into this one (summing counts bucket-wise).
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        let mut map: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(ub, c) in &other.buckets {
            *map.entry(ub).or_insert(0) += c;
        }
        self.buckets = map.into_iter().collect();
    }
}

/// A point-in-time snapshot of every registered metric, with stable
/// (lexicographic) key order everywhere.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Monotonic event counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges.
    pub gauges: BTreeMap<String, u64>,
    /// Accumulating f64 ledgers (e.g. simulated-seconds totals).
    pub ledgers: BTreeMap<String, f64>,
    /// Wall-time histograms.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_map<V, F: Fn(&V) -> String>(out: &mut String, map: &BTreeMap<String, V>, fmt: F) {
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json_escape(k), fmt(v)));
    }
    out.push('}');
}

impl RunReport {
    /// Serializes the full report to JSON with deterministic key order.
    ///
    /// Timing quantities (ledgers, histograms) are wall-clock dependent, so
    /// this payload is **not** suitable for golden checks — use
    /// [`RunReport::golden_json`] for that.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":");
        push_map(&mut out, &self.counters, |v| v.to_string());
        out.push_str(",\"gauges\":");
        push_map(&mut out, &self.gauges, |v| v.to_string());
        out.push_str(",\"ledgers\":");
        // `{:?}` is the shortest round-trip float form: deterministic for a
        // given value, unlike a fixed precision which hides real drift.
        push_map(&mut out, &self.ledgers, |v| format!("{v:?}"));
        out.push_str(",\"histograms\":");
        push_map(&mut out, &self.histograms, |h| {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(ub, c)| format!("[{ub},{c}]"))
                .collect();
            format!(
                "{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                h.count,
                h.sum,
                buckets.join(",")
            )
        });
        out.push('}');
        out
    }

    /// Serializes only the deterministic portion of the report: counters,
    /// which depend on *what* was computed but never on wall-clock time or
    /// the worker count. Safe to compare byte-for-byte across runs and
    /// worker counts.
    pub fn golden_json(&self) -> String {
        let mut out = String::from("{\"counters\":");
        push_map(&mut out, &self.counters, |v| v.to_string());
        out.push('}');
        out
    }

    /// Merges another report into this one: counters, ledgers and
    /// histograms add; gauges take the other report's value.
    pub fn merge(&mut self, other: &RunReport) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.ledgers {
            *self.ledgers.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[cfg(feature = "enabled")]
mod imp {
    //! The real metric implementations (feature `enabled`).

    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    use crate::{HistSnapshot, RunReport};

    // Runtime gate: 0 = not yet resolved from the environment, 1 = on,
    // 2 = off. `force_enabled` overwrites the resolved state directly.
    static STATE: AtomicU8 = AtomicU8::new(0);

    /// True when metric collection is active (`HETARCH_OBS=1`, or a
    /// [`force_enabled`] override). The hot-path cost of a disabled check is
    /// one relaxed atomic load.
    #[inline]
    pub fn enabled() -> bool {
        match STATE.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => init_from_env(),
        }
    }

    #[cold]
    fn init_from_env() -> bool {
        let on = std::env::var("HETARCH_OBS")
            .map(|v| v == "1")
            .unwrap_or(false);
        STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
        on
    }

    /// Overrides the runtime gate, bypassing `HETARCH_OBS` (tests and
    /// report-mode tools that opt in explicitly).
    pub fn force_enabled(on: bool) {
        STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    }

    #[derive(Default)]
    struct Registry {
        counters: Vec<&'static Counter>,
        gauges: Vec<&'static Gauge>,
        ledgers: Vec<&'static Ledger>,
        histograms: Vec<&'static Histogram>,
    }

    static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
        counters: Vec::new(),
        gauges: Vec::new(),
        ledgers: Vec::new(),
        histograms: Vec::new(),
    });

    /// A monotonically increasing event counter.
    pub struct Counter {
        name: &'static str,
        registered: AtomicBool,
        value: AtomicU64,
    }

    impl Counter {
        /// A counter named `name`; `const`, so it can live in a `static`.
        pub const fn new(name: &'static str) -> Self {
            Counter {
                name,
                registered: AtomicBool::new(false),
                value: AtomicU64::new(0),
            }
        }

        fn register(&'static self) {
            if !self.registered.swap(true, Ordering::Relaxed) {
                REGISTRY.lock().expect("obs registry").counters.push(self);
            }
        }

        /// Adds `n` to the counter (no-op while collection is disabled).
        #[inline]
        pub fn add(&'static self, n: u64) {
            if enabled() {
                self.register();
                self.value.fetch_add(n, Ordering::Relaxed);
            }
        }

        /// Adds one to the counter.
        #[inline]
        pub fn inc(&'static self) {
            self.add(1);
        }

        /// Current value (0 until first registered touch).
        pub fn get(&'static self) -> u64 {
            self.value.load(Ordering::Relaxed)
        }
    }

    /// A last-value gauge.
    pub struct Gauge {
        name: &'static str,
        registered: AtomicBool,
        value: AtomicU64,
    }

    impl Gauge {
        /// A gauge named `name`.
        pub const fn new(name: &'static str) -> Self {
            Gauge {
                name,
                registered: AtomicBool::new(false),
                value: AtomicU64::new(0),
            }
        }

        /// Sets the gauge (no-op while collection is disabled).
        #[inline]
        pub fn set(&'static self, v: u64) {
            if enabled() {
                if !self.registered.swap(true, Ordering::Relaxed) {
                    REGISTRY.lock().expect("obs registry").gauges.push(self);
                }
                self.value.store(v, Ordering::Relaxed);
            }
        }

        /// Current value.
        pub fn get(&'static self) -> u64 {
            self.value.load(Ordering::Relaxed)
        }
    }

    /// An accumulating `f64` ledger (lock-free via CAS on the bit pattern).
    pub struct Ledger {
        name: &'static str,
        registered: AtomicBool,
        bits: AtomicU64,
    }

    impl Ledger {
        /// A ledger named `name`, starting at 0.0.
        pub const fn new(name: &'static str) -> Self {
            Ledger {
                name,
                registered: AtomicBool::new(false),
                bits: AtomicU64::new(0),
            }
        }

        /// Adds `v` to the ledger (no-op while collection is disabled).
        #[inline]
        pub fn add(&'static self, v: f64) {
            if enabled() {
                if !self.registered.swap(true, Ordering::Relaxed) {
                    REGISTRY.lock().expect("obs registry").ledgers.push(self);
                }
                let _ = self
                    .bits
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                        Some((f64::from_bits(bits) + v).to_bits())
                    });
            }
        }

        /// Current total.
        pub fn get(&'static self) -> f64 {
            f64::from_bits(self.bits.load(Ordering::Relaxed))
        }
    }

    const NUM_BUCKETS: usize = 64;

    /// A lock-free histogram over power-of-two buckets; time histograms
    /// record nanoseconds.
    pub struct Histogram {
        name: &'static str,
        registered: AtomicBool,
        count: AtomicU64,
        sum: AtomicU64,
        buckets: [AtomicU64; NUM_BUCKETS],
    }

    impl Histogram {
        /// A histogram named `name`.
        pub const fn new(name: &'static str) -> Self {
            // A `const` repeat operand is the only way to build an array of
            // non-`Copy` atomics in a `const fn`; each element gets a fresh
            // zero, so the interior-mutability-in-const lint does not apply.
            #[allow(clippy::declare_interior_mutable_const)]
            const Z: AtomicU64 = AtomicU64::new(0);
            Histogram {
                name,
                registered: AtomicBool::new(false),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                buckets: [Z; NUM_BUCKETS],
            }
        }

        fn register(&'static self) {
            if !self.registered.swap(true, Ordering::Relaxed) {
                REGISTRY.lock().expect("obs registry").histograms.push(self);
            }
        }

        /// Records one observation (no-op while collection is disabled).
        #[inline]
        pub fn record(&'static self, v: u64) {
            if enabled() {
                self.register();
                // Bucket i counts values in [2^(i-1), 2^i); v = 0 lands in
                // bucket 0.
                let idx = (64 - (v | 1).leading_zeros() as usize).min(NUM_BUCKETS - 1);
                self.count.fetch_add(1, Ordering::Relaxed);
                self.sum.fetch_add(v, Ordering::Relaxed);
                self.buckets[idx].fetch_add(1, Ordering::Relaxed);
            }
        }

        /// Records the elapsed time of `timer` in nanoseconds.
        #[inline]
        pub fn record_timer(&'static self, timer: Timer) {
            if let Some(start) = timer.start {
                self.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
        }

        /// Starts a scoped span that records its elapsed time into this
        /// histogram when dropped.
        pub fn span(&'static self) -> SpanGuard {
            SpanGuard {
                hist: self,
                timer: Timer::start(),
            }
        }

        fn snapshot(&'static self) -> HistSnapshot {
            let buckets = self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let c = b.load(Ordering::Relaxed);
                    (c > 0).then(|| (1u64 << i.min(63), c))
                })
                .collect();
            HistSnapshot {
                count: self.count.load(Ordering::Relaxed),
                sum: self.sum.load(Ordering::Relaxed),
                buckets,
            }
        }
    }

    /// A started wall-clock timer; [`Timer::start`] is free when collection
    /// is disabled (no `Instant::now` call).
    #[derive(Debug)]
    pub struct Timer {
        start: Option<Instant>,
    }

    impl Timer {
        /// Starts the timer (captures `Instant::now` only when enabled).
        #[inline]
        pub fn start() -> Timer {
            Timer {
                start: enabled().then(Instant::now),
            }
        }
    }

    /// Scope guard recording its lifetime into a histogram on drop.
    pub struct SpanGuard {
        hist: &'static Histogram,
        timer: Timer,
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if let Some(start) = self.timer.start.take() {
                self.hist
                    .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
        }
    }

    /// Snapshots every registered metric into a [`RunReport`]. Metrics that
    /// have never been touched while enabled do not appear.
    pub fn report() -> RunReport {
        let reg = REGISTRY.lock().expect("obs registry");
        let mut r = RunReport::default();
        for c in &reg.counters {
            r.counters
                .insert(c.name.to_string(), c.value.load(Ordering::Relaxed));
        }
        for g in &reg.gauges {
            r.gauges
                .insert(g.name.to_string(), g.value.load(Ordering::Relaxed));
        }
        for l in &reg.ledgers {
            r.ledgers.insert(
                l.name.to_string(),
                f64::from_bits(l.bits.load(Ordering::Relaxed)),
            );
        }
        let hists: Vec<&'static Histogram> = reg.histograms.clone();
        drop(reg);
        for h in hists {
            r.histograms.insert(h.name.to_string(), h.snapshot());
        }
        r
    }

    /// Zeroes every registered metric (report isolation in tests/tools).
    pub fn reset() {
        let reg = REGISTRY.lock().expect("obs registry");
        for c in &reg.counters {
            c.value.store(0, Ordering::Relaxed);
        }
        for g in &reg.gauges {
            g.value.store(0, Ordering::Relaxed);
        }
        for l in &reg.ledgers {
            l.bits.store(0, Ordering::Relaxed);
        }
        for h in &reg.histograms {
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    //! Zero-cost no-op implementations (feature `enabled` off). Every method
    //! is an inline empty body, so instrumented call sites compile away.

    use crate::RunReport;

    /// Always false without the `enabled` feature.
    #[inline(always)]
    pub const fn enabled() -> bool {
        false
    }

    /// No-op without the `enabled` feature.
    #[inline(always)]
    pub fn force_enabled(_on: bool) {}

    /// No-op counter.
    pub struct Counter(());

    impl Counter {
        /// No-op counter (zero-sized state).
        pub const fn new(_name: &'static str) -> Self {
            Counter(())
        }

        /// No-op.
        #[inline(always)]
        pub fn add(&'static self, _n: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn inc(&'static self) {}

        /// Always 0.
        pub fn get(&'static self) -> u64 {
            0
        }
    }

    /// No-op gauge.
    pub struct Gauge(());

    impl Gauge {
        /// No-op gauge.
        pub const fn new(_name: &'static str) -> Self {
            Gauge(())
        }

        /// No-op.
        #[inline(always)]
        pub fn set(&'static self, _v: u64) {}

        /// Always 0.
        pub fn get(&'static self) -> u64 {
            0
        }
    }

    /// No-op ledger.
    pub struct Ledger(());

    impl Ledger {
        /// No-op ledger.
        pub const fn new(_name: &'static str) -> Self {
            Ledger(())
        }

        /// No-op.
        #[inline(always)]
        pub fn add(&'static self, _v: f64) {}

        /// Always 0.0.
        pub fn get(&'static self) -> f64 {
            0.0
        }
    }

    /// No-op histogram.
    pub struct Histogram(());

    impl Histogram {
        /// No-op histogram.
        pub const fn new(_name: &'static str) -> Self {
            Histogram(())
        }

        /// No-op.
        #[inline(always)]
        pub fn record(&'static self, _v: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn record_timer(&'static self, _timer: Timer) {}

        /// No-op span.
        #[inline(always)]
        pub fn span(&'static self) -> SpanGuard {
            SpanGuard(())
        }
    }

    /// No-op timer (zero-sized, no clock read).
    #[derive(Debug)]
    pub struct Timer;

    impl Timer {
        /// No-op.
        #[inline(always)]
        pub fn start() -> Timer {
            Timer
        }
    }

    /// No-op span guard.
    pub struct SpanGuard(());

    /// Always the empty report without the `enabled` feature.
    pub fn report() -> RunReport {
        RunReport::default()
    }

    /// No-op without the `enabled` feature.
    pub fn reset() {}
}

pub use imp::{
    enabled, force_enabled, report, reset, Counter, Gauge, Histogram, Ledger, SpanGuard, Timer,
};

/// Starts a scoped timer recording into the given `static` [`Histogram`]
/// when the returned guard drops.
///
/// ```
/// use hetarch_obs as obs;
/// static PHASE: obs::Histogram = obs::Histogram::new("example.phase_ns");
/// {
///     let _span = obs::span!(PHASE);
///     // ... timed work ...
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($hist:expr) => {
        $hist.span()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "enabled")]
    mod enabled_tests {
        use super::super::*;
        use std::sync::Mutex;

        // Metrics are process-global; serialize tests that reset/report.
        static LOCK: Mutex<()> = Mutex::new(());

        fn guard() -> std::sync::MutexGuard<'static, ()> {
            let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
            force_enabled(true);
            reset();
            g
        }

        static C1: Counter = Counter::new("test.c1");
        static C2: Counter = Counter::new("test.c2");
        static G1: Gauge = Gauge::new("test.g1");
        static L1: Ledger = Ledger::new("test.l1");
        static H1: Histogram = Histogram::new("test.h1");

        #[test]
        fn counters_accumulate_and_report() {
            let _g = guard();
            C1.inc();
            C1.add(9);
            C2.add(5);
            G1.set(3);
            L1.add(0.25);
            L1.add(0.5);
            let r = report();
            assert_eq!(r.counters["test.c1"], 10);
            assert_eq!(r.counters["test.c2"], 5);
            assert_eq!(r.gauges["test.g1"], 3);
            assert!((r.ledgers["test.l1"] - 0.75).abs() < 1e-12);
        }

        #[test]
        fn disabled_records_nothing() {
            let _g = guard();
            force_enabled(false);
            C1.add(100);
            H1.record(7);
            force_enabled(true);
            let r = report();
            assert_eq!(r.counters.get("test.c1").copied().unwrap_or(0), 0);
        }

        #[test]
        fn histogram_buckets_and_concurrent_merge() {
            let _g = guard();
            // 0 -> bucket [_,1); 1 -> [1,2); 7 -> [4,8); 8 -> [8,16).
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for v in [0u64, 1, 7, 8, 1_000] {
                            H1.record(v);
                        }
                    });
                }
            });
            let snap = report().histograms["test.h1"].clone();
            assert_eq!(snap.count, 20);
            assert_eq!(snap.sum, 4 * 1016);
            let total: u64 = snap.buckets.iter().map(|(_, c)| c).sum();
            assert_eq!(total, 20);
            assert!(snap.buckets.iter().any(|&(ub, c)| ub == 8 && c == 4));
            assert!((snap.mean() - 1016.0 / 5.0).abs() < 1e-9);
        }

        #[test]
        fn snapshot_merge_sums() {
            let mut a = HistSnapshot {
                count: 2,
                sum: 10,
                buckets: vec![(4, 1), (8, 1)],
            };
            let b = HistSnapshot {
                count: 3,
                sum: 9,
                buckets: vec![(8, 2), (16, 1)],
            };
            a.merge(&b);
            assert_eq!(a.count, 5);
            assert_eq!(a.sum, 19);
            assert_eq!(a.buckets, vec![(4, 1), (8, 3), (16, 1)]);

            let mut r1 = RunReport::default();
            r1.counters.insert("x".into(), 1);
            let mut r2 = RunReport::default();
            r2.counters.insert("x".into(), 2);
            r2.gauges.insert("g".into(), 7);
            r1.merge(&r2);
            assert_eq!(r1.counters["x"], 3);
            assert_eq!(r1.gauges["g"], 7);
        }

        #[test]
        fn json_is_deterministic_and_sorted() {
            let _g = guard();
            C2.add(2);
            C1.add(1);
            G1.set(4);
            let r = report();
            let json = r.to_json();
            assert_eq!(json, report().to_json(), "same state, same bytes");
            let c1 = json.find("test.c1").expect("c1 present");
            let c2 = json.find("test.c2").expect("c2 present");
            assert!(c1 < c2, "keys sorted");
            assert!(json.starts_with("{\"counters\":{"));
            let golden = r.golden_json();
            assert!(golden.contains("\"test.c1\":1"));
            assert!(
                !golden.contains("gauges"),
                "golden payload is counters-only"
            );
        }

        #[test]
        fn span_records_into_histogram() {
            let _g = guard();
            {
                let _span = span!(H1);
                std::hint::black_box(0);
            }
            let snap = &report().histograms["test.h1"];
            assert_eq!(snap.count, 1);
        }

        #[test]
        fn reset_zeroes_everything() {
            let _g = guard();
            C1.add(3);
            H1.record(5);
            L1.add(1.0);
            reset();
            let r = report();
            assert_eq!(r.counters["test.c1"], 0);
            assert_eq!(r.histograms["test.h1"].count, 0);
            assert_eq!(r.ledgers["test.l1"], 0.0);
        }
    }

    #[cfg(not(feature = "enabled"))]
    mod disabled_tests {
        use super::super::*;

        static C: Counter = Counter::new("noop.c");
        static H: Histogram = Histogram::new("noop.h");

        #[test]
        fn everything_is_a_noop() {
            assert!(!enabled());
            force_enabled(true);
            assert!(!enabled(), "force_enabled is inert without the feature");
            C.add(5);
            assert_eq!(C.get(), 0);
            let _span = span!(H);
            H.record_timer(Timer::start());
            let r = report();
            assert!(r.counters.is_empty());
            reset();
        }
    }

    #[test]
    fn empty_report_json_shape() {
        let r = RunReport::default();
        assert_eq!(
            r.to_json(),
            "{\"counters\":{},\"gauges\":{},\"ledgers\":{},\"histograms\":{}}"
        );
        assert_eq!(r.golden_json(), "{\"counters\":{}}");
    }

    #[test]
    fn json_escapes_names() {
        let mut r = RunReport::default();
        r.counters.insert("weird\"name\\x".into(), 1);
        let json = r.to_json();
        assert!(json.contains("weird\\\"name\\\\x"));
    }
}
