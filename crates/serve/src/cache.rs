//! Single-flight admission plus a bounded LRU result cache, keyed by
//! [`QueryKey`].
//!
//! This mirrors the cell library's characterization admission (PR 1) one
//! level up: the first requester of a key becomes the **leader** and owns
//! enqueueing the job; everyone else arriving while it is in flight
//! **joins** the same [`JobSlot`] and shares the one rendered response
//! buffer. Completed responses stay in an LRU of at most `capacity` ready
//! entries; in-flight slots are never evicted.
//!
//! Cancellation is reference-counted through the slot's waiter count: when
//! the last waiting connection disconnects, the slot's [`CancelToken`] fires
//! and the in-flight entry is removed so a later identical request starts
//! fresh instead of joining a dying job.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use hetarch_exec::CancelToken;

use crate::query::{Query, QueryKey};

/// Terminal states a waiter can observe on a [`JobSlot`].
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The rendered response frame, shared by every coalesced waiter.
    Done(Arc<Vec<u8>>),
    /// The job failed (panic or internal error); the message is safe to
    /// send to clients.
    Failed(String),
    /// The job was cancelled before completing.
    Cancelled,
}

#[derive(Debug)]
enum SlotState {
    Pending,
    Done(Arc<Vec<u8>>),
    Failed(String),
    Cancelled,
}

/// One in-flight execution, shared between its coalesced waiters and the
/// executor that runs it.
#[derive(Debug)]
pub struct JobSlot {
    key: QueryKey,
    query: OnceLock<Query>,
    state: Mutex<SlotState>,
    cond: Condvar,
    token: CancelToken,
    waiters: AtomicUsize,
    enqueued_at: Instant,
}

impl JobSlot {
    fn new(key: QueryKey) -> Arc<JobSlot> {
        Arc::new(JobSlot {
            key,
            query: OnceLock::new(),
            state: Mutex::new(SlotState::Pending),
            cond: Condvar::new(),
            token: CancelToken::new(),
            waiters: AtomicUsize::new(1),
            enqueued_at: Instant::now(),
        })
    }

    /// The query key this slot executes.
    pub fn key(&self) -> &QueryKey {
        &self.key
    }

    /// The cancellation token the executor threads into the sweep.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Attaches the parsed query the executor should run. The leader calls
    /// this exactly once, before enqueueing the slot.
    pub fn set_query(&self, query: Query) {
        self.query
            .set(query)
            .expect("set_query is called once, by the leader");
    }

    /// The query attached by the leader, if any.
    pub fn query(&self) -> Option<&Query> {
        self.query.get()
    }

    /// How long the slot has existed (queue wait, until execution starts).
    pub fn queued_for(&self) -> Duration {
        self.enqueued_at.elapsed()
    }

    /// Blocks up to `timeout` for a terminal state; `None` on timeout.
    pub fn wait_outcome(&self, timeout: Duration) -> Option<Outcome> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("slot lock");
        loop {
            match &*state {
                SlotState::Done(bytes) => return Some(Outcome::Done(bytes.clone())),
                SlotState::Failed(msg) => return Some(Outcome::Failed(msg.clone())),
                SlotState::Cancelled => return Some(Outcome::Cancelled),
                SlotState::Pending => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self
                .cond
                .wait_timeout(state, deadline - now)
                .expect("slot lock");
            state = next;
        }
    }

    /// True once a terminal state is set.
    pub fn is_settled(&self) -> bool {
        !matches!(*self.state.lock().expect("slot lock"), SlotState::Pending)
    }

    /// Registers one more coalesced waiter.
    fn add_waiter(&self) {
        self.waiters.fetch_add(1, Ordering::Relaxed);
    }

    /// Deregisters a waiter; returns how many remain.
    pub fn drop_waiter(&self) -> usize {
        let before = self.waiters.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(before >= 1, "waiter count underflow");
        before - 1
    }

    fn settle(&self, new: SlotState) {
        let mut state = self.state.lock().expect("slot lock");
        if matches!(*state, SlotState::Pending) {
            *state = new;
            self.cond.notify_all();
        }
    }
}

/// Result of admitting a key.
pub enum Admit {
    /// The response was cached: hand these bytes straight back.
    Hit(Arc<Vec<u8>>),
    /// An identical query is already in flight: wait on its slot.
    Join(Arc<JobSlot>),
    /// This caller leads: it must enqueue the slot (or abort it on
    /// queue-full).
    Lead(Arc<JobSlot>),
}

enum Entry {
    Ready { bytes: Arc<Vec<u8>>, last_used: u64 },
    InFlight(Arc<JobSlot>),
}

struct Inner {
    entries: HashMap<QueryKey, Entry>,
    ready: usize,
    tick: u64,
}

/// The single-flight LRU cache.
pub struct QueryCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl QueryCache {
    /// A cache holding at most `capacity` completed responses (at least 1).
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                ready: 0,
                tick: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Admits a request for `key`: cache hit, coalesced join, or lead.
    pub fn admit(&self, key: &QueryKey) -> Admit {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(Entry::Ready { bytes, last_used }) => {
                *last_used = tick;
                Admit::Hit(bytes.clone())
            }
            Some(Entry::InFlight(slot)) => {
                slot.add_waiter();
                Admit::Join(slot.clone())
            }
            None => {
                let slot = JobSlot::new(key.clone());
                inner
                    .entries
                    .insert(key.clone(), Entry::InFlight(slot.clone()));
                Admit::Lead(slot)
            }
        }
    }

    /// Publishes `bytes` for the slot's key and settles every waiter.
    ///
    /// The entry is only replaced if it still belongs to `slot` — a slot
    /// that was aborted (and possibly superseded by a retry) never
    /// overwrites its successor.
    pub fn fulfill(&self, slot: &Arc<JobSlot>, bytes: Arc<Vec<u8>>) {
        {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(Entry::InFlight(current)) = inner.entries.get(&slot.key) {
                if Arc::ptr_eq(current, slot) {
                    inner.entries.insert(
                        slot.key.clone(),
                        Entry::Ready {
                            bytes: bytes.clone(),
                            last_used: tick,
                        },
                    );
                    inner.ready += 1;
                    self.evict_locked(&mut inner);
                }
            }
        }
        slot.settle(SlotState::Done(bytes));
    }

    /// Fails the slot (executor panic): waiters get [`Outcome::Failed`] and
    /// the in-flight entry is removed so the key can be retried.
    pub fn fail(&self, slot: &Arc<JobSlot>, message: String) {
        self.remove_in_flight(slot);
        slot.settle(SlotState::Failed(message));
    }

    /// Cancels the slot (last waiter gone, or queue-full abort): fires its
    /// token, removes the in-flight entry, and settles any racing waiter
    /// with [`Outcome::Cancelled`].
    pub fn cancel(&self, slot: &Arc<JobSlot>) {
        slot.token.cancel();
        self.remove_in_flight(slot);
        slot.settle(SlotState::Cancelled);
    }

    /// Number of completed responses currently cached.
    pub fn ready_len(&self) -> usize {
        self.inner.lock().expect("cache lock").ready
    }

    fn remove_in_flight(&self, slot: &Arc<JobSlot>) {
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(Entry::InFlight(current)) = inner.entries.get(&slot.key) {
            if Arc::ptr_eq(current, slot) {
                inner.entries.remove(&slot.key);
            }
        }
    }

    fn evict_locked(&self, inner: &mut Inner) {
        while inner.ready > self.capacity {
            let victim = inner
                .entries
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready { last_used, .. } => Some((*last_used, k.clone())),
                    Entry::InFlight(_) => None,
                })
                .min_by_key(|(last_used, _)| *last_used)
                .map(|(_, k)| k);
            match victim {
                Some(k) => {
                    inner.entries.remove(&k);
                    inner.ready -= 1;
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> QueryKey {
        Query::TestBlock { millis: seed }.key()
    }

    #[test]
    fn leader_then_hit() {
        let cache = QueryCache::new(4);
        let k = key(1);
        let slot = match cache.admit(&k) {
            Admit::Lead(slot) => slot,
            _ => panic!("first admit must lead"),
        };
        cache.fulfill(&slot, Arc::new(b"r1".to_vec()));
        match cache.admit(&k) {
            Admit::Hit(bytes) => assert_eq!(&**bytes, b"r1"),
            _ => panic!("second admit must hit"),
        }
    }

    #[test]
    fn joiners_share_the_leaders_buffer() {
        let cache = QueryCache::new(4);
        let k = key(2);
        let lead = match cache.admit(&k) {
            Admit::Lead(slot) => slot,
            _ => panic!("lead"),
        };
        let join = match cache.admit(&k) {
            Admit::Join(slot) => slot,
            _ => panic!("join"),
        };
        assert!(Arc::ptr_eq(&lead, &join));
        let bytes = Arc::new(b"shared".to_vec());
        cache.fulfill(&lead, bytes.clone());
        match join.wait_outcome(Duration::from_secs(1)) {
            Some(Outcome::Done(got)) => assert!(Arc::ptr_eq(&got, &bytes)),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = QueryCache::new(2);
        for i in 0..3 {
            let k = key(i);
            if let Admit::Lead(slot) = cache.admit(&k) {
                cache.fulfill(&slot, Arc::new(vec![i as u8]));
            }
        }
        assert_eq!(cache.ready_len(), 2);
        // key(0) was used least recently: it must be the one evicted.
        assert!(matches!(cache.admit(&key(0)), Admit::Lead(_)));
        assert!(matches!(cache.admit(&key(2)), Admit::Hit(_)));
    }

    #[test]
    fn cancelled_slot_frees_the_key() {
        let cache = QueryCache::new(4);
        let k = key(3);
        let slot = match cache.admit(&k) {
            Admit::Lead(slot) => slot,
            _ => panic!("lead"),
        };
        assert_eq!(slot.drop_waiter(), 0);
        cache.cancel(&slot);
        assert!(slot.token().is_cancelled());
        assert!(matches!(
            slot.wait_outcome(Duration::from_millis(10)),
            Some(Outcome::Cancelled)
        ));
        // A fresh request leads again instead of joining the dead slot.
        assert!(matches!(cache.admit(&k), Admit::Lead(_)));
    }

    #[test]
    fn stale_slot_cannot_clobber_successor() {
        let cache = QueryCache::new(4);
        let k = key(4);
        let stale = match cache.admit(&k) {
            Admit::Lead(slot) => slot,
            _ => panic!("lead"),
        };
        cache.cancel(&stale);
        let fresh = match cache.admit(&k) {
            Admit::Lead(slot) => slot,
            _ => panic!("lead"),
        };
        // The cancelled leader completing late must not overwrite or settle
        // the fresh slot's entry.
        cache.fulfill(&stale, Arc::new(b"stale".to_vec()));
        assert!(matches!(cache.admit(&k), Admit::Join(_)));
        cache.fulfill(&fresh, Arc::new(b"fresh".to_vec()));
        match cache.admit(&k) {
            Admit::Hit(bytes) => assert_eq!(&**bytes, b"fresh"),
            _ => panic!("hit"),
        }
    }
}
