//! Typed design-space queries, their canonical form, and the coalescing key.
//!
//! A query arrives as JSON, is parsed into [`Query`] (defaults filled in,
//! unknown fields rejected), **canonicalized** (sweep axes sorted and
//! deduplicated), and validated. The [`QueryKey`] is the vendored-serde
//! binary encoding of the canonical value — the same injective-bytes trick
//! as the cell library's `CharKey`, so two requests coalesce onto one
//! execution iff they ask for semantically the same work:
//!
//! * reordered or duplicated sweep axes normalize to the same key;
//! * an omitted field and its explicit default normalize to the same key;
//! * distinct canonical queries never collide (every field is written
//!   length- or tag-delimited, so the encoding is injective).

use serde::{Deserialize, Serialize};

use hetarch_devices::calib::CalibSnapshot;
use hetarch_exec::rare::RareConfig;

use crate::json::Json;

/// Default Monte-Carlo shots per sweep point.
pub const DEFAULT_SHOTS: u32 = 4096;
/// Default seed when the request omits one.
pub const DEFAULT_SEED: u64 = 0;
/// Largest accepted shot count (per point or per stratum).
pub const MAX_SHOTS: u32 = 1_000_000;
/// Largest accepted sweep-axis lengths.
pub const MAX_AXIS_LEN: usize = 64;
/// Code distances the USC capacity admits (3 registers × 10 modes = 30
/// storage qubits; a rotated surface code needs d² data qubits).
pub const SUPPORTED_DISTANCES: [u32; 2] = [3, 5];

/// A design-space query, in canonical form once [`Query::canonicalize`] has
/// run (the parser always canonicalizes).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Sweep the UEC module over code distance × storage coherence, return
    /// every point plus the (p_L, ts)-Pareto front.
    SweepUec {
        /// Code distances (subset of [`SUPPORTED_DISTANCES`]).
        distances: Vec<u32>,
        /// Storage coherence values T_S (seconds).
        ts_values: Vec<f64>,
        /// Monte-Carlo shots per design point.
        shots: u32,
        /// Base seed (worker-count-invariant sharding beneath).
        seed: u64,
    },
    /// [`Query::SweepUec`] against a calibration snapshot: every design
    /// point is characterized with the snapshot's per-device overrides
    /// applied on top of the sweep-axis specs. The snapshot is part of the
    /// canonical query, so sweeps against different fleets never coalesce.
    CalibSweep {
        /// Code distances (subset of [`SUPPORTED_DISTANCES`]).
        distances: Vec<u32>,
        /// Storage coherence values T_S (seconds).
        ts_values: Vec<f64>,
        /// Monte-Carlo shots per design point.
        shots: u32,
        /// Base seed (worker-count-invariant sharding beneath).
        seed: u64,
        /// The fleet calibration snapshot to characterize against.
        calib: CalibSnapshot,
    },
    /// Rare-event logical error rate for one UEC configuration.
    RareUec {
        /// Code distance.
        distance: u32,
        /// Storage coherence T_S (seconds).
        ts: f64,
        /// Estimator stratum cap.
        max_strata: u32,
        /// Estimator relative tolerance.
        rel_tol: f64,
        /// Conditioned shots per sampled stratum.
        shots_per_stratum: u32,
        /// Base seed.
        seed: u64,
    },
    /// Server statistics (answered inline, never queued or cached).
    Stats,
    /// Graceful shutdown (answered inline, then the server drains).
    Shutdown,
    /// Test-only: a cancellation-aware sleep of `millis` milliseconds.
    #[doc(hidden)]
    TestBlock {
        /// How long to block.
        millis: u64,
    },
    /// Test-only: panics inside the executor.
    #[doc(hidden)]
    TestPanic,
}

/// The canonical coalescing key: injective bytes over the canonical query.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey(Vec<u8>);

impl QueryKey {
    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl Query {
    /// Sorts and deduplicates sweep axes in place. Parsing always
    /// canonicalizes; call this when constructing a [`Query`] directly
    /// before deriving its key.
    pub fn canonicalize(&mut self) {
        if let Query::SweepUec {
            distances,
            ts_values,
            ..
        }
        | Query::CalibSweep {
            distances,
            ts_values,
            ..
        } = self
        {
            distances.sort_unstable();
            distances.dedup();
            ts_values.sort_by(f64::total_cmp);
            ts_values.dedup_by(|a, b| a.total_cmp(b).is_eq());
        }
    }

    /// The coalescing key of the (canonicalized) query.
    pub fn key(&self) -> QueryKey {
        let mut canon = self.clone();
        canon.canonicalize();
        QueryKey(serde::to_bytes(&canon))
    }

    /// True for the admin queries the connection layer answers inline.
    pub fn is_admin(&self) -> bool {
        matches!(self, Query::Stats | Query::Shutdown)
    }

    /// The rare-estimator configuration of a [`Query::RareUec`].
    pub fn rare_config(&self) -> Option<RareConfig> {
        match self {
            Query::RareUec {
                max_strata,
                rel_tol,
                shots_per_stratum,
                ..
            } => Some(RareConfig {
                max_strata: *max_strata as usize,
                rel_tol: *rel_tol,
                shots_per_stratum: *shots_per_stratum as usize,
                ..RareConfig::default()
            }),
            _ => None,
        }
    }
}

/// Parses, canonicalizes, and validates a request body.
pub fn parse_query(body: &Json) -> Result<Query, String> {
    let fields = match body {
        Json::Obj(map) => map,
        _ => return Err("request must be a JSON object".to_string()),
    };
    let kind = body
        .get("query")
        .and_then(Json::as_str)
        .ok_or("missing string field `query`")?;
    let known: &[&str] = match kind {
        "sweep_uec" => &["query", "distances", "ts_values", "shots", "seed"],
        "calib_sweep" => &["query", "distances", "ts_values", "shots", "seed", "calib"],
        "rare_uec" => &[
            "query",
            "distance",
            "ts",
            "max_strata",
            "rel_tol",
            "shots_per_stratum",
            "seed",
        ],
        "stats" => &["query"],
        "shutdown" => &["query"],
        "test_block" => &["query", "millis"],
        "test_panic" => &["query"],
        other => return Err(format!("unknown query kind `{other}`")),
    };
    for key in fields.keys() {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown field `{key}` for query `{kind}`"));
        }
    }
    let mut query = match kind {
        "sweep_uec" => Query::SweepUec {
            distances: u32_list(body, "distances")?,
            ts_values: f64_list(body, "ts_values")?,
            shots: u32_field(body, "shots", DEFAULT_SHOTS)?,
            seed: u64_field(body, "seed", DEFAULT_SEED)?,
        },
        "calib_sweep" => Query::CalibSweep {
            distances: u32_list(body, "distances")?,
            ts_values: f64_list(body, "ts_values")?,
            shots: u32_field(body, "shots", DEFAULT_SHOTS)?,
            seed: u64_field(body, "seed", DEFAULT_SEED)?,
            calib: CalibSnapshot::from_json(
                body.get("calib").ok_or("missing object field `calib`")?,
            )
            .map_err(|e| format!("invalid `calib`: {e}"))?,
        },
        "rare_uec" => {
            let defaults = RareConfig::default();
            Query::RareUec {
                distance: body
                    .get("distance")
                    .and_then(Json::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or("missing or invalid field `distance`")?,
                ts: f64_field_required(body, "ts")?,
                max_strata: u32_field(body, "max_strata", defaults.max_strata as u32)?,
                rel_tol: f64_field(body, "rel_tol", defaults.rel_tol)?,
                shots_per_stratum: u32_field(
                    body,
                    "shots_per_stratum",
                    defaults.shots_per_stratum as u32,
                )?,
                seed: u64_field(body, "seed", DEFAULT_SEED)?,
            }
        }
        "stats" => Query::Stats,
        "shutdown" => Query::Shutdown,
        "test_block" => Query::TestBlock {
            millis: u64_field(body, "millis", 0)?,
        },
        "test_panic" => Query::TestPanic,
        _ => unreachable!("kind matched above"),
    };
    query.canonicalize();
    validate(&query)?;
    Ok(query)
}

fn validate(query: &Query) -> Result<(), String> {
    match query {
        Query::SweepUec {
            distances,
            ts_values,
            shots,
            ..
        }
        | Query::CalibSweep {
            distances,
            ts_values,
            shots,
            ..
        } => validate_sweep(distances, ts_values, *shots),
        Query::RareUec {
            distance,
            ts,
            max_strata,
            rel_tol,
            shots_per_stratum,
            ..
        } => {
            validate_distance(*distance)?;
            validate_ts(*ts)?;
            if !(*max_strata >= 1 && *max_strata <= 64) {
                return Err("`max_strata` must be in 1..=64".to_string());
            }
            if !(rel_tol.is_finite() && *rel_tol > 0.0 && *rel_tol <= 1.0) {
                return Err("`rel_tol` must be in (0, 1]".to_string());
            }
            validate_shots(*shots_per_stratum)
        }
        Query::TestBlock { millis } => {
            if *millis > 60_000 {
                return Err("`millis` is capped at 60000".to_string());
            }
            Ok(())
        }
        Query::Stats | Query::Shutdown | Query::TestPanic => Ok(()),
    }
}

fn validate_sweep(distances: &[u32], ts_values: &[f64], shots: u32) -> Result<(), String> {
    if distances.is_empty() {
        return Err("`distances` must be non-empty".to_string());
    }
    if distances.len() > MAX_AXIS_LEN || ts_values.len() > MAX_AXIS_LEN {
        return Err(format!("sweep axes are capped at {MAX_AXIS_LEN} values"));
    }
    for &d in distances {
        validate_distance(d)?;
    }
    if ts_values.is_empty() {
        return Err("`ts_values` must be non-empty".to_string());
    }
    for &ts in ts_values {
        validate_ts(ts)?;
    }
    validate_shots(shots)
}

fn validate_distance(d: u32) -> Result<(), String> {
    if SUPPORTED_DISTANCES.contains(&d) {
        Ok(())
    } else {
        // d=7 would need 49 storage qubits against the USC's capacity of 30;
        // reject here instead of panicking in the assignment search.
        Err(format!(
            "unsupported distance {d}: the USC fits d in {SUPPORTED_DISTANCES:?}"
        ))
    }
}

fn validate_ts(ts: f64) -> Result<(), String> {
    if ts.is_finite() && ts > 0.0 && ts <= 10.0 {
        Ok(())
    } else {
        Err(format!("storage coherence {ts} must be in (0, 10] seconds"))
    }
}

fn validate_shots(shots: u32) -> Result<(), String> {
    if (1..=MAX_SHOTS).contains(&shots) {
        Ok(())
    } else {
        Err(format!("shot count {shots} must be in 1..={MAX_SHOTS}"))
    }
}

fn u32_list(body: &Json, key: &str) -> Result<Vec<u32>, String> {
    let arr = body
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field `{key}`"))?;
    arr.iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("`{key}` entries must be unsigned integers"))
        })
        .collect()
}

fn f64_list(body: &Json, key: &str) -> Result<Vec<f64>, String> {
    let arr = body
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field `{key}`"))?;
    arr.iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| format!("`{key}` entries must be numbers"))
        })
        .collect()
}

fn u32_field(body: &Json, key: &str, default: u32) -> Result<u32, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| format!("`{key}` must be an unsigned 32-bit integer")),
    }
}

fn u64_field(body: &Json, key: &str, default: u64) -> Result<u64, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("`{key}` must be an unsigned integer")),
    }
}

fn f64_field(body: &Json, key: &str, default: f64) -> Result<f64, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("`{key}` must be a number")),
    }
}

fn f64_field_required(body: &Json, key: &str) -> Result<f64, String> {
    body.get(key)
        .ok_or_else(|| format!("missing field `{key}`"))?
        .as_f64()
        .ok_or_else(|| format!("`{key}` must be a number"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn reordered_axes_share_a_key() {
        let a = parse_query(
            &parse(r#"{"query":"sweep_uec","distances":[5,3],"ts_values":[0.005,0.0005]}"#)
                .unwrap(),
        )
        .unwrap();
        let b = parse_query(
            &parse(r#"{"query":"sweep_uec","distances":[3,5,3],"ts_values":[0.0005,0.005]}"#)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn defaults_match_explicit_fields() {
        let implicit = parse_query(
            &parse(r#"{"query":"sweep_uec","distances":[3],"ts_values":[0.005]}"#).unwrap(),
        )
        .unwrap();
        let explicit = parse_query(
            &parse(
                r#"{"query":"sweep_uec","distances":[3],"ts_values":[0.005],"shots":4096,"seed":0}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(implicit.key(), explicit.key());
    }

    #[test]
    fn distinct_queries_get_distinct_keys() {
        let base = r#"{"query":"sweep_uec","distances":[3],"ts_values":[0.005]}"#;
        let variants = [
            r#"{"query":"sweep_uec","distances":[5],"ts_values":[0.005]}"#,
            r#"{"query":"sweep_uec","distances":[3],"ts_values":[0.05]}"#,
            r#"{"query":"sweep_uec","distances":[3],"ts_values":[0.005],"shots":1}"#,
            r#"{"query":"sweep_uec","distances":[3],"ts_values":[0.005],"seed":1}"#,
            r#"{"query":"rare_uec","distance":3,"ts":0.005}"#,
        ];
        let key = parse_query(&parse(base).unwrap()).unwrap().key();
        for v in variants {
            let other = parse_query(&parse(v).unwrap()).unwrap().key();
            assert_ne!(key, other, "{v}");
        }
    }

    #[test]
    fn rejects_invalid_queries() {
        for bad in [
            r#"{"query":"sweep_uec","distances":[],"ts_values":[0.005]}"#,
            r#"{"query":"sweep_uec","distances":[7],"ts_values":[0.005]}"#,
            r#"{"query":"sweep_uec","distances":[3],"ts_values":[-1.0]}"#,
            r#"{"query":"sweep_uec","distances":[3],"ts_values":[0.005],"shots":0}"#,
            r#"{"query":"sweep_uec","distances":[3],"ts_values":[0.005],"bogus":1}"#,
            r#"{"query":"rare_uec","ts":0.005}"#,
            r#"{"query":"rare_uec","distance":3,"ts":0.005,"rel_tol":0.0}"#,
            r#"{"query":"frobnicate"}"#,
            r#"[1,2,3]"#,
        ] {
            assert!(
                parse_query(&parse(bad).unwrap()).is_err(),
                "should reject {bad}"
            );
        }
    }

    #[test]
    fn calib_sweep_keys_by_snapshot_physics() {
        let request = |t1: &str| {
            format!(
                concat!(
                    r#"{{"query":"calib_sweep","distances":[3],"ts_values":[0.005],"#,
                    r#""calib":{{"version":1,"device":"fridge-a","#,
                    r#""qubits":{{"usc/s0":{{"t1":{},"t2":{}}}}}}}}}"#,
                ),
                t1, t1
            )
        };
        let a = parse_query(&parse(&request("0.002")).unwrap()).unwrap();
        let same = parse_query(&parse(&request("0.002")).unwrap()).unwrap();
        let degraded = parse_query(&parse(&request("0.001")).unwrap()).unwrap();
        assert_eq!(a.key(), same.key());
        assert_ne!(
            a.key(),
            degraded.key(),
            "different snapshots must not coalesce"
        );
        // And a calibrated sweep never coalesces with the plain sweep over
        // the same axes, even when the snapshot carries no overrides.
        let empty = parse_query(
            &parse(
                r#"{"query":"calib_sweep","distances":[3],"ts_values":[0.005],"calib":{"version":1,"device":"fridge-a","qubits":{}}}"#,
            )
            .unwrap(),
        )
        .unwrap();
        let plain = parse_query(
            &parse(r#"{"query":"sweep_uec","distances":[3],"ts_values":[0.005]}"#).unwrap(),
        )
        .unwrap();
        assert_ne!(empty.key(), plain.key());
    }

    #[test]
    fn calib_sweep_canonicalizes_axes_like_sweep_uec() {
        let calib = r#"{"version":1,"device":"f","qubits":{}}"#;
        let a = parse_query(
            &parse(&format!(
                r#"{{"query":"calib_sweep","distances":[5,3],"ts_values":[0.005,0.0005],"calib":{calib}}}"#
            ))
            .unwrap(),
        )
        .unwrap();
        let b = parse_query(
            &parse(&format!(
                r#"{{"query":"calib_sweep","distances":[3,5,3],"ts_values":[0.0005,0.005],"calib":{calib}}}"#
            ))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn calib_sweep_rejects_malformed_snapshots() {
        for bad in [
            // Missing `calib` entirely.
            r#"{"query":"calib_sweep","distances":[3],"ts_values":[0.005]}"#,
            // Not an object.
            r#"{"query":"calib_sweep","distances":[3],"ts_values":[0.005],"calib":7}"#,
            // Missing the schema version.
            r#"{"query":"calib_sweep","distances":[3],"ts_values":[0.005],"calib":{"device":"f","qubits":{}}}"#,
            // Negative t1 must be rejected at parse, not during simulation.
            r#"{"query":"calib_sweep","distances":[3],"ts_values":[0.005],"calib":{"version":1,"device":"f","qubits":{"usc/s0":{"t1":-1.0,"t2":1e-3}}}}"#,
            // The sweep validation still applies.
            r#"{"query":"calib_sweep","distances":[7],"ts_values":[0.005],"calib":{"version":1,"device":"f","qubits":{}}}"#,
        ] {
            assert!(
                parse_query(&parse(bad).unwrap()).is_err(),
                "should reject {bad}"
            );
        }
    }

    #[test]
    fn admin_queries_parse() {
        assert_eq!(
            parse_query(&parse(r#"{"query":"stats"}"#).unwrap()).unwrap(),
            Query::Stats
        );
        assert_eq!(
            parse_query(&parse(r#"{"query":"shutdown"}"#).unwrap()).unwrap(),
            Query::Shutdown
        );
        assert!(parse_query(&parse(r#"{"query":"stats"}"#).unwrap())
            .unwrap()
            .is_admin());
    }
}
