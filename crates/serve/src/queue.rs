//! A bounded job queue with explicit backpressure.
//!
//! [`JobQueue::push`] never blocks and never buffers beyond `capacity`: a
//! full queue is reported back to the caller (who replies `busy` with the
//! depth) instead of growing without bound. [`JobQueue::pop`] blocks the
//! executor threads until work arrives or the queue is closed; a closed
//! queue still **drains** — queued jobs are handed out until empty, which
//! is what makes shutdown graceful.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use crate::cache::JobSlot;

struct Inner {
    jobs: VecDeque<Arc<JobSlot>>,
    closed: bool,
}

/// The bounded queue between connection handlers and executor threads.
pub struct JobQueue {
    inner: Mutex<Inner>,
    cond: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// A queue admitting at most `capacity` pending jobs (at least 1).
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a job, or reports the current depth if the queue is full or
    /// closed (both are backpressure: the caller replies `busy`).
    pub fn push(&self, slot: Arc<JobSlot>) -> Result<(), usize> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed || inner.jobs.len() >= self.capacity {
            return Err(inner.jobs.len());
        }
        inner.jobs.push_back(slot);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (FIFO) or the queue is closed and
    /// fully drained (`None`).
    pub fn pop(&self) -> Option<Arc<JobSlot>> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.cond.wait(inner).expect("queue lock");
        }
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").jobs.len()
    }

    /// Closes the queue: no new pushes, existing jobs drain, poppers wake.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{Admit, QueryCache};
    use crate::query::Query;

    fn slot(cache: &QueryCache, millis: u64) -> Arc<JobSlot> {
        match cache.admit(&Query::TestBlock { millis }.key()) {
            Admit::Lead(slot) => slot,
            _ => panic!("lead"),
        }
    }

    #[test]
    fn full_queue_reports_depth() {
        let cache = QueryCache::new(8);
        let q = JobQueue::new(2);
        assert!(q.push(slot(&cache, 0)).is_ok());
        assert!(q.push(slot(&cache, 1)).is_ok());
        assert_eq!(q.push(slot(&cache, 2)), Err(2));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn closed_queue_drains_in_fifo_order() {
        let cache = QueryCache::new(8);
        let q = JobQueue::new(4);
        let first = slot(&cache, 10);
        let second = slot(&cache, 11);
        q.push(first.clone()).unwrap();
        q.push(second.clone()).unwrap();
        q.close();
        assert!(q.push(slot(&cache, 12)).is_err(), "closed rejects pushes");
        assert!(Arc::ptr_eq(&q.pop().unwrap(), &first));
        assert!(Arc::ptr_eq(&q.pop().unwrap(), &second));
        assert!(q.pop().is_none(), "drained + closed ends the executors");
    }

    #[test]
    fn pop_blocks_until_push() {
        let cache = QueryCache::new(8);
        let q = JobQueue::new(4);
        let expected = slot(&cache, 20);
        std::thread::scope(|s| {
            let handle = s.spawn(|| q.pop());
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.push(expected.clone()).unwrap();
            let got = handle.join().unwrap().unwrap();
            assert!(Arc::ptr_eq(&got, &expected));
        });
    }
}
