//! The `hetarch-serve` binary: a design-space query server over TCP.
//!
//! ```text
//! hetarch-serve serve [--addr HOST:PORT] [--workers N] [--executors N]
//!                     [--queue N] [--cache-cap N] [--cache PATH]
//! hetarch-serve query ADDR JSON     # one request, prints the reply
//! hetarch-serve shutdown ADDR       # asks a running server to drain
//! ```

use std::process::ExitCode;

use hetarch_serve::json::Json;
use hetarch_serve::{Client, Server, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
        None => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  hetarch-serve serve [--addr HOST:PORT] [--workers N] [--executors N] \
[--queue N] [--cache-cap N] [--cache PATH]
  hetarch-serve query ADDR JSON
  hetarch-serve shutdown ADDR

  --cache PATH persists the characterization cache: loaded on boot (a
  missing file is a cold start), saved on graceful shutdown. A restarted
  server re-answers prior sweeps with zero new simulations.";

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value(&mut it)?,
            "--workers" => config.workers = parse_count(&value(&mut it)?)?,
            "--executors" => config.executors = parse_count(&value(&mut it)?)?,
            "--queue" => config.queue_capacity = parse_count(&value(&mut it)?)?,
            "--cache-cap" => config.cache_capacity = parse_count(&value(&mut it)?)?,
            "--cache" => config.library_path = Some(value(&mut it)?.into()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let server = Server::start(config).map_err(|e| format!("bind failed: {e}"))?;
    // The smoke test (and any supervisor) watches for this line.
    println!("listening on {}", server.local_addr());
    // Parks until a `shutdown` query arrives, then drains gracefully.
    server.wait();
    println!("shut down");
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let [addr, body] = args else {
        return Err(format!("query needs ADDR and JSON\n{USAGE}"));
    };
    let mut client = Client::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
    let reply = client
        .request_raw(body.as_bytes())
        .map_err(|e| format!("request failed: {e}"))?;
    let text = String::from_utf8(reply).map_err(|_| "reply is not UTF-8".to_string())?;
    println!("{text}");
    Ok(())
}

fn cmd_shutdown(args: &[String]) -> Result<(), String> {
    let [addr] = args else {
        return Err(format!("shutdown needs ADDR\n{USAGE}"));
    };
    let mut client = Client::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
    let reply = client
        .shutdown_server()
        .map_err(|e| format!("shutdown failed: {e}"))?;
    if reply.get("status").and_then(Json::as_str) == Some("ok") {
        println!("server shutting down");
        Ok(())
    } else {
        Err(format!("unexpected reply: {}", reply.render()))
    }
}

fn parse_count(text: &str) -> Result<usize, String> {
    text.parse::<usize>()
        .map_err(|_| format!("`{text}` is not a count"))
}
