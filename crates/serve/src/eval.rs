//! Query evaluation: one [`Query`] in, one deterministic [`Json`] result
//! out, against the shared cell library and worker pool.
//!
//! This is the exact computation the server's executors run — it is public
//! so tests (and offline tooling) can call the same path directly and
//! compare byte-for-byte against a served response. Determinism contract:
//! the result depends only on the canonical query (worker-count-invariant
//! sharding beneath, sorted-key JSON with `{:?}` floats above), never on
//! the pool size, executor interleaving, or cache state.

use hetarch_cells::{CellLibrary, UscCell};
use hetarch_devices::calib::CalibSnapshot;
use hetarch_devices::catalog::{coherence_limited_compute, coherence_limited_storage};
use hetarch_dse::{pareto_front, try_sweep_on, Axis, DesignSpace};
use hetarch_exec::{CancelToken, Cancelled, WorkerPool};
use hetarch_modules::uec::{UecModule, UecNoise};
use hetarch_stab::codes::rotated_surface_code;

use crate::json::Json;
use crate::query::Query;

/// Compute coherence pinned for every query (the §4 UEC calibration);
/// queries sweep the *storage* axis.
const COMPUTE_TC: f64 = 0.5e-3;

/// Evaluates a compute query. Returns the `result` payload of an `ok`
/// response, or [`Cancelled`] if `token` fired mid-run.
///
/// # Panics
///
/// Panics on the admin queries ([`Query::Stats`], [`Query::Shutdown`]) —
/// the connection layer answers those inline and never routes them here —
/// and on [`Query::TestPanic`], whose entire purpose is to panic inside an
/// executor.
pub fn evaluate(
    query: &Query,
    lib: &CellLibrary,
    pool: &WorkerPool,
    token: &CancelToken,
) -> Result<Json, Cancelled> {
    match query {
        Query::SweepUec {
            distances,
            ts_values,
            shots,
            seed,
        } => {
            // The empty snapshot characterizes identically to no snapshot
            // (same cache key, bit-identical channels), so both sweep kinds
            // share one code path.
            let calib = CalibSnapshot::default();
            sweep_uec(
                lib, pool, token, distances, ts_values, *shots, *seed, &calib,
            )
        }
        Query::CalibSweep {
            distances,
            ts_values,
            shots,
            seed,
            calib,
        } => sweep_uec(lib, pool, token, distances, ts_values, *shots, *seed, calib),
        Query::RareUec {
            distance, ts, seed, ..
        } => {
            let config = query.rare_config().expect("RareUec has a rare config");
            let module = uec_module(lib, *distance, *ts);
            let outcome = module.try_logical_error_rate_rare_on(pool, config, *seed, token)?;
            let report = outcome.report();
            Ok(Json::obj([
                ("converged", Json::Bool(outcome.is_converged())),
                ("distance", Json::Int(i64::from(*distance))),
                ("p_l", Json::Num(report.p_l)),
                ("sigma", Json::Num(report.sigma)),
                ("total_shots", Json::Int(report.total_shots as i64)),
                ("truncation_bound", Json::Num(report.truncation_bound)),
                ("ts", Json::Num(*ts)),
            ]))
        }
        Query::TestBlock { millis } => {
            let start = std::time::Instant::now();
            while start.elapsed().as_millis() < u128::from(*millis) {
                if token.is_cancelled() {
                    return Err(Cancelled);
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Ok(Json::obj([("blocked_ms", Json::Int(*millis as i64))]))
        }
        Query::TestPanic => panic!("test panic query"),
        Query::Stats | Query::Shutdown => {
            unreachable!("admin queries are answered by the connection layer")
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn sweep_uec(
    lib: &CellLibrary,
    pool: &WorkerPool,
    token: &CancelToken,
    distances: &[u32],
    ts_values: &[f64],
    shots: u32,
    seed: u64,
    calib: &CalibSnapshot,
) -> Result<Json, Cancelled> {
    let space = DesignSpace::new(vec![
        Axis::new("d", distances.iter().map(|&d| f64::from(d)).collect()),
        Axis::new("ts", ts_values.to_vec()),
    ]);
    // Cancellation is layered: the sweep checks the token between points
    // and each point's Monte-Carlo run checks it between shards.
    let results = try_sweep_on(pool, space.points(), token, |p| {
        let d = p.get("d") as u32;
        let ts = p.get("ts");
        uec_module_with_calib(lib, d, ts, calib).try_logical_error_rate_on(
            pool,
            shots as usize,
            seed,
            token,
        )
    })?;
    let mut points = Vec::with_capacity(results.len());
    let mut objectives = Vec::with_capacity(results.len());
    for (point, result) in results {
        let r = result?;
        let ts = point.get("ts");
        objectives.push(vec![r.logical_error_rate, ts]);
        points.push(Json::obj([
            ("cycle_duration", Json::Num(r.cycle_duration)),
            ("d", Json::Int(point.get("d") as i64)),
            ("p_l", Json::Num(r.logical_error_rate)),
            ("ts", Json::Num(ts)),
        ]));
    }
    // Pareto front minimizing (p_L, storage coherence): the cheapest
    // designs that are not strictly beaten on both axes.
    let front: Vec<Json> = pareto_front(&objectives)
        .into_iter()
        .map(|i| Json::Int(i as i64))
        .collect();
    Ok(Json::obj([
        ("pareto", Json::Arr(front)),
        ("points", Json::Arr(points)),
        ("shots", Json::Int(i64::from(shots))),
    ]))
}

fn uec_module(lib: &CellLibrary, distance: u32, ts: f64) -> UecModule {
    uec_module_with_calib(lib, distance, ts, &CalibSnapshot::default())
}

/// Builds the UEC module for one design point with the snapshot's overrides
/// folded into characterization. The empty snapshot shares the uncalibrated
/// cache entry, so `sweep_uec`/`calib_sweep` with no overrides cost one
/// simulation between them.
fn uec_module_with_calib(
    lib: &CellLibrary,
    distance: u32,
    ts: f64,
    calib: &CalibSnapshot,
) -> UecModule {
    let usc = lib.get_with_calib::<UscCell>(
        &coherence_limited_compute(COMPUTE_TC),
        &coherence_limited_storage(ts),
        calib,
    );
    UecModule::new(
        rotated_surface_code(distance as usize),
        (*usc).clone(),
        UecNoise::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_direct_module_runs() {
        let lib = CellLibrary::new();
        let pool = WorkerPool::new(2);
        let token = CancelToken::new();
        let query = Query::SweepUec {
            distances: vec![3],
            ts_values: vec![0.5e-3, 5e-3],
            shots: 300,
            seed: 61,
        };
        let result = evaluate(&query, &lib, &pool, &token).unwrap();
        let points = result.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(points.len(), 2);
        for (point, &ts) in points.iter().zip(&[0.5e-3, 5e-3]) {
            let direct = uec_module(&lib, 3, ts).logical_error_rate_on(&pool, 300, 61);
            assert_eq!(
                point.get("p_l").and_then(Json::as_f64).unwrap(),
                direct.logical_error_rate,
                "ts={ts}"
            );
        }
    }

    #[test]
    fn evaluation_is_worker_count_and_library_state_invariant() {
        let query = Query::SweepUec {
            distances: vec![3],
            ts_values: vec![0.5e-3],
            shots: 200,
            seed: 7,
        };
        let token = CancelToken::new();
        let mut renders = Vec::new();
        for workers in [1, 4] {
            let lib = CellLibrary::new();
            let pool = WorkerPool::new(workers);
            // Evaluate twice on one library: the second run hits the warm
            // characterization cache and must not change the bytes.
            let cold = evaluate(&query, &lib, &pool, &token).unwrap().render();
            let warm = evaluate(&query, &lib, &pool, &token).unwrap().render();
            assert_eq!(cold, warm);
            renders.push(cold);
        }
        assert_eq!(renders[0], renders[1]);
    }

    #[test]
    fn calib_sweep_overrides_reach_characterization() {
        use hetarch_devices::calib::CalibParams;

        let lib = CellLibrary::new();
        let pool = WorkerPool::new(2);
        let token = CancelToken::new();
        let plain = Query::SweepUec {
            distances: vec![3],
            ts_values: vec![5e-3],
            shots: 400,
            seed: 11,
        };
        let baseline = evaluate(&plain, &lib, &pool, &token).unwrap().render();

        // An empty snapshot is the same design point: identical bytes, and
        // the characterization cache entry is shared (no new simulation).
        let misses_before = lib.stats().misses;
        let empty = Query::CalibSweep {
            distances: vec![3],
            ts_values: vec![5e-3],
            shots: 400,
            seed: 11,
            calib: CalibSnapshot::default(),
        };
        assert_eq!(
            evaluate(&empty, &lib, &pool, &token).unwrap().render(),
            baseline
        );
        assert_eq!(lib.stats().misses, misses_before);

        // A degraded storage slot must change the characterized channel and
        // hence the swept logical error rate: the module's idle noise comes
        // from the characterized storage coherence, so a fleet measurement
        // far below the sweep-axis T_S must raise p_L.
        let mut snap = CalibSnapshot::default();
        snap.qubits.insert(
            "usc/s0".to_string(),
            CalibParams {
                t1: Some(5e-5),
                t2: Some(5e-5),
                ..CalibParams::default()
            },
        );
        let degraded = Query::CalibSweep {
            distances: vec![3],
            ts_values: vec![5e-3],
            shots: 400,
            seed: 11,
            calib: snap,
        };
        let result = evaluate(&degraded, &lib, &pool, &token).unwrap();
        assert!(lib.stats().misses > misses_before);
        let p_l = |r: &Json| {
            r.get("points").and_then(Json::as_arr).unwrap()[0]
                .get("p_l")
                .and_then(Json::as_f64)
                .unwrap()
        };
        let baseline_json = evaluate(&plain, &lib, &pool, &token).unwrap();
        assert_ne!(p_l(&result), p_l(&baseline_json));
        assert!(p_l(&result) > p_l(&baseline_json));
    }

    #[test]
    fn cancelled_evaluation_returns_err() {
        let lib = CellLibrary::new();
        let pool = WorkerPool::new(1);
        let token = CancelToken::new();
        token.cancel();
        let query = Query::SweepUec {
            distances: vec![3],
            ts_values: vec![0.5e-3],
            shots: 100,
            seed: 1,
        };
        assert_eq!(evaluate(&query, &lib, &pool, &token), Err(Cancelled));
        assert_eq!(
            evaluate(&Query::TestBlock { millis: 50 }, &lib, &pool, &token),
            Err(Cancelled)
        );
    }
}
