//! Re-export of the workspace's deterministic JSON machinery.
//!
//! The JSON value type, writer, and bounded parser now live in
//! [`hetarch_devices::json`] so the calibration-snapshot schema
//! (`hetarch_devices::calib`) can use them without a dependency cycle.
//! The serve crate re-exports the module wholesale to keep
//! `hetarch_serve::json::{Json, parse, ParseError}` paths stable.

pub use hetarch_devices::json::*;
