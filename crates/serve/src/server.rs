//! The length-prefixed JSON-over-TCP design-space query server.
//!
//! ## Wire protocol
//!
//! Every frame — request and response — is a `u32` little-endian byte
//! length followed by that many bytes of UTF-8 JSON. Frames above the
//! configured maximum are rejected with an error reply (and the connection
//! closed, since stream framing is lost). One connection may pipeline any
//! number of request/response round trips.
//!
//! ## Request lifecycle
//!
//! A compute query is parsed, canonicalized into its [`QueryKey`], and
//! admitted through the single-flight [`QueryCache`]: a cached response is
//! returned immediately; an in-flight identical query is **coalesced**
//! (this request waits on the same execution and shares the same response
//! buffer, byte for byte); otherwise the request leads and enqueues a job
//! on the bounded [`JobQueue`]. A full queue replies `busy` with the
//! current depth — backpressure is explicit and buffering is never
//! unbounded. Executor threads pop jobs and run [`evaluate`] on the shared
//! [`CellLibrary`] and [`WorkerPool`] with the slot's [`CancelToken`]
//! threaded through every sweep/shard loop.
//!
//! ## Cancellation and shutdown
//!
//! While waiting for a result the handler polls its socket; a client that
//! disconnected drops its waiter registration, and when the last waiter of
//! a slot is gone the slot's token fires and the sweep stops within one
//! shard per worker. On shutdown the server stops accepting, lets
//! connected handlers finish their in-flight requests, then closes the
//! queue and **drains** it before the executors exit.

use std::io::{self, Read, Write};
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hetarch_cells::CellLibrary;
use hetarch_exec::WorkerPool;
use hetarch_obs as obs;

use crate::cache::{Admit, Outcome, QueryCache};
use crate::eval::evaluate;
use crate::json::{self, Json};
use crate::query::{parse_query, Query};
use crate::queue::JobQueue;

// Serve metrics (no-ops unless the `obs` feature is on and `HETARCH_OBS=1`).
static OBS_REQUESTS: obs::Counter = obs::Counter::new("serve.requests");
static OBS_EXECUTIONS: obs::Counter = obs::Counter::new("serve.executions");
static OBS_COALESCED: obs::Counter = obs::Counter::new("serve.coalesce_hits");
static OBS_CACHE_HITS: obs::Counter = obs::Counter::new("serve.cache_hits");
static OBS_BUSY: obs::Counter = obs::Counter::new("serve.busy_rejects");
static OBS_CANCELLED: obs::Counter = obs::Counter::new("serve.cancellations");
static OBS_PANICS: obs::Counter = obs::Counter::new("serve.panics");
static OBS_MALFORMED: obs::Counter = obs::Counter::new("serve.malformed");
static OBS_QUEUE_WAIT_NS: obs::Histogram = obs::Histogram::new("serve.queue_wait_ns");
static OBS_COMPUTE_NS: obs::Histogram = obs::Histogram::new("serve.compute_ns");

/// How often a waiting handler re-checks its client's liveness, and how
/// often a blocked frame read re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads in the shared [`WorkerPool`].
    pub workers: usize,
    /// Executor threads draining the job queue.
    pub executors: usize,
    /// Bounded job-queue capacity (backpressure beyond this).
    pub queue_capacity: usize,
    /// LRU result-cache capacity (completed responses).
    pub cache_capacity: usize,
    /// Largest accepted frame, in bytes.
    pub max_frame_len: u32,
    /// Optional [`CellLibrary`] persistence path: loaded on boot (a missing
    /// file is a normal cold start) and saved atomically after a graceful
    /// drain, so a restarted server re-answers prior sweeps without
    /// re-simulating any characterization.
    pub library_path: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            executors: 2,
            queue_capacity: 32,
            cache_capacity: 64,
            max_frame_len: 1 << 20,
            library_path: None,
        }
    }
}

/// Always-on per-server counters, surfaced by the `stats` query.
///
/// Unlike the `hetarch-obs` statics these are per-instance and active in
/// every build, so tests and the golden snapshot can assert coalescing and
/// backpressure without the `obs` feature; they are worker-count- and
/// timing-invariant by construction (pure event counts).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests read off connections (including admin queries).
    pub requests: AtomicU64,
    /// Jobs that actually executed a query evaluation.
    pub executions: AtomicU64,
    /// Requests coalesced onto an identical in-flight execution.
    pub coalesced: AtomicU64,
    /// Requests answered from the LRU result cache.
    pub cache_hits: AtomicU64,
    /// Requests rejected with `busy` (queue full).
    pub busy_rejects: AtomicU64,
    /// Executions cancelled (every waiter disconnected).
    pub cancellations: AtomicU64,
    /// Executor panics contained (query answered with an error).
    pub panics: AtomicU64,
    /// Malformed frames or bodies answered with an error.
    pub malformed: AtomicU64,
    /// Jobs dequeued by executors (== executions + jobs skipped as
    /// already-cancelled).
    pub dequeued: AtomicU64,
}

impl ServerStats {
    /// Renders the counters as a sorted-key JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "busy_rejects",
                Json::Int(self.busy_rejects.load(Ordering::Relaxed) as i64),
            ),
            (
                "cache_hits",
                Json::Int(self.cache_hits.load(Ordering::Relaxed) as i64),
            ),
            (
                "cancellations",
                Json::Int(self.cancellations.load(Ordering::Relaxed) as i64),
            ),
            (
                "coalesced",
                Json::Int(self.coalesced.load(Ordering::Relaxed) as i64),
            ),
            (
                "dequeued",
                Json::Int(self.dequeued.load(Ordering::Relaxed) as i64),
            ),
            (
                "executions",
                Json::Int(self.executions.load(Ordering::Relaxed) as i64),
            ),
            (
                "malformed",
                Json::Int(self.malformed.load(Ordering::Relaxed) as i64),
            ),
            (
                "panics",
                Json::Int(self.panics.load(Ordering::Relaxed) as i64),
            ),
            (
                "requests",
                Json::Int(self.requests.load(Ordering::Relaxed) as i64),
            ),
        ])
    }
}

struct Shared {
    lib: CellLibrary,
    library_path: Option<std::path::PathBuf>,
    pool: WorkerPool,
    cache: QueryCache,
    queue: JobQueue,
    stats: ServerStats,
    shutdown: AtomicBool,
    addr: SocketAddr,
    max_frame_len: u32,
    conns: Mutex<usize>,
    conns_cond: Condvar,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Flags shutdown and unblocks the accept loop with a self-connect.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::Relaxed) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`Server::shutdown`] or [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Warm-start: a persisted characterization cache means a restarted
        // server answers prior sweeps with zero new simulations. A missing
        // file is the normal cold start; a corrupt one is a hard error
        // (silently discarding it would mask operational mistakes).
        let lib = match &config.library_path {
            Some(path) => match CellLibrary::load(path) {
                Ok(lib) => lib,
                Err(e) if e.kind() == io::ErrorKind::NotFound => CellLibrary::new(),
                Err(e) => return Err(e),
            },
            None => CellLibrary::new(),
        };
        let shared = Arc::new(Shared {
            lib,
            library_path: config.library_path.clone(),
            pool: WorkerPool::new(config.workers.max(1)),
            cache: QueryCache::new(config.cache_capacity),
            queue: JobQueue::new(config.queue_capacity),
            stats: ServerStats::default(),
            shutdown: AtomicBool::new(false),
            addr,
            max_frame_len: config.max_frame_len,
            conns: Mutex::new(0),
            conns_cond: Condvar::new(),
        });
        let executors = (0..config.executors.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || executor_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            executors,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The always-on per-instance counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Characterization-cache statistics of the shared [`CellLibrary`]:
    /// a warm-started server answering only previously seen design points
    /// shows zero misses (zero new simulations).
    pub fn library_stats(&self) -> hetarch_cells::CacheStats {
        self.shared.lib.stats()
    }

    /// Initiates a graceful shutdown and blocks until drained.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.finish();
    }

    /// Blocks until the server shuts down (e.g. via a `shutdown` query),
    /// then drains. This is what the `hetarch-serve` bin parks on.
    pub fn wait(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        // 1. Accept loop exits once the shutdown flag is up (the flag-setter
        //    self-connects to unblock it).
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // 2. Connected handlers finish their in-flight requests; they
        //    observe the flag at the next frame boundary and hang up.
        {
            let mut conns = self.shared.conns.lock().expect("conn lock");
            while *conns > 0 {
                let (next, _) = self
                    .shared
                    .conns_cond
                    .wait_timeout(conns, POLL_INTERVAL)
                    .expect("conn lock");
                conns = next;
            }
        }
        // 3. Close the queue; executors drain what was admitted, then exit.
        self.shared.queue.close();
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
        // 4. Executors are done, so the library is quiescent: persist the
        //    characterization cache for the next boot. The save is atomic
        //    (temp file + rename), so a crash here leaves either the old
        //    cache or the new one, never a torn file.
        if let Some(path) = &self.shared.library_path {
            if let Err(e) = self.shared.lib.save(path) {
                eprintln!("warning: failed to save cell library to {path:?}: {e}");
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutting_down() {
            // The wake-up connection (or anything racing it) is dropped.
            break;
        }
        let Ok(stream) = stream else { continue };
        *shared.conns.lock().expect("conn lock") += 1;
        let shared = shared.clone();
        std::thread::spawn(move || {
            // A connection panic must not take down the server; the
            // counter decrement below must run on every exit path.
            let result = catch_unwind(AssertUnwindSafe(|| handle_connection(&stream, &shared)));
            let mut conns = shared.conns.lock().expect("conn lock");
            *conns -= 1;
            shared.conns_cond.notify_all();
            drop(conns);
            drop(result);
        });
    }
}

/// Why a frame read ended without a frame.
enum ReadEnd {
    /// Clean EOF at a frame boundary.
    Eof,
    /// Server shutting down (checked only at frame boundaries).
    Shutdown,
    /// Frame declared longer than the configured maximum.
    Oversized(u32),
    /// Connection died mid-frame (truncated frame or transport error).
    Truncated,
}

fn handle_connection(stream: &TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    loop {
        let body = match read_frame(stream, shared) {
            Ok(body) => body,
            Err(ReadEnd::Eof | ReadEnd::Shutdown) => return,
            Err(ReadEnd::Oversized(len)) => {
                shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
                OBS_MALFORMED.inc();
                // Reply, then close: the stream position is unrecoverable.
                let reply = error_response(&format!(
                    "frame of {len} bytes exceeds the {}-byte limit",
                    shared.max_frame_len
                ));
                let _ = write_frame(stream, reply.render().as_bytes());
                let _ = stream.shutdown(NetShutdown::Both);
                return;
            }
            Err(ReadEnd::Truncated) => {
                shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
                OBS_MALFORMED.inc();
                // Best-effort error reply: with a half-closed client the
                // write side may still be open.
                let reply = error_response("truncated frame");
                let _ = write_frame(stream, reply.render().as_bytes());
                let _ = stream.shutdown(NetShutdown::Both);
                return;
            }
        };
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        OBS_REQUESTS.inc();
        let reply = handle_request(stream, shared, &body);
        let Some(reply) = reply else {
            // The client disconnected while we waited; nothing to write.
            return;
        };
        if write_frame(stream, &reply).is_err() {
            return;
        }
    }
}

/// Processes one request body; `None` means the client vanished mid-wait.
fn handle_request(stream: &TcpStream, shared: &Shared, body: &[u8]) -> Option<Vec<u8>> {
    let parsed = std::str::from_utf8(body)
        .map_err(|_| "frame is not UTF-8".to_string())
        .and_then(|text| json::parse(text).map_err(|e| format!("invalid JSON: {e}")))
        .and_then(|v| parse_query(&v));
    let query = match parsed {
        Ok(query) => query,
        Err(message) => {
            shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
            OBS_MALFORMED.inc();
            return Some(error_response(&message).render().into_bytes());
        }
    };
    match query {
        Query::Stats => {
            let mut result = vec![
                (
                    "queue_depth".to_string(),
                    Json::Int(shared.queue.depth() as i64),
                ),
                ("serve".to_string(), shared.stats.to_json()),
            ];
            if obs::enabled() {
                let counters = obs::report()
                    .counters
                    .into_iter()
                    .map(|(k, v)| (k, Json::Int(v as i64)))
                    .collect();
                result.push(("obs".to_string(), Json::Obj(counters)));
            }
            Some(
                ok_response(Json::Obj(result.into_iter().collect()))
                    .render()
                    .into_bytes(),
            )
        }
        Query::Shutdown => {
            shared.begin_shutdown();
            Some(
                ok_response(Json::Str("shutting down".to_string()))
                    .render()
                    .into_bytes(),
            )
        }
        query => serve_compute(stream, shared, &query),
    }
}

/// Admits a compute query through the cache/queue and waits for its bytes.
fn serve_compute(stream: &TcpStream, shared: &Shared, query: &Query) -> Option<Vec<u8>> {
    let key = query.key();
    let slot = match shared.cache.admit(&key) {
        Admit::Hit(bytes) => {
            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            OBS_CACHE_HITS.inc();
            return Some((*bytes).clone());
        }
        Admit::Join(slot) => {
            shared.stats.coalesced.fetch_add(1, Ordering::Relaxed);
            OBS_COALESCED.inc();
            slot
        }
        Admit::Lead(slot) => {
            slot.set_query(query.clone());
            if let Err(depth) = shared.queue.push(slot.clone()) {
                shared.stats.busy_rejects.fetch_add(1, Ordering::Relaxed);
                OBS_BUSY.inc();
                shared.cache.cancel(&slot);
                return Some(busy_response(depth).render().into_bytes());
            }
            slot
        }
    };
    loop {
        match slot.wait_outcome(POLL_INTERVAL) {
            Some(Outcome::Done(bytes)) => return Some((*bytes).clone()),
            Some(Outcome::Failed(message)) => {
                return Some(error_response(&message).render().into_bytes())
            }
            Some(Outcome::Cancelled) => {
                // Another path aborted the slot (queue-full race, or its
                // last waiter left just as we joined).
                return Some(error_response("query was cancelled").render().into_bytes());
            }
            None => {
                if client_disconnected(stream) {
                    if slot.drop_waiter() == 0 {
                        shared.stats.cancellations.fetch_add(1, Ordering::Relaxed);
                        OBS_CANCELLED.inc();
                        shared.cache.cancel(&slot);
                    }
                    return None;
                }
            }
        }
    }
}

/// Non-destructive liveness probe: with the frame protocol strictly
/// request/response per connection *per in-flight request*, readable data
/// can only be a pipelined next request (alive) and `Ok(0)` is EOF.
fn client_disconnected(stream: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) => !matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
        ),
    }
}

fn executor_loop(shared: &Arc<Shared>) {
    while let Some(slot) = shared.queue.pop() {
        shared.stats.dequeued.fetch_add(1, Ordering::Relaxed);
        if slot.is_settled() {
            // Cancelled while queued; never run it.
            continue;
        }
        OBS_QUEUE_WAIT_NS.record(u64::try_from(slot.queued_for().as_nanos()).unwrap_or(u64::MAX));
        let query = slot.query().expect("leader attached the query");
        shared.stats.executions.fetch_add(1, Ordering::Relaxed);
        OBS_EXECUTIONS.inc();
        let span = obs::span!(OBS_COMPUTE_NS);
        let result = catch_unwind(AssertUnwindSafe(|| {
            evaluate(query, &shared.lib, &shared.pool, slot.token())
        }));
        drop(span);
        match result {
            Ok(Ok(value)) => {
                let bytes = Arc::new(ok_response(value).render().into_bytes());
                shared.cache.fulfill(&slot, bytes);
            }
            Ok(Err(_cancelled)) => {
                // The waiters are gone; just release the key.
                shared.cache.cancel(&slot);
            }
            Err(_panic) => {
                shared.stats.panics.fetch_add(1, Ordering::Relaxed);
                OBS_PANICS.inc();
                shared.cache.fail(
                    &slot,
                    "internal error: query execution panicked".to_string(),
                );
            }
        }
    }
}

/// Builds the `ok` response envelope.
pub fn ok_response(result: Json) -> Json {
    Json::obj([("result", result), ("status", Json::Str("ok".to_string()))])
}

/// Builds the `error` response envelope.
pub fn error_response(message: &str) -> Json {
    Json::obj([
        ("error", Json::Str(message.to_string())),
        ("status", Json::Str("error".to_string())),
    ])
}

/// Builds the `busy` backpressure envelope.
pub fn busy_response(queue_depth: usize) -> Json {
    Json::obj([
        ("queue_depth", Json::Int(queue_depth as i64)),
        ("status", Json::Str("busy".to_string())),
    ])
}

/// Reads one length-prefixed frame, polling the shutdown flag between
/// timeouts. Only returns `Shutdown` at a frame boundary — a frame whose
/// prefix has started is read to completion.
fn read_frame(stream: &TcpStream, shared: &Shared) -> Result<Vec<u8>, ReadEnd> {
    let mut prefix = [0u8; 4];
    read_exact_polling(stream, &mut prefix, true, shared)?;
    let len = u32::from_le_bytes(prefix);
    if len > shared.max_frame_len {
        return Err(ReadEnd::Oversized(len));
    }
    let mut body = vec![0u8; len as usize];
    read_exact_polling(stream, &mut body, false, shared).map_err(|e| match e {
        // EOF after the prefix means the body was cut short.
        ReadEnd::Eof => ReadEnd::Truncated,
        other => other,
    })?;
    Ok(body)
}

fn read_exact_polling(
    stream: &TcpStream,
    buf: &mut [u8],
    at_boundary: bool,
    shared: &Shared,
) -> Result<(), ReadEnd> {
    let mut filled = 0;
    let mut stream = stream;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 && at_boundary {
                    ReadEnd::Eof
                } else {
                    ReadEnd::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                // Leave only at a clean boundary; mid-frame reads keep
                // polling so a slow client is not mistaken for shutdown.
                if shared.shutting_down() && filled == 0 && at_boundary {
                    return Err(ReadEnd::Shutdown);
                }
            }
            Err(_) => return Err(ReadEnd::Truncated),
        }
    }
    Ok(())
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame(mut stream: &TcpStream, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}
