//! A small typed client for the serve wire protocol.
//!
//! Speaks the same `u32`-LE length-prefixed JSON frames as the server. The
//! raw entry points ([`Client::request_raw`], [`Client::send_raw_frame`])
//! exist so fault-injection tests can send malformed bodies and partial
//! frames through the same connection type production code uses.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::{self, Json};

/// Default cap on response frames the client will accept.
const MAX_RESPONSE_LEN: u32 = 1 << 24;

/// One connection to a serve instance.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// The underlying stream (tests use this to half-close or drop early).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Sends `request` and decodes the JSON reply.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` if the reply is not valid JSON.
    pub fn request_json(&mut self, request: &Json) -> io::Result<Json> {
        let body = self.request_raw(request.render().as_bytes())?;
        let text = std::str::from_utf8(&body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "reply is not UTF-8"))?;
        json::parse(text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("invalid reply: {e}")))
    }

    /// Sends an arbitrary request body and returns the raw reply bytes.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn request_raw(&mut self, body: &[u8]) -> io::Result<Vec<u8>> {
        self.send_raw_frame(body)?;
        self.read_reply()
    }

    /// Writes one length-prefixed frame without waiting for a reply.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn send_raw_frame(&mut self, body: &[u8]) -> io::Result<()> {
        let len = u32::try_from(body.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
        self.stream.write_all(&len.to_le_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()
    }

    /// Writes raw bytes with **no** framing (for truncated-frame tests).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one length-prefixed reply frame.
    ///
    /// # Errors
    ///
    /// Transport errors, `UnexpectedEof` on a closed connection, or
    /// `InvalidData` on an implausibly large reply.
    pub fn read_reply(&mut self) -> io::Result<Vec<u8>> {
        let mut prefix = [0u8; 4];
        self.stream.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix);
        if len > MAX_RESPONSE_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply frame of {len} bytes"),
            ));
        }
        let mut body = vec![0u8; len as usize];
        self.stream.read_exact(&mut body)?;
        Ok(body)
    }

    /// Sets a read timeout for replies (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Fetches the server's `stats` report.
    ///
    /// # Errors
    ///
    /// Propagates transport/decode errors.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.request_json(&Json::obj([("query", Json::Str("stats".to_string()))]))
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Propagates transport/decode errors.
    pub fn shutdown_server(&mut self) -> io::Result<Json> {
        self.request_json(&Json::obj([("query", Json::Str("shutdown".to_string()))]))
    }
}
