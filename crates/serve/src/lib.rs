//! Design-space query serving: length-prefixed JSON over TCP, answered
//! concurrently from one shared persistent [`hetarch_cells::CellLibrary`].
//!
//! The crate turns the repo's batch design-space tooling into a long-lived
//! service without adding any framework dependency:
//!
//! - [`query`] — the typed query grammar and its canonical [`query::QueryKey`]
//!   (reordered axes and omitted defaults map to the same key).
//! - [`cache`] — single-flight admission plus a bounded LRU of rendered
//!   responses: identical in-flight queries coalesce onto one execution.
//! - [`queue`] — a bounded job queue with explicit `busy` backpressure.
//! - [`eval`] — the deterministic query evaluator shared by the server's
//!   executors and by tests that compare served bytes against direct runs.
//! - [`server`] — the TCP accept/handler/executor machinery, cooperative
//!   cancellation on client disconnect, and graceful drain-on-shutdown.
//! - [`client`] — a typed client over the same framing (plus raw entry
//!   points for fault-injection tests).
//!
//! Determinism contract: a response's bytes depend only on the canonical
//! query — never on worker count, executor interleaving, or cache state —
//! so coalesced, cached, and freshly computed answers are byte-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod eval;
pub mod json;
pub mod query;
pub mod queue;
pub mod server;

pub use cache::{Admit, JobSlot, Outcome, QueryCache};
pub use client::Client;
pub use eval::evaluate;
pub use json::Json;
pub use query::{parse_query, Query, QueryKey};
pub use queue::JobQueue;
pub use server::{Server, ServerConfig, ServerStats};
