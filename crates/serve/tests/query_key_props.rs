//! Property tests for [`QueryKey`] canonicalization: semantically equal
//! requests must coalesce (equal keys) and semantically distinct requests
//! must never collide (injective keys).

use proptest::collection::vec;
use proptest::prelude::*;

use hetarch_serve::json::{parse, Json};
use hetarch_serve::query::{parse_query, Query, DEFAULT_SEED, DEFAULT_SHOTS};

/// The distances the server accepts (USC capacity bound).
const DISTANCES: [u32; 2] = [3, 5];
/// A coarse grid of valid storage-coherence values; duplicates are likely,
/// which is exactly what exercises the canonical `dedup`.
const TS_GRID: [f64; 6] = [0.5e-3, 1e-3, 2.5e-3, 5e-3, 12.5e-3, 0.1];

fn distances() -> impl Strategy<Value = Vec<u32>> {
    vec((0usize..DISTANCES.len()).prop_map(|i| DISTANCES[i]), 1..6)
}

fn ts_values() -> impl Strategy<Value = Vec<f64>> {
    vec((0usize..TS_GRID.len()).prop_map(|i| TS_GRID[i]), 1..6)
}

fn sweep_query() -> impl Strategy<Value = Query> {
    (distances(), ts_values(), 1u32..=1_000_000, 0u64..=u64::MAX).prop_map(
        |(distances, ts_values, shots, seed)| Query::SweepUec {
            distances,
            ts_values,
            shots,
            seed,
        },
    )
}

fn rare_query() -> impl Strategy<Value = Query> {
    (
        (0usize..DISTANCES.len()).prop_map(|i| DISTANCES[i]),
        (0usize..TS_GRID.len()).prop_map(|i| TS_GRID[i]),
        1u32..=64,
        0.01f64..=1.0,
        1u32..=1_000_000,
        0u64..=u64::MAX,
    )
        .prop_map(
            |(distance, ts, max_strata, rel_tol, shots_per_stratum, seed)| Query::RareUec {
                distance,
                ts,
                max_strata,
                rel_tol,
                shots_per_stratum,
                seed,
            },
        )
}

fn any_query() -> impl Strategy<Value = Query> {
    prop_oneof![sweep_query(), rare_query()]
}

/// Applies a permutation derived from `perm` to `values`.
fn shuffled<T: Clone>(values: &[T], perm: u64) -> Vec<T> {
    let mut out: Vec<T> = values.to_vec();
    let mut state = perm;
    for i in (1..out.len()).rev() {
        // SplitMix64 step: deterministic, no RNG dependency in the test.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        out.swap(i, (z % (i as u64 + 1)) as usize);
    }
    out
}

fn canonical(mut q: Query) -> Query {
    q.canonicalize();
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Reordering (and duplicating) sweep axes never changes the key.
    fn reordered_axes_share_a_key(
        query in sweep_query(),
        perm in 0u64..=u64::MAX,
        dup in 0u32..2,
    ) {
        let Query::SweepUec { distances, ts_values, shots, seed } = &query else {
            unreachable!("sweep_query only builds SweepUec");
        };
        let mut shuffled_d = shuffled(distances, perm);
        let mut shuffled_ts = shuffled(ts_values, perm.rotate_left(17));
        if dup == 1 {
            shuffled_d.push(shuffled_d[0]);
            shuffled_ts.push(shuffled_ts[0]);
        }
        let reordered = Query::SweepUec {
            distances: shuffled_d,
            ts_values: shuffled_ts,
            shots: *shots,
            seed: *seed,
        };
        prop_assert_eq!(query.key(), reordered.key());
    }

    /// Omitting a field is the same key as spelling out its default —
    /// checked through the real JSON parser, which is what the server runs.
    fn omitted_defaults_match_explicit_defaults(
        distances in distances(),
        ts_index in 0usize..TS_GRID.len(),
        omit_shots in 0u32..2,
        omit_seed in 0u32..2,
    ) {
        let ts = TS_GRID[ts_index];
        let d_json = Json::Arr(distances.iter().map(|&d| Json::Int(i64::from(d))).collect());
        let mut implicit = vec![
            ("query", Json::Str("sweep_uec".to_string())),
            ("distances", d_json.clone()),
            ("ts_values", Json::Arr(vec![Json::Num(ts)])),
        ];
        if omit_shots == 0 {
            implicit.push(("shots", Json::Int(i64::from(DEFAULT_SHOTS))));
        }
        if omit_seed == 0 {
            implicit.push(("seed", Json::Int(DEFAULT_SEED as i64)));
        }
        let explicit = Json::obj([
            ("query", Json::Str("sweep_uec".to_string())),
            ("distances", d_json),
            ("ts_values", Json::Arr(vec![Json::Num(ts)])),
            ("shots", Json::Int(i64::from(DEFAULT_SHOTS))),
            ("seed", Json::Int(DEFAULT_SEED as i64)),
        ]);
        // Round-trip both through render + parse: exactly the wire path.
        let implicit = parse_query(&parse(&Json::obj(implicit).render()).unwrap()).unwrap();
        let explicit = parse_query(&parse(&explicit.render()).unwrap()).unwrap();
        prop_assert_eq!(implicit.key(), explicit.key());
    }

    /// Keys are injective on canonical queries: two requests share a key
    /// iff their canonical forms are equal — across query kinds too.
    fn keys_are_injective_on_canonical_queries(
        a in any_query(),
        b in any_query(),
    ) {
        let (ca, cb) = (canonical(a), canonical(b));
        prop_assert_eq!(ca.key() == cb.key(), ca == cb);
    }

    /// Parsing is idempotent on keys: rendering a parsed query's canonical
    /// JSON and re-parsing it yields the same key.
    ///
    /// Seeds stay within `i64` because the JSON integer literal is signed;
    /// the typed [`Query`] itself carries a full `u64`.
    fn wire_round_trip_preserves_the_key(
        distances in distances(),
        ts_values in ts_values(),
        shots in 1u32..=1_000_000,
        seed in 0u64..=i64::MAX as u64,
    ) {
        let query = Query::SweepUec {
            distances: distances.clone(),
            ts_values: ts_values.clone(),
            shots,
            seed,
        };
        let body = Json::obj([
            ("query", Json::Str("sweep_uec".to_string())),
            (
                "distances",
                Json::Arr(distances.iter().map(|&d| Json::Int(i64::from(d))).collect()),
            ),
            (
                "ts_values",
                Json::Arr(ts_values.iter().map(|&t| Json::Num(t)).collect()),
            ),
            ("shots", Json::Int(i64::from(shots))),
            ("seed", Json::Int(seed as i64)),
        ]);
        let parsed = parse_query(&parse(&body.render()).unwrap()).unwrap();
        prop_assert_eq!(parsed.key(), query.key());
    }
}
