//! Sharded Monte-Carlo execution engine.
//!
//! Every Monte-Carlo hot path in the workspace (UEC logical-error-rate
//! estimation, the Pauli-frame sampler, distillation trial batches, DSE
//! sweeps) runs through this crate, so the workspace has exactly one
//! parallelism substrate.
//!
//! # The `(seed, shard)` RNG-stream contract
//!
//! Work is split into **shards** whose boundaries depend only on the total
//! work size and the shard size — **never** on the worker count. Each shard
//! derives its own RNG stream deterministically from the master seed and its
//! shard index via [`shard_seed`] (a SplitMix64 finalizer, so neighbouring
//! shard indices produce statistically independent streams). Per-shard
//! results are merged **in shard-index order** by the caller's reducer.
//!
//! Consequently the output of any computation built on this engine is
//! **bit-identical** for every worker count: the worker pool only decides
//! *which thread* executes a shard, never *what* the shard computes or the
//! order in which results are folded.
//!
//! # Examples
//!
//! ```
//! use hetarch_exec::WorkerPool;
//!
//! // Estimate a failure count over 10_000 trials, sharded by 1024.
//! let count = |pool: &WorkerPool| {
//!     pool.fold_shards(10_000, 1024, 42, |shard| shard.len, 0usize, |a, b| a + b)
//! };
//! assert_eq!(count(&WorkerPool::new(1)), 10_000);
//! assert_eq!(count(&WorkerPool::new(8)), 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rare;

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};

use hetarch_obs as obs;

// Engine metrics (no-ops unless the `obs` feature is on and `HETARCH_OBS=1`;
// they count and time but never feed back into shard plans or RNG streams).
static MAP_CALLS: obs::Counter = obs::Counter::new("exec.map_calls");
static JOBS_EXECUTED: obs::Counter = obs::Counter::new("exec.jobs_executed");
static SHARDS_EXECUTED: obs::Counter = obs::Counter::new("exec.shards_executed");
static PANICS_OBSERVED: obs::Counter = obs::Counter::new("exec.panics_observed");
static GLOBAL_WORKERS: obs::Gauge = obs::Gauge::new("exec.global_workers");
static QUEUE_WAIT_NS: obs::Histogram = obs::Histogram::new("exec.queue_wait_ns");
static COMPUTE_NS: obs::Histogram = obs::Histogram::new("exec.compute_ns");
static JOBS_PER_WORKER: obs::Histogram = obs::Histogram::new("exec.jobs_per_worker");
static CANCELLATIONS: obs::Counter = obs::Counter::new("exec.cancellations");

/// A cooperative cancellation token shared between a job's requester and the
/// engine loops executing it.
///
/// The token is a cheap clonable handle over one shared flag. Cancellation
/// is **cooperative**: the engine checks the flag at its checkpoints (before
/// dispatching each work item in [`WorkerPool::try_map_indexed`], i.e.
/// between shards in [`WorkerPool::try_run_shards`] /
/// [`WorkerPool::try_fold_shards`]), finishes the items already in flight,
/// and returns [`Cancelled`]. A shard body is never interrupted mid-shot, so
/// cancellation can never corrupt a result that *is* delivered — a
/// cancelled run delivers nothing at all.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once any clone of this token was cancelled.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Error returned by the `try_*` engine entry points when their
/// [`CancelToken`] fired before the run completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("run cancelled before completion")
    }
}

impl std::error::Error for Cancelled {}

/// Derives the RNG seed of shard `shard` from the master `seed`.
///
/// This is the SplitMix64 output function over `seed + (shard+1)·φ64`; it
/// decorrelates the streams of neighbouring shard indices and of
/// neighbouring master seeds. `shard_seed(s, i)` depends on nothing else, so
/// a shard's stream can be reproduced in isolation.
#[inline]
pub fn shard_seed(seed: u64, shard: u64) -> u64 {
    let mut z = seed.wrapping_add(shard.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One unit of sharded work: a contiguous slice of the trial range plus its
/// private RNG seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Shard index (reduction order).
    pub index: usize,
    /// First trial covered by this shard.
    pub start: usize,
    /// Number of trials in this shard (always ≥ 1).
    pub len: usize,
    /// Private RNG seed, [`shard_seed`]`(master_seed, index)`.
    pub seed: u64,
}

/// Splits `total` trials into shards of at most `shard_size`, deriving each
/// shard's seed from `seed`. Returns an empty vector when `total == 0`; the
/// last shard absorbs the remainder when `total` is not divisible.
///
/// # Panics
///
/// Panics if `shard_size == 0`.
pub fn shards(total: usize, shard_size: usize, seed: u64) -> Vec<Shard> {
    assert!(shard_size > 0, "shard size must be positive");
    (0..total.div_ceil(shard_size))
        .map(|index| {
            let start = index * shard_size;
            Shard {
                index,
                start,
                len: shard_size.min(total - start),
                seed: shard_seed(seed, index as u64),
            }
        })
        .collect()
}

/// A scoped worker pool.
///
/// The pool stores only its worker count; each [`WorkerPool::map_indexed`]
/// call spawns scoped threads that pull work-stealing indices from a shared
/// counter, so borrows of caller state need no `'static` bound and a
/// panicking job cannot poison anything — the panic propagates out of the
/// call and the pool remains fully usable.
#[derive(Clone, Debug)]
pub struct WorkerPool {
    workers: usize,
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

impl WorkerPool {
    /// A pool with exactly `workers` threads (1 = fully serial execution).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        WorkerPool { workers }
    }

    /// The process-wide default pool: `HETARCH_WORKERS` if set, otherwise
    /// the machine's available parallelism.
    ///
    /// The resolution happens **once**: the first call reads the
    /// environment and caches the pool in a `OnceLock` for the lifetime of
    /// the process, so later changes to `HETARCH_WORKERS` are ignored. The
    /// resolved count is recorded as the `exec.global_workers` obs gauge.
    ///
    /// # Panics
    ///
    /// Panics (on the first call) if `HETARCH_WORKERS` is set to anything
    /// other than a positive integer — a typo'd worker count should fail
    /// loudly, not silently fall back to full parallelism.
    pub fn global() -> &'static WorkerPool {
        GLOBAL.get_or_init(|| {
            let pool = WorkerPool::from_env_str(std::env::var("HETARCH_WORKERS").ok().as_deref());
            GLOBAL_WORKERS.set(pool.workers as u64);
            pool
        })
    }

    /// Resolves a pool from an optional `HETARCH_WORKERS` value — the
    /// testable seam behind [`WorkerPool::global`]. `None` (variable unset)
    /// falls back to the machine's available parallelism.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a positive integer.
    pub fn from_env_str(value: Option<&str>) -> WorkerPool {
        let workers = match value {
            None => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Some(s) => match s.trim().parse::<usize>() {
                Ok(w) if w >= 1 => w,
                Ok(_) => panic!("HETARCH_WORKERS must be at least 1, got `{s}`"),
                Err(_) => panic!("HETARCH_WORKERS must be a positive integer, got `{s}`"),
            },
        };
        WorkerPool::new(workers)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluates `f(i)` for every `i in 0..n` and returns the results in
    /// index order, regardless of which worker computed which index.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f`. The pool is not
    /// poisoned: subsequent calls behave normally.
    pub fn map_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        match self.map_indexed_inner(n, None, f) {
            Ok(out) => out,
            Err(Cancelled) => unreachable!("no token, no cancellation"),
        }
    }

    /// As [`WorkerPool::map_indexed`] with a cooperative [`CancelToken`]:
    /// the token is checked before each index is dispatched (and between
    /// iterations on the serial path), so a long run stops — and its worker
    /// threads are released — within one job body of the cancel request.
    ///
    /// Returns [`Cancelled`] if the token fired before every index was
    /// evaluated; results computed up to that point are discarded. A token
    /// that fires only after the last job completed still returns `Ok`.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f`, exactly like
    /// [`WorkerPool::map_indexed`].
    pub fn try_map_indexed<R, F>(
        &self,
        n: usize,
        token: &CancelToken,
        f: F,
    ) -> Result<Vec<R>, Cancelled>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.map_indexed_inner(n, Some(token), f)
    }

    fn map_indexed_inner<R, F>(
        &self,
        n: usize,
        token: Option<&CancelToken>,
        f: F,
    ) -> Result<Vec<R>, Cancelled>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        MAP_CALLS.inc();
        let cancelled = || token.is_some_and(CancelToken::is_cancelled);
        if self.workers == 1 || n <= 1 {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                if cancelled() {
                    CANCELLATIONS.inc();
                    return Err(Cancelled);
                }
                out.push(observe_job(|| f(i)));
            }
            return Ok(out);
        }
        let threads = self.workers.min(n);
        let next = &AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let f = &f;
        let call_start = obs::enabled().then(std::time::Instant::now);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut filled = 0usize;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let tx = tx.clone();
                s.spawn(move || {
                    let mut mine = 0u64;
                    loop {
                        // Cancellation checkpoint: stop pulling new work;
                        // items already claimed by other workers finish.
                        if cancelled() {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        if let Some(start) = call_start {
                            QUEUE_WAIT_NS.record(elapsed_ns(start));
                        }
                        let value = observe_job(|| f(i));
                        mine += 1;
                        // The receiver outlives the workers; a failed send
                        // means the scope is unwinding anyway.
                        let _ = tx.send((i, value));
                    }
                    if obs::enabled() {
                        JOBS_PER_WORKER.record(mine);
                    }
                });
            }
            drop(tx);
            // Drain on the caller thread *while* the workers run: each
            // result moves into its pre-allocated slot as soon as it is
            // produced, instead of buffering the whole result set in the
            // channel (~2x peak memory) until the scope joins. The iterator
            // ends when every worker has dropped its sender; if a worker
            // panicked, the scope re-raises that panic right after.
            for (i, value) in rx.iter() {
                slots[i] = Some(value);
                filled += 1;
            }
        });
        if filled < n {
            // Only a fired token can leave indices unevaluated (a panic
            // would have propagated out of the scope above).
            CANCELLATIONS.inc();
            return Err(Cancelled);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all indices evaluated"))
            .collect())
    }

    /// Runs `f` once per shard of `total` trials (shards of at most
    /// `shard_size`, seeds derived from `seed`) and returns the per-shard
    /// results **in shard-index order**.
    ///
    /// Shard boundaries and seeds depend only on `(total, shard_size,
    /// seed)`, so the result is bit-identical for every worker count.
    pub fn run_shards<R, F>(&self, total: usize, shard_size: usize, seed: u64, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Shard) -> R + Sync,
    {
        let plan = shards(total, shard_size, seed);
        SHARDS_EXECUTED.add(plan.len() as u64);
        self.map_indexed(plan.len(), |i| f(&plan[i]))
    }

    /// As [`WorkerPool::run_shards`] with a cooperative [`CancelToken`]
    /// checked between shards: a fired token stops the run after at most
    /// one in-flight shard per worker and returns [`Cancelled`]. A shard
    /// body is never interrupted mid-shot.
    pub fn try_run_shards<R, F>(
        &self,
        total: usize,
        shard_size: usize,
        seed: u64,
        token: &CancelToken,
        f: F,
    ) -> Result<Vec<R>, Cancelled>
    where
        R: Send,
        F: Fn(&Shard) -> R + Sync,
    {
        let plan = shards(total, shard_size, seed);
        SHARDS_EXECUTED.add(plan.len() as u64);
        self.try_map_indexed(plan.len(), token, |i| f(&plan[i]))
    }

    /// [`WorkerPool::run_shards`] followed by an in-order fold: starts from
    /// `init` and applies `reduce` to each shard result in shard-index
    /// order. With `total == 0` no shards run and `init` is returned.
    pub fn fold_shards<T, R, F, G>(
        &self,
        total: usize,
        shard_size: usize,
        seed: u64,
        f: F,
        init: T,
        reduce: G,
    ) -> T
    where
        R: Send,
        F: Fn(&Shard) -> R + Sync,
        G: FnMut(T, R) -> T,
    {
        self.run_shards(total, shard_size, seed, f)
            .into_iter()
            .fold(init, reduce)
    }

    /// As [`WorkerPool::fold_shards`] with a cooperative [`CancelToken`]:
    /// the token is checked between shards (the `should_stop` checkpoint a
    /// long fold previously lacked), so cancelling releases the pool's
    /// workers after at most one in-flight shard each instead of after the
    /// whole fold.
    #[allow(clippy::too_many_arguments)]
    pub fn try_fold_shards<T, R, F, G>(
        &self,
        total: usize,
        shard_size: usize,
        seed: u64,
        token: &CancelToken,
        f: F,
        init: T,
        reduce: G,
    ) -> Result<T, Cancelled>
    where
        R: Send,
        F: Fn(&Shard) -> R + Sync,
        G: FnMut(T, R) -> T,
    {
        Ok(self
            .try_run_shards(total, shard_size, seed, token, f)?
            .into_iter()
            .fold(init, reduce))
    }
}

#[inline]
fn elapsed_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Runs one job under observation: times it, counts it, and counts (then
/// re-raises) any panic. When collection is disabled this is a direct call.
#[inline]
fn observe_job<R>(f: impl FnOnce() -> R) -> R {
    if obs::enabled() {
        let t = obs::Timer::start();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(value) => {
                COMPUTE_NS.record_timer(t);
                JOBS_EXECUTED.inc();
                value
            }
            Err(payload) => {
                PANICS_OBSERVED.inc();
                std::panic::resume_unwind(payload)
            }
        }
    } else {
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_covers_range_exactly() {
        for (total, size) in [(0, 64), (1, 64), (64, 64), (100, 64), (1000, 64), (7, 3)] {
            let plan = shards(total, size, 9);
            let covered: usize = plan.iter().map(|s| s.len).sum();
            assert_eq!(covered, total, "total {total} size {size}");
            for (i, s) in plan.iter().enumerate() {
                assert_eq!(s.index, i);
                assert_eq!(s.start, i * size);
                assert!(s.len >= 1 && s.len <= size);
                assert_eq!(s.seed, shard_seed(9, i as u64));
            }
        }
    }

    #[test]
    fn shard_seeds_are_distinct_and_seed_sensitive() {
        let a: Vec<u64> = (0..64).map(|i| shard_seed(1, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| shard_seed(2, i)).collect();
        let mut uniq = a.clone();
        uniq.extend(&b);
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 128, "seed collision across shards/masters");
    }

    #[test]
    fn map_indexed_preserves_order() {
        for workers in [1, 2, 8] {
            let pool = WorkerPool::new(workers);
            let out = pool.map_indexed(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fold_is_worker_count_invariant() {
        // A reduction whose result depends on fold order (string concat)
        // must still be identical across worker counts.
        let run = |workers| {
            WorkerPool::new(workers).fold_shards(
                257,
                16,
                7,
                |s| format!("{}:{:x};", s.index, s.seed),
                String::new(),
                |acc, s| acc + &s,
            )
        };
        let reference = run(1);
        for workers in [2, 3, 8] {
            assert_eq!(run(workers), reference);
        }
    }

    #[test]
    fn zero_total_runs_no_shards() {
        let pool = WorkerPool::new(4);
        let out = pool.fold_shards(0, 64, 1, |_| 1usize, 0usize, |a, b| a + b);
        assert_eq!(out, 0);
        assert!(shards(0, 64, 1).is_empty());
    }

    #[test]
    fn single_shard_fallback_is_serial() {
        // total <= shard_size: exactly one shard, seeded as shard 0.
        let plan = shards(40, 64, 5);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].len, 40);
        assert_eq!(plan[0].seed, shard_seed(5, 0));
    }

    #[test]
    fn panicking_job_does_not_poison_pool() {
        let pool = WorkerPool::new(4);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map_indexed(16, |i| {
                if i == 7 {
                    panic!("shard failure");
                }
                i
            })
        }));
        assert!(boom.is_err(), "panic must propagate");
        // The pool is stateless across calls: the next run is unaffected.
        let out = pool.map_indexed(16, |i| i);
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "shard size must be positive")]
    fn zero_shard_size_rejected() {
        shards(10, 0, 1);
    }

    #[test]
    fn from_env_str_accepts_positive_integers() {
        assert_eq!(WorkerPool::from_env_str(Some("1")).workers(), 1);
        assert_eq!(WorkerPool::from_env_str(Some(" 8 ")).workers(), 8);
        assert!(WorkerPool::from_env_str(None).workers() >= 1);
    }

    #[test]
    #[should_panic(expected = "HETARCH_WORKERS must be a positive integer, got `abc`")]
    fn from_env_str_rejects_garbage() {
        WorkerPool::from_env_str(Some("abc"));
    }

    #[test]
    #[should_panic(expected = "HETARCH_WORKERS must be at least 1")]
    fn from_env_str_rejects_zero() {
        WorkerPool::from_env_str(Some("0"));
    }

    #[test]
    #[should_panic(expected = "HETARCH_WORKERS must be a positive integer, got `-2`")]
    fn from_env_str_rejects_negative() {
        WorkerPool::from_env_str(Some("-2"));
    }

    #[test]
    fn uncancelled_try_paths_match_plain_paths() {
        for workers in [1, 2, 8] {
            let pool = WorkerPool::new(workers);
            let token = CancelToken::new();
            let plain = pool.map_indexed(37, |i| i * i);
            let tried = pool.try_map_indexed(37, &token, |i| i * i).unwrap();
            assert_eq!(plain, tried);
            let plain = pool.fold_shards(1000, 64, 7, |s| s.seed, 0u64, |a, b| a ^ b);
            let tried = pool
                .try_fold_shards(1000, 64, 7, &token, |s| s.seed, 0u64, |a, b| a ^ b)
                .unwrap();
            assert_eq!(plain, tried);
        }
    }

    #[test]
    fn pre_cancelled_token_runs_nothing() {
        for workers in [1, 4] {
            let pool = WorkerPool::new(workers);
            let token = CancelToken::new();
            token.cancel();
            let ran = AtomicUsize::new(0);
            let out = pool.try_map_indexed(64, &token, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                i
            });
            assert_eq!(out, Err(Cancelled));
            // Parallel workers may each have claimed at most one job before
            // observing the flag; the serial path claims none.
            assert!(ran.load(Ordering::Relaxed) <= workers);
        }
    }

    #[test]
    fn cancel_token_fires_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn cancelled_fold_releases_workers_promptly() {
        // The regression the serving layer exposed: a long fold_shards had
        // no checkpoint between shards, so a dead request kept its workers
        // until the whole fold finished. With the token checked per shard,
        // cancelling mid-run must return within roughly one shard body per
        // worker — far below the full runtime (~10k shards x 500µs = 5s).
        let pool = WorkerPool::new(2);
        let token = CancelToken::new();
        let canceller = token.clone();
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                canceller.cancel();
            });
            let out = pool.try_fold_shards(
                10_000,
                1,
                3,
                &token,
                |_| {
                    std::thread::sleep(std::time::Duration::from_micros(500));
                    1usize
                },
                0usize,
                |a, b| a + b,
            );
            assert_eq!(out, Err(Cancelled));
        });
        let elapsed = start.elapsed();
        assert!(
            elapsed < std::time::Duration::from_millis(1500),
            "cancelled fold held its workers for {elapsed:?}"
        );
    }

    #[test]
    fn large_results_drain_in_order() {
        // Results are drained into their slots while workers are still
        // producing; the output must still be exactly in index order for
        // every worker count (the determinism suite depends on it).
        for workers in [1, 2, 8] {
            let pool = WorkerPool::new(workers);
            let out = pool.map_indexed(500, |i| vec![i as u64; 100]);
            assert_eq!(out.len(), 500);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(v.len(), 100);
                assert!(v.iter().all(|&x| x == i as u64));
            }
        }
    }
}
