//! Rare-event estimation: weight-stratified importance sampling.
//!
//! The plain frequency estimator cannot resolve logical error rates below
//! roughly `1/shots`; deep-subthreshold design points (p_L ≤ 1e-8) are out
//! of reach at any realistic budget. This module decomposes the failure
//! probability over the *number of triggered fault sites* instead:
//!
//! ```text
//! p_L = Σ_w  P(W = w) · P(fail | W = w)
//! ```
//!
//! `P(W = w)` is known **exactly** from the noise model — the Poisson-
//! binomial distribution over the circuit's independent fault sites (the
//! plain binomial `C(n,w) p^w (1-p)^(n-w)` when all sites share one `p`) —
//! so only the *conditional* failure probabilities `f(w) = P(fail | W=w)`
//! need simulation, and each is an O(1)-probability quantity: strata are
//! either enumerated exactly or estimated by uniform conditional sampling.
//! Truncating the sum at `w_max` discards at most `P(W > w_max)` because
//! `f(w) ≤ 1`, which gives a rigorous truncation bound from the prior tail
//! alone.
//!
//! The driver here is simulator-agnostic: callers supply a closure that
//! evaluates one stratum (enumerate or sample — their choice per weight),
//! and [`StratifiedEstimator`] handles stratum ordering, prior weighting,
//! variance accumulation, adaptive stopping, and the explicit
//! [`RareOutcome::Unconverged`] verdict when the tail bound cannot be
//! driven below the requested tolerance.

use hetarch_obs as obs;

// Stratified-estimator metrics (inert unless the `obs` feature is on and
// the runtime gate is armed; they never influence results).
static STRATA_EVALUATED: obs::Counter = obs::Counter::new("exec.rare.strata");
static STRATUM_SHOTS: obs::Counter = obs::Counter::new("exec.rare.shots");

/// Exact distribution of the number of triggered fault sites.
///
/// For `n` independent sites with trigger probabilities `p_i`, the weight
/// `W = Σ X_i` follows the Poisson-binomial distribution; when all `p_i`
/// are equal this is the plain binomial `C(n,w) p^w (1-p)^(n-w)`. The full
/// PMF is computed once by the standard O(n²) dynamic program
/// (`new[j] = old[j]·(1-p_i) + old[j-1]·p_i`), which is numerically stable
/// for the sub-percent physical error rates this estimator targets.
#[derive(Clone, Debug)]
pub struct WeightPrior {
    pmf: Vec<f64>,
    /// `tail[w] = Σ_{j>w} pmf[j]`, precomputed right-to-left so repeated
    /// tail queries are O(1) and bit-stable.
    tail: Vec<f64>,
}

impl WeightPrior {
    /// The Poisson-binomial prior over `probs.len()` heterogeneous sites.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or not finite.
    pub fn poisson_binomial(probs: &[f64]) -> Self {
        for (i, &p) in probs.iter().enumerate() {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "site {i} trigger probability {p} outside [0, 1]"
            );
        }
        let n = probs.len();
        let mut pmf = vec![0.0; n + 1];
        pmf[0] = 1.0;
        for (i, &p) in probs.iter().enumerate() {
            // Walk downward so pmf[j-1] is still the previous iteration's.
            for j in (1..=i + 1).rev() {
                pmf[j] = pmf[j] * (1.0 - p) + pmf[j - 1] * p;
            }
            pmf[0] *= 1.0 - p;
        }
        Self::from_pmf(pmf)
    }

    /// The homogeneous special case: `n` sites at probability `p`, i.e. the
    /// binomial prior `C(n,w) p^w (1-p)^(n-w)`.
    pub fn binomial(n: usize, p: f64) -> Self {
        Self::poisson_binomial(&vec![p; n])
    }

    fn from_pmf(pmf: Vec<f64>) -> Self {
        let mut tail = vec![0.0; pmf.len() + 1];
        for w in (0..pmf.len()).rev() {
            tail[w] = (tail[w + 1] + pmf[w]).min(1.0);
        }
        WeightPrior { pmf, tail }
    }

    /// Number of fault sites `n`.
    pub fn num_sites(&self) -> usize {
        self.pmf.len() - 1
    }

    /// `P(W = w)`; zero for `w > n`.
    pub fn pmf(&self, w: usize) -> f64 {
        self.pmf.get(w).copied().unwrap_or(0.0)
    }

    /// `P(W > w)` — the exact truncation bound after evaluating strata
    /// `0..=w`. Zero for `w ≥ n`.
    pub fn tail_above(&self, w: usize) -> f64 {
        self.tail.get(w + 1).copied().unwrap_or(0.0)
    }
}

/// Exact sampler of weight-`w` site subsets, conditioned on the
/// heterogeneous trigger probabilities.
///
/// Built on the suffix dynamic program `S[i][j] = P(X_i + … + X_{n-1} = j)`;
/// a forward walk then takes site `i` with probability
/// `p_i · S[i+1][r-1] / S[i][r]` where `r` triggers remain — the exact
/// conditional distribution, so sampled subsets are distributed identically
/// to the true noise process restricted to weight `w`.
#[derive(Clone, Debug)]
pub struct ConditionalSampler {
    probs: Vec<f64>,
    weight: usize,
    /// Flattened `(n+1) × (w+1)` suffix table.
    suffix: Vec<f64>,
}

impl ConditionalSampler {
    /// Prepares the suffix table for drawing weight-`weight` subsets of the
    /// sites described by `probs`.
    pub fn new(probs: &[f64], weight: usize) -> Self {
        let n = probs.len();
        let cols = weight + 1;
        let mut suffix = vec![0.0; (n + 1) * cols];
        suffix[n * cols] = 1.0;
        for i in (0..n).rev() {
            let p = probs[i];
            for j in 0..cols {
                let keep = (1.0 - p) * suffix[(i + 1) * cols + j];
                let take = if j > 0 {
                    p * suffix[(i + 1) * cols + (j - 1)]
                } else {
                    0.0
                };
                suffix[i * cols + j] = keep + take;
            }
        }
        ConditionalSampler {
            probs: probs.to_vec(),
            weight,
            suffix,
        }
    }

    /// Whether any weight-`w` subset has positive probability (false when
    /// `w` exceeds the number of sites that can trigger, or when too many
    /// certain sites force a higher weight).
    pub fn is_feasible(&self) -> bool {
        self.suffix[self.weight] > 0.0
    }

    /// Draws one subset into `out` (cleared first, ascending site order),
    /// consuming uniform `[0,1)` variates from `u01`.
    ///
    /// # Panics
    ///
    /// Panics if the stratum is infeasible (see
    /// [`ConditionalSampler::is_feasible`]).
    pub fn sample_into(&self, u01: &mut dyn FnMut() -> f64, out: &mut Vec<usize>) {
        assert!(
            self.is_feasible(),
            "no weight-{} subset of {} sites has positive probability",
            self.weight,
            self.probs.len()
        );
        out.clear();
        let cols = self.weight + 1;
        let mut remaining = self.weight;
        for (i, &p) in self.probs.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            let here = self.suffix[i * cols + remaining];
            let take = p * self.suffix[(i + 1) * cols + (remaining - 1)] / here;
            if u01() < take {
                out.push(i);
                remaining -= 1;
            }
        }
        debug_assert_eq!(out.len(), self.weight);
    }
}

/// One fully specified fault configuration: the triggered sites with their
/// chosen variants, plus its conditional probability within the stratum.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// `(site index, variant index)` pairs in ascending site order.
    pub sites: Vec<(usize, usize)>,
    /// `P(this configuration | W = w)`; the weights of all configurations
    /// of one stratum sum to exactly 1 (normalized, so the stratum's
    /// enumerated failure probability carries no floating-point drift from
    /// the prior).
    pub weight: f64,
}

/// Enumerates every weight-`weight` fault configuration, or returns `None`
/// when there are more than `max_configs` of them (the caller should fall
/// back to conditional sampling).
///
/// `variant_count(i)` is the number of fault variants at site `i` (e.g. 3
/// for a single-qubit Pauli channel, 15 for two-qubit depolarizing);
/// `variant_weight(i, v)` is the conditional probability of variant `v`
/// given that site `i` triggered (must sum to 1 over `v`). Variants with
/// zero weight are skipped — they neither count against `max_configs` nor
/// appear in the output.
pub fn enumerate_configs(
    trigger_probs: &[f64],
    weight: usize,
    max_configs: u64,
    variant_count: &dyn Fn(usize) -> usize,
    variant_weight: &dyn Fn(usize, usize) -> f64,
) -> Option<Vec<FaultConfig>> {
    let n = trigger_probs.len();
    // Effective per-site variant multiplicity: zero-probability sites or
    // variants cannot appear in any configuration.
    let effective: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            if trigger_probs[i] <= 0.0 {
                Vec::new()
            } else {
                (0..variant_count(i))
                    .filter(|&v| variant_weight(i, v) > 0.0)
                    .collect()
            }
        })
        .collect();

    // Saturating count DP: ways[j] = number of weight-j configurations.
    let mut ways = vec![0u64; weight + 1];
    ways[0] = 1;
    for variants in &effective {
        let m = variants.len() as u64;
        if m == 0 {
            continue;
        }
        for j in (1..=weight).rev() {
            ways[j] = ways[j].saturating_add(ways[j - 1].saturating_mul(m));
        }
    }
    if ways[weight] > max_configs {
        return None;
    }

    // Depth-first enumeration carrying the running (unnormalized)
    // probability product; normalized by the accumulated total at the end.
    let mut configs = Vec::with_capacity(ways[weight] as usize);
    let mut stack: Vec<(usize, usize)> = Vec::with_capacity(weight);
    dfs(
        trigger_probs,
        &effective,
        variant_weight,
        0,
        weight,
        1.0,
        &mut stack,
        &mut configs,
    );
    let total: f64 = configs.iter().map(|c| c.weight).sum();
    if total > 0.0 {
        for c in &mut configs {
            c.weight /= total;
        }
    }
    Some(configs)
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    probs: &[f64],
    effective: &[Vec<usize>],
    variant_weight: &dyn Fn(usize, usize) -> f64,
    i: usize,
    remaining: usize,
    product: f64,
    stack: &mut Vec<(usize, usize)>,
    out: &mut Vec<FaultConfig>,
) {
    if remaining == 0 {
        // Remaining sites all stay idle.
        let idle: f64 = probs[i..].iter().map(|&p| 1.0 - p).product();
        out.push(FaultConfig {
            sites: stack.clone(),
            weight: product * idle,
        });
        return;
    }
    if i >= probs.len() {
        return;
    }
    // Skip site i.
    dfs(
        probs,
        effective,
        variant_weight,
        i + 1,
        remaining,
        product * (1.0 - probs[i]),
        stack,
        out,
    );
    // Trigger site i with each viable variant.
    for &v in &effective[i] {
        stack.push((i, v));
        dfs(
            probs,
            effective,
            variant_weight,
            i + 1,
            remaining - 1,
            product * probs[i] * variant_weight(i, v),
            stack,
            out,
        );
        stack.pop();
    }
}

/// Tuning knobs for [`StratifiedEstimator`].
#[derive(Clone, Copy, Debug)]
pub struct RareConfig {
    /// Maximum number of strata evaluated (weights `0, 1, …,
    /// max_strata - 1`). Zero strata yields an immediate
    /// [`RareOutcome::Unconverged`] with truncation bound 1.
    pub max_strata: usize,
    /// Stop once the remaining tail bound is below
    /// `abs_tol.max(rel_tol · p̂_L)`.
    pub rel_tol: f64,
    /// Absolute floor of the stopping tolerance (also what makes `p = 0`
    /// noise converge at the `w = 0` stratum, where `p̂_L` may be 0).
    pub abs_tol: f64,
    /// Monte-Carlo shots for each stratum that is sampled rather than
    /// enumerated.
    pub shots_per_stratum: usize,
    /// Enumerate a stratum exactly when it has at most this many fault
    /// configurations; sample it otherwise.
    pub enumerate_threshold: u64,
}

impl Default for RareConfig {
    fn default() -> Self {
        RareConfig {
            max_strata: 16,
            rel_tol: 0.1,
            abs_tol: 1e-30,
            shots_per_stratum: 4096,
            enumerate_threshold: 4096,
        }
    }
}

/// The caller's verdict on one stratum.
#[derive(Clone, Copy, Debug)]
pub enum StratumEval {
    /// The stratum was enumerated exactly: `failure_probability` is
    /// `P(fail | W = w)` with zero statistical variance.
    Enumerated {
        /// Exact conditional failure probability.
        failure_probability: f64,
        /// Number of fault configurations enumerated.
        configs: u64,
    },
    /// The stratum was sampled: `failures` out of `shots` conditioned
    /// Monte-Carlo shots failed.
    Sampled {
        /// Observed conditional failures.
        failures: u64,
        /// Conditioned shots drawn (0 leaves the stratum unresolved; its
        /// prior mass is charged to the truncation bound).
        shots: usize,
    },
}

/// Per-stratum bookkeeping in a [`RareReport`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StratumStat {
    /// Error weight of this stratum.
    pub weight: usize,
    /// Exact prior `P(W = w)`.
    pub prior: f64,
    /// Conditional failure probability (exact if `enumerated`, else the
    /// sample frequency).
    pub failure_rate: f64,
    /// Conditioned shots drawn (0 for enumerated strata).
    pub shots: usize,
    /// Observed failures (for enumerated strata: configurations counted as
    /// weighted failures are not tallied here; this stays 0).
    pub failures: u64,
    /// Whether the stratum was enumerated exactly.
    pub enumerated: bool,
}

/// The stratified estimate with its full error budget.
#[derive(Clone, Debug, PartialEq)]
pub struct RareReport {
    /// Stratified estimate `Σ_w P(W=w) · f̂(w)`.
    pub p_l: f64,
    /// One statistical standard deviation of `p_l` (sampled strata only;
    /// enumerated strata contribute no variance).
    pub sigma: f64,
    /// Rigorous bound on the truncation error: the prior mass of every
    /// weight beyond the last evaluated stratum, plus the mass of any
    /// stratum left unresolved (zero shots).
    pub truncation_bound: f64,
    /// Per-stratum tallies, ascending weight, one entry per weight
    /// considered (including zero-prior strata that were skipped).
    pub strata: Vec<StratumStat>,
    /// Total conditioned Monte-Carlo shots across all sampled strata.
    pub total_shots: usize,
    /// Number of fault sites in the underlying model.
    pub num_sites: usize,
}

impl RareReport {
    /// Converts the per-shot estimate to a per-round rate over `rounds`
    /// rounds: `1 - (1 - p_L)^(1/rounds)`.
    pub fn per_round(&self, rounds: usize) -> f64 {
        if self.p_l <= 0.0 || rounds == 0 {
            return 0.0;
        }
        1.0 - (1.0 - self.p_l).powf(1.0 / rounds as f64)
    }

    /// The plain-estimator shot budget that would match this report's
    /// statistical resolution: `p(1-p)/σ²` (infinite when `σ = 0`, i.e.
    /// every contributing stratum was enumerated).
    pub fn equivalent_plain_shots(&self) -> f64 {
        if self.sigma <= 0.0 {
            return f64::INFINITY;
        }
        self.p_l * (1.0 - self.p_l) / (self.sigma * self.sigma)
    }
}

/// Outcome of a stratified estimation run.
///
/// `Unconverged` still carries the full report — the estimate is a valid
/// *lower* bound and the truncation bound is honest — but the caller asked
/// for a tolerance the configured strata could not deliver, and silently
/// returning the number would hide that.
#[derive(Clone, Debug, PartialEq)]
#[must_use = "an Unconverged outcome signals the tolerance was not met"]
pub enum RareOutcome {
    /// The tail bound dropped below the requested tolerance.
    Converged(RareReport),
    /// `max_strata` was exhausted first; the report's truncation bound
    /// exceeds the requested tolerance.
    Unconverged(RareReport),
}

impl RareOutcome {
    /// The report, converged or not.
    pub fn report(&self) -> &RareReport {
        match self {
            RareOutcome::Converged(r) | RareOutcome::Unconverged(r) => r,
        }
    }

    /// Consumes the outcome, returning the report.
    pub fn into_report(self) -> RareReport {
        match self {
            RareOutcome::Converged(r) | RareOutcome::Unconverged(r) => r,
        }
    }

    /// Whether the tolerance was met.
    pub fn is_converged(&self) -> bool {
        matches!(self, RareOutcome::Converged(_))
    }
}

/// The weight-stratified importance-sampling driver.
///
/// Walks strata in ascending weight, asks the caller to evaluate each one
/// (enumerate or sample), weights the result by the exact prior, and stops
/// as soon as the remaining binomial-tail bound is below the requested
/// tolerance. Strata with zero prior mass (e.g. below the forced weight of
/// `p = 1` sites) are recorded but never evaluated.
pub struct StratifiedEstimator<'a> {
    prior: &'a WeightPrior,
    config: RareConfig,
}

impl<'a> StratifiedEstimator<'a> {
    /// An estimator over `prior` with the given tuning.
    pub fn new(prior: &'a WeightPrior, config: RareConfig) -> Self {
        StratifiedEstimator { prior, config }
    }

    /// The configured tuning knobs.
    pub fn config(&self) -> &RareConfig {
        &self.config
    }

    /// Runs the estimation loop. `evaluate(w)` must return the stratum
    /// verdict for weight `w`; it is only called for strata with positive
    /// prior mass.
    pub fn run(&self, mut evaluate: impl FnMut(usize) -> StratumEval) -> RareOutcome {
        let mut p_l = 0.0f64;
        let mut variance = 0.0f64;
        // Prior mass of strata that were visited but yielded no
        // information (sampled with zero shots): charged to truncation.
        let mut unresolved = 0.0f64;
        let mut strata = Vec::new();
        let mut total_shots = 0usize;
        let mut tail = 1.0f64;

        for w in 0..self.config.max_strata {
            let prior_w = self.prior.pmf(w);
            let stat = if prior_w > 0.0 {
                STRATA_EVALUATED.inc();
                match evaluate(w) {
                    StratumEval::Enumerated {
                        failure_probability,
                        configs: _,
                    } => {
                        p_l += prior_w * failure_probability;
                        StratumStat {
                            weight: w,
                            prior: prior_w,
                            failure_rate: failure_probability,
                            shots: 0,
                            failures: 0,
                            enumerated: true,
                        }
                    }
                    StratumEval::Sampled { failures, shots } => {
                        STRATUM_SHOTS.add(shots as u64);
                        total_shots += shots;
                        let f = if shots > 0 {
                            failures as f64 / shots as f64
                        } else {
                            // No shots, no information: the whole stratum
                            // is truncation error.
                            unresolved += prior_w;
                            0.0
                        };
                        if shots > 0 {
                            p_l += prior_w * f;
                            variance += prior_w * prior_w * f * (1.0 - f) / shots as f64;
                        }
                        StratumStat {
                            weight: w,
                            prior: prior_w,
                            failure_rate: f,
                            shots,
                            failures,
                            enumerated: false,
                        }
                    }
                }
            } else {
                // Zero prior mass (e.g. weights below the count of p = 1
                // sites, or above the number of sites): skip, keep going.
                StratumStat {
                    weight: w,
                    prior: 0.0,
                    failure_rate: 0.0,
                    shots: 0,
                    failures: 0,
                    enumerated: true,
                }
            };
            strata.push(stat);
            tail = self.prior.tail_above(w) + unresolved;
            if tail <= self.config.abs_tol.max(self.config.rel_tol * p_l) {
                let report = RareReport {
                    p_l,
                    sigma: variance.sqrt(),
                    truncation_bound: tail,
                    strata,
                    total_shots,
                    num_sites: self.prior.num_sites(),
                };
                return RareOutcome::Converged(report);
            }
        }

        RareOutcome::Unconverged(RareReport {
            p_l,
            sigma: variance.sqrt(),
            truncation_bound: tail,
            strata,
            total_shots,
            num_sites: self.prior.num_sites(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn choose(n: usize, k: usize) -> f64 {
        if k > n {
            return 0.0;
        }
        (0..k).fold(1.0, |acc, i| acc * (n - i) as f64 / (i + 1) as f64)
    }

    /// Deterministic uniform stream for sampler tests.
    fn lcg_stream(mut state: u64) -> impl FnMut() -> f64 {
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn binomial_prior_matches_closed_form() {
        let n = 12;
        let p = 0.07;
        let prior = WeightPrior::binomial(n, p);
        for w in 0..=n {
            let exact = choose(n, w) * p.powi(w as i32) * (1.0 - p).powi((n - w) as i32);
            assert!(
                (prior.pmf(w) - exact).abs() < 1e-14,
                "w={w}: {} vs {exact}",
                prior.pmf(w)
            );
        }
        assert_eq!(prior.pmf(n + 1), 0.0);
        assert_eq!(prior.num_sites(), n);
    }

    #[test]
    fn tail_is_suffix_sum_of_pmf() {
        let prior = WeightPrior::poisson_binomial(&[0.1, 0.02, 0.3, 0.0, 0.25]);
        for w in 0..=5 {
            let direct: f64 = (w + 1..=5).map(|j| prior.pmf(j)).sum();
            assert!((prior.tail_above(w) - direct).abs() < 1e-15);
        }
        assert_eq!(prior.tail_above(5), 0.0);
        assert_eq!(prior.tail_above(100), 0.0);
        // Total mass: pmf(0) + tail_above(0) complements to 1.
        assert!((prior.pmf(0) + prior.tail_above(0) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn degenerate_priors() {
        let zero = WeightPrior::binomial(10, 0.0);
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.tail_above(0), 0.0);

        let one = WeightPrior::binomial(4, 1.0);
        assert_eq!(one.pmf(4), 1.0);
        for w in 0..4 {
            assert_eq!(one.pmf(w), 0.0);
            assert_eq!(one.tail_above(w), 1.0);
        }
        assert_eq!(one.tail_above(4), 0.0);
    }

    #[test]
    fn conditional_sampler_matches_exact_conditionals() {
        // Two sites, weight 1: P(site 0 | W=1) has a closed form.
        let probs = [0.1, 0.3];
        let sampler = ConditionalSampler::new(&probs, 1);
        assert!(sampler.is_feasible());
        let p0 = 0.1 * 0.7 / (0.1 * 0.7 + 0.9 * 0.3);
        let mut u = lcg_stream(42);
        let mut out = Vec::new();
        let mut hits0 = 0usize;
        let trials = 200_000;
        for _ in 0..trials {
            sampler.sample_into(&mut u, &mut out);
            assert_eq!(out.len(), 1);
            if out[0] == 0 {
                hits0 += 1;
            }
        }
        let freq = hits0 as f64 / trials as f64;
        assert!(
            (freq - p0).abs() < 0.005,
            "P(site0|W=1): sampled {freq}, exact {p0}"
        );
    }

    #[test]
    fn conditional_sampler_handles_forced_sites() {
        // A p=1 site must appear in every subset.
        let probs = [0.2, 1.0, 0.2];
        let sampler = ConditionalSampler::new(&probs, 1);
        let mut u = lcg_stream(7);
        let mut out = Vec::new();
        for _ in 0..100 {
            sampler.sample_into(&mut u, &mut out);
            assert_eq!(out, vec![1]);
        }
        // Weight 0 with a forced site is infeasible.
        assert!(!ConditionalSampler::new(&probs, 0).is_feasible());
        // Weight above the number of triggerable sites is infeasible.
        assert!(!ConditionalSampler::new(&[0.5, 0.0], 2).is_feasible());
    }

    #[test]
    fn enumeration_counts_and_normalizes() {
        // 3 sites × 3 variants each, weight 2: C(3,2)·3² = 27 configs.
        let probs = [0.01, 0.02, 0.03];
        let configs = enumerate_configs(&probs, 2, 1_000, &|_| 3, &|_, _| 1.0 / 3.0).unwrap();
        assert_eq!(configs.len(), 27);
        let total: f64 = configs.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for c in &configs {
            assert_eq!(c.sites.len(), 2);
            assert!(c.weight > 0.0);
        }
        // Over budget: falls back to None.
        assert!(enumerate_configs(&probs, 2, 26, &|_| 3, &|_, _| 1.0 / 3.0).is_none());
    }

    #[test]
    fn enumeration_skips_zero_weight_variants_and_sites() {
        let probs = [0.1, 0.0, 0.1];
        // Site 0 has one effective variant of 3; site 2 has all 3.
        let vw = |i: usize, v: usize| -> f64 {
            if i == 0 {
                if v == 1 {
                    1.0
                } else {
                    0.0
                }
            } else {
                1.0 / 3.0
            }
        };
        let configs = enumerate_configs(&probs, 1, 100, &|_| 3, &vw).unwrap();
        // Weight-1: site 0 (1 variant) + site 2 (3 variants) = 4 configs.
        assert_eq!(configs.len(), 4);
        assert!(configs.iter().all(|c| c.sites[0].0 != 1));
    }

    #[test]
    fn enumerated_estimator_reproduces_analytic_rate() {
        // Failure iff weight ≥ 2: p_L = P(W ≥ 2) exactly.
        let prior = WeightPrior::binomial(8, 0.05);
        let expect = prior.tail_above(1);
        let config = RareConfig {
            max_strata: 9,
            rel_tol: 0.0,
            abs_tol: 1e-18,
            ..RareConfig::default()
        };
        let outcome = StratifiedEstimator::new(&prior, config).run(|w| StratumEval::Enumerated {
            failure_probability: if w >= 2 { 1.0 } else { 0.0 },
            configs: 1,
        });
        assert!(outcome.is_converged());
        let report = outcome.report();
        assert!(
            (report.p_l - expect).abs() < 1e-15,
            "{} vs {expect}",
            report.p_l
        );
        assert_eq!(report.sigma, 0.0);
        assert!(report.truncation_bound <= 1e-18);
        assert_eq!(report.equivalent_plain_shots(), f64::INFINITY);
    }

    #[test]
    fn sampled_strata_contribute_variance() {
        let prior = WeightPrior::binomial(10, 0.1);
        let config = RareConfig {
            max_strata: 3,
            rel_tol: 1.0,
            abs_tol: 0.0,
            ..RareConfig::default()
        };
        let outcome = StratifiedEstimator::new(&prior, config).run(|_| StratumEval::Sampled {
            failures: 25,
            shots: 100,
        });
        let report = outcome.report();
        let f = 0.25;
        let expect_var: f64 = (0..3)
            .map(|w| {
                let pw = prior.pmf(w);
                pw * pw * f * (1.0 - f) / 100.0
            })
            .sum();
        assert!((report.sigma - expect_var.sqrt()).abs() < 1e-15);
        assert_eq!(report.total_shots, 300);
        assert!(report.equivalent_plain_shots().is_finite());
    }

    #[test]
    fn zero_noise_converges_at_weight_zero() {
        let prior = WeightPrior::binomial(50, 0.0);
        let outcome = StratifiedEstimator::new(&prior, RareConfig::default()).run(|w| {
            assert_eq!(w, 0);
            StratumEval::Enumerated {
                failure_probability: 0.0,
                configs: 1,
            }
        });
        assert!(outcome.is_converged());
        let report = outcome.report();
        assert_eq!(report.p_l, 0.0);
        assert_eq!(report.truncation_bound, 0.0);
        assert_eq!(report.strata.len(), 1);
    }

    #[test]
    fn certain_noise_skips_zero_prior_strata() {
        // Every site fires: only the w = n stratum has mass.
        let prior = WeightPrior::binomial(3, 1.0);
        let mut evaluated = Vec::new();
        let outcome = StratifiedEstimator::new(&prior, RareConfig::default()).run(|w| {
            evaluated.push(w);
            StratumEval::Enumerated {
                failure_probability: 1.0,
                configs: 1,
            }
        });
        assert_eq!(evaluated, vec![3], "only the full-weight stratum has mass");
        assert!(outcome.is_converged());
        let report = outcome.report();
        assert_eq!(report.p_l, 1.0);
        assert_eq!(report.strata.len(), 4);
        assert!(report.strata[..3].iter().all(|s| s.prior == 0.0));
    }

    #[test]
    fn zero_strata_is_unconverged_with_full_truncation() {
        let prior = WeightPrior::binomial(5, 0.1);
        let config = RareConfig {
            max_strata: 0,
            ..RareConfig::default()
        };
        let outcome =
            StratifiedEstimator::new(&prior, config).run(|_| unreachable!("no strata requested"));
        assert!(!outcome.is_converged());
        let report = outcome.report();
        assert_eq!(report.p_l, 0.0);
        assert_eq!(report.truncation_bound, 1.0);
        assert!(report.strata.is_empty());
    }

    #[test]
    fn exhausted_strata_yield_unconverged() {
        let prior = WeightPrior::binomial(20, 0.3);
        let config = RareConfig {
            max_strata: 2,
            rel_tol: 0.0,
            abs_tol: 1e-12,
            ..RareConfig::default()
        };
        let outcome = StratifiedEstimator::new(&prior, config).run(|_| StratumEval::Sampled {
            failures: 0,
            shots: 10,
        });
        assert!(!outcome.is_converged());
        let report = outcome.report();
        assert!(report.truncation_bound > 1e-12);
        assert_eq!(report.strata.len(), 2);
    }

    #[test]
    fn zero_shot_strata_are_charged_to_truncation() {
        let prior = WeightPrior::binomial(4, 0.2);
        let config = RareConfig {
            max_strata: 5,
            rel_tol: 0.0,
            abs_tol: 0.0,
            ..RareConfig::default()
        };
        let outcome = StratifiedEstimator::new(&prior, config).run(|_| StratumEval::Sampled {
            failures: 0,
            shots: 0,
        });
        assert!(!outcome.is_converged());
        let report = outcome.report();
        // Every stratum unresolved: the bound is the entire prior mass.
        assert!(
            (report.truncation_bound - 1.0).abs() < 1e-12,
            "bound {}",
            report.truncation_bound
        );
    }

    #[test]
    fn per_round_conversion() {
        let report = RareReport {
            p_l: 1e-6,
            sigma: 1e-8,
            truncation_bound: 1e-9,
            strata: Vec::new(),
            total_shots: 0,
            num_sites: 10,
        };
        let per_round = report.per_round(5);
        assert!(per_round > 0.0 && per_round < report.p_l);
        assert!((1.0 - (1.0 - per_round).powi(5) - report.p_l).abs() < 1e-12);
        assert_eq!(report.per_round(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn prior_rejects_invalid_probability() {
        WeightPrior::poisson_binomial(&[0.5, 1.5]);
    }
}
