//! A minimal, dependency-free JSON value with a deterministic writer.
//!
//! The workspace's vendored serde speaks a binary format, not JSON, so the
//! wire layer hand-rolls the little JSON it needs. Two properties matter for
//! the serving contract and are guaranteed here:
//!
//! * **Deterministic output** — objects are [`BTreeMap`]s, so keys always
//!   serialize in sorted order, and floats print via `{:?}` (Rust's
//!   shortest-round-trip formatting). Rendering the same [`Json`] twice
//!   yields byte-identical text, which is what lets coalesced requests share
//!   one response buffer and lets tests compare responses byte for byte.
//! * **Bounded parsing** — the parser enforces a nesting-depth cap so a
//!   hostile frame cannot overflow the handler's stack.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction or exponent) that fits in `i64`.
    ///
    /// Kept separate from [`Json::Num`] so 64-bit seeds and shot counts
    /// round-trip exactly instead of saturating at 2^53.
    Int(i64),
    /// Any other number literal.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; sorted keys, duplicate keys rejected at parse time.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Borrows the object field `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders to the deterministic text form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Num(n) => write_f64(out, *n),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_f64(out: &mut String, n: f64) {
    if n.is_finite() {
        // {:?} is Rust's shortest round-trip form; always contains '.',
        // 'e', or "inf"/"NaN", so integers and floats stay distinguishable.
        out.push_str(&format!("{n:?}"));
    } else {
        // JSON has no Inf/NaN; the server never emits them (validation
        // rejects non-finite inputs), but render defensively as null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if map.insert(key, value).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: one following \uXXXX escape.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b).ok_or_else(|| self.err("invalid utf-8"))?;
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated unicode escape"));
            };
            let digit = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            code = code * 16 + u32::from(digit);
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

fn utf8_width(b: u8) -> Option<usize> {
    match b {
        0x00..=0x7F => Some(1),
        0xC2..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF4 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-7", "1.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.render(), text);
        }
    }

    #[test]
    fn object_keys_render_sorted() {
        let v = parse(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(v.render(), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn integers_keep_64_bit_precision() {
        let v = parse("9007199254740993").unwrap();
        assert_eq!(v, Json::Int(9007199254740993));
        assert_eq!(v.as_u64(), Some(9007199254740993));
    }

    #[test]
    fn floats_round_trip_shortest() {
        let v = parse("0.1").unwrap();
        assert_eq!(v.render(), "0.1");
        let v = parse("1e-10").unwrap();
        assert_eq!(v.as_f64(), Some(1e-10));
    }

    #[test]
    fn rejects_malformed_input() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"\\x\"",
            "{\"a\":1,\"a\":2}",
            "01a",
            "nul",
            "[1]]",
        ] {
            assert!(parse(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\n\t\"\\\u0041\u00e9""#).unwrap();
        assert_eq!(v, Json::Str("a\n\t\"\\Aé".to_string()));
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, Json::Str("😀".to_string()));
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"héllo — 😀\"").unwrap();
        assert_eq!(v, Json::Str("héllo — 😀".to_string()));
    }
}
