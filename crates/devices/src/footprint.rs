//! Footprint and control-overhead accounting.
//!
//! Modules inherit control overhead and physical footprint from the layers
//! below (paper §2); this module aggregates those quantities over a
//! [`DeviceGraph`].

use serde::{Deserialize, Serialize};

use crate::device::ControlOverhead;
use crate::topology::DeviceGraph;

/// Aggregate physical cost of a layout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LayoutCost {
    /// Total planar area (mm², summing device 2D footprints).
    pub area_mm2: f64,
    /// Total volume for 3D devices (mm³).
    pub volume_mm3: f64,
    /// Total control I/O lines.
    pub control: ControlOverhead,
    /// Number of devices requiring 2D/3D integration.
    pub three_d_devices: usize,
    /// Total qubit capacity.
    pub capacity: u32,
}

/// Computes the aggregate cost of a layout, accounting for per-instance
/// readout equipment (a readout resonator adds one readout line).
pub fn layout_cost(graph: &DeviceGraph) -> LayoutCost {
    let mut cost = LayoutCost::default();
    for (_, node) in graph.iter() {
        let f = &node.spec.footprint;
        cost.area_mm2 += f.area_mm2();
        if f.is_3d() {
            cost.volume_mm3 += f.x_mm * f.y_mm * f.z_mm;
            cost.three_d_devices += 1;
        }
        cost.control.charge_lines += node.spec.control.charge_lines;
        cost.control.flux_lines += node.spec.control.flux_lines;
        // Readout lines come from actual equipment, not the spec default:
        // DR4 removes readout from devices that do not need it.
        if node.readout_equipped {
            cost.control.readout_lines += 1;
        }
        cost.capacity += node.spec.capacity;
    }
    cost
}

/// Control-overhead comparison: lines needed for `n` qubits stored in
/// multimode resonators (capacity `modes`, one drive line each) versus `n`
/// individual transmons (one drive + one readout line each). Reproduces the
/// §3.1 observation that storage reduces control overhead.
pub fn control_savings(n_qubits: u32, modes: u32) -> (u32, u32) {
    assert!(modes > 0, "resonator must have at least one mode");
    let resonators = n_qubits.div_ceil(modes);
    // Each resonator needs one drive line plus its attached compute device
    // (one charge + one readout).
    let hetero = resonators * 3;
    let homo = n_qubits * 2;
    (hetero, homo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{fixed_frequency_qubit, multimode_resonator_3d};

    #[test]
    fn register_cell_cost() {
        let mut g = DeviceGraph::new();
        let c = g.add_device("c", fixed_frequency_qubit(), false);
        let s = g.add_device("s", multimode_resonator_3d(), false);
        g.connect(c, s);
        let cost = layout_cost(&g);
        assert_eq!(cost.area_mm2, 4.0 + 100.0 * 100.0);
        assert_eq!(cost.three_d_devices, 1);
        assert_eq!(cost.capacity, 11);
        // Compute spec asks for a readout line, but the instance is not
        // equipped: only the charge line counts.
        assert_eq!(cost.control.charge_lines, 1);
        assert_eq!(cost.control.readout_lines, 0);
    }

    #[test]
    fn readout_equipment_adds_line() {
        let mut g = DeviceGraph::new();
        g.add_device("c", fixed_frequency_qubit(), true);
        let cost = layout_cost(&g);
        assert_eq!(cost.control.readout_lines, 1);
    }

    #[test]
    fn storage_reduces_control_overhead() {
        let (het, hom) = control_savings(30, 10);
        assert_eq!(het, 9);
        assert_eq!(hom, 60);
        assert!(het < hom);
    }

    #[test]
    fn partial_resonator_rounds_up() {
        let (het, _) = control_savings(11, 10);
        assert_eq!(het, 6);
    }
}
