//! Machine-checkable design rules (paper §3.2, DR1–DR4).
//!
//! The paper abstracts physical constraints (footprint, coherence leakage
//! through couplings) into four empirically-determined rules for planar
//! devices. [`validate`] checks a [`DeviceGraph`] against all of them so
//! standard cells are correct by construction.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::device::DeviceRole;
use crate::topology::{DeviceGraph, DeviceId};

/// The four design rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignRule {
    /// DR1: compute devices connect to at most 4 other devices.
    Dr1ComputeFanout,
    /// DR2: storage devices connect to exactly 1 compute device.
    Dr2StorageSinglePort,
    /// DR3: device connectivity reflects intended use (no coupling budget
    /// overruns; every device is connected unless the graph has one device).
    Dr3ConnectivityBudget,
    /// DR4: readout-equipped compute devices are minimized — readout is only
    /// present where the cell declares it needs measurement capability.
    Dr4MinimalReadout,
}

impl fmt::Display for DesignRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DesignRule::Dr1ComputeFanout => "DR1 (compute fanout <= 4)",
            DesignRule::Dr2StorageSinglePort => "DR2 (storage has exactly 1 compute port)",
            DesignRule::Dr3ConnectivityBudget => "DR3 (connectivity reflects use)",
            DesignRule::Dr4MinimalReadout => "DR4 (minimal readout)",
        };
        write!(f, "{s}")
    }
}

/// A single rule violation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The rule violated.
    pub rule: DesignRule,
    /// The offending device, when the violation is attributable to one.
    /// `None` for whole-graph violations with no candidate device (e.g. a
    /// DR4 readout-count mismatch on a graph with no compute devices).
    pub device: Option<DeviceId>,
    /// Human-readable details.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.device {
            Some(device) => write!(f, "{}: device #{}: {}", self.rule, device.0, self.detail),
            None => write!(f, "{}: graph: {}", self.rule, self.detail),
        }
    }
}

/// Checks DR1: every compute device has degree ≤ 4.
pub fn check_dr1(graph: &DeviceGraph) -> Vec<Violation> {
    graph
        .iter()
        .filter(|(_, n)| n.spec.role == DeviceRole::Compute)
        .filter_map(|(id, n)| {
            let deg = graph.degree(id);
            (deg > 4).then(|| Violation {
                rule: DesignRule::Dr1ComputeFanout,
                device: Some(id),
                detail: format!("'{}' has {deg} couplings (max 4)", n.label),
            })
        })
        .collect()
}

/// Checks DR2: every storage device couples to exactly one device, and that
/// device is compute.
pub fn check_dr2(graph: &DeviceGraph) -> Vec<Violation> {
    let mut out = Vec::new();
    for (id, n) in graph.iter() {
        if n.spec.role != DeviceRole::Storage {
            continue;
        }
        let neighbors = graph.neighbors(id);
        if neighbors.len() != 1 {
            out.push(Violation {
                rule: DesignRule::Dr2StorageSinglePort,
                device: Some(id),
                detail: format!(
                    "'{}' has {} couplings (storage needs exactly 1)",
                    n.label,
                    neighbors.len()
                ),
            });
            continue;
        }
        let peer = graph.node(neighbors[0]);
        if peer.spec.role != DeviceRole::Compute {
            out.push(Violation {
                rule: DesignRule::Dr2StorageSinglePort,
                device: Some(id),
                detail: format!(
                    "'{}' couples to storage device '{}' instead of a compute device",
                    n.label, peer.label
                ),
            });
        }
    }
    out
}

/// Checks DR3: no device exceeds its specified coupling budget, and no
/// device is left unconnected (in graphs with more than one device).
pub fn check_dr3(graph: &DeviceGraph) -> Vec<Violation> {
    let mut out = Vec::new();
    for (id, n) in graph.iter() {
        let deg = graph.degree(id);
        if deg > n.spec.max_connectivity as usize {
            out.push(Violation {
                rule: DesignRule::Dr3ConnectivityBudget,
                device: Some(id),
                detail: format!(
                    "'{}' uses {deg} couplings but tolerates only {}",
                    n.label, n.spec.max_connectivity
                ),
            });
        }
        if deg == 0 && graph.num_devices() > 1 {
            out.push(Violation {
                rule: DesignRule::Dr3ConnectivityBudget,
                device: Some(id),
                detail: format!("'{}' is disconnected", n.label),
            });
        }
    }
    out
}

/// Checks DR4: the number of readout-equipped compute devices equals
/// `required_readouts` (the measurement capability the cell's operations
/// actually need), and storage devices carry no readout.
pub fn check_dr4(graph: &DeviceGraph, required_readouts: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut equipped = 0usize;
    for (id, n) in graph.iter() {
        if n.readout_equipped {
            if n.spec.role == DeviceRole::Storage {
                out.push(Violation {
                    rule: DesignRule::Dr4MinimalReadout,
                    device: Some(id),
                    detail: format!("storage device '{}' cannot carry readout", n.label),
                });
            } else {
                equipped += 1;
            }
        }
    }
    if equipped != required_readouts {
        // Attribute to the first compute device for a stable report; a
        // graph with no compute devices at all gets an explicit
        // graph-level attribution instead of blaming an arbitrary device.
        let device = graph.compute_devices().first().copied();
        let detail = if device.is_some() {
            format!(
                "{equipped} readout-equipped compute devices, but the cell needs exactly {required_readouts}"
            )
        } else {
            format!(
                "graph has no compute device, but the cell needs exactly {required_readouts} readout-equipped"
            )
        };
        out.push(Violation {
            rule: DesignRule::Dr4MinimalReadout,
            device,
            detail,
        });
    }
    out
}

/// Validates a graph against all four design rules.
///
/// # Errors
///
/// Returns every violation found (empty ⇒ the layout is rule-compliant).
pub fn validate(graph: &DeviceGraph, required_readouts: usize) -> Result<(), Vec<Violation>> {
    let mut v = check_dr1(graph);
    v.extend(check_dr2(graph));
    v.extend(check_dr3(graph));
    v.extend(check_dr4(graph, required_readouts));
    if v.is_empty() {
        Ok(())
    } else {
        Err(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{fixed_frequency_qubit, multimode_resonator_3d};

    #[test]
    fn valid_register_cell_passes() {
        let mut g = DeviceGraph::new();
        let c = g.add_device("c", fixed_frequency_qubit(), false);
        let s = g.add_device("s", multimode_resonator_3d(), false);
        g.connect(c, s);
        assert!(validate(&g, 0).is_ok());
    }

    #[test]
    fn dr1_flags_overfanned_compute() {
        let mut g = DeviceGraph::new();
        let hub = g.add_device("hub", fixed_frequency_qubit(), false);
        for i in 0..5 {
            let c = g.add_device(format!("c{i}"), fixed_frequency_qubit(), false);
            g.connect(hub, c);
        }
        let v = check_dr1(&g);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, DesignRule::Dr1ComputeFanout);
        assert_eq!(v[0].device, Some(hub));
    }

    #[test]
    fn dr2_flags_multiported_storage() {
        let mut g = DeviceGraph::new();
        let s = g.add_device("s", multimode_resonator_3d(), false);
        let c1 = g.add_device("c1", fixed_frequency_qubit(), false);
        let c2 = g.add_device("c2", fixed_frequency_qubit(), false);
        g.connect(s, c1);
        g.connect(s, c2);
        let v = check_dr2(&g);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].device, Some(s));
    }

    #[test]
    fn dr2_flags_storage_to_storage() {
        let mut g = DeviceGraph::new();
        let s1 = g.add_device("s1", multimode_resonator_3d(), false);
        let s2 = g.add_device("s2", multimode_resonator_3d(), false);
        g.connect(s1, s2);
        let v = check_dr2(&g);
        assert_eq!(v.len(), 2, "both storage devices are misconnected");
    }

    #[test]
    fn dr3_flags_budget_overrun_and_disconnection() {
        let mut g = DeviceGraph::new();
        let s = g.add_device("s", multimode_resonator_3d(), false);
        let c1 = g.add_device("c1", fixed_frequency_qubit(), false);
        let c2 = g.add_device("c2", fixed_frequency_qubit(), false);
        g.connect(s, c1); // storage budget is 1...
        g.connect(s, c2); // ...this exceeds it
        let v = check_dr3(&g);
        assert!(v.iter().any(|x| x.device == Some(s)));

        let mut g = DeviceGraph::new();
        let _ = g.add_device("a", fixed_frequency_qubit(), false);
        let _ = g.add_device("b", fixed_frequency_qubit(), false);
        let v = check_dr3(&g);
        assert_eq!(v.len(), 2, "both devices disconnected");
    }

    #[test]
    fn dr4_counts_readout_devices() {
        let mut g = DeviceGraph::new();
        let c1 = g.add_device("c1", fixed_frequency_qubit(), true);
        let c2 = g.add_device("c2", fixed_frequency_qubit(), false);
        g.connect(c1, c2);
        assert!(check_dr4(&g, 1).is_empty());
        assert_eq!(check_dr4(&g, 0).len(), 1);
        assert_eq!(check_dr4(&g, 2).len(), 1);
    }

    #[test]
    fn dr4_rejects_readout_on_storage() {
        let mut g = DeviceGraph::new();
        let c = g.add_device("c", fixed_frequency_qubit(), false);
        let s = g.add_device("s", multimode_resonator_3d(), true);
        g.connect(c, s);
        let v = check_dr4(&g, 0);
        assert!(v.iter().any(|x| x.device == Some(s)));
    }

    #[test]
    fn dr4_attributes_compute_free_graph_to_the_graph() {
        // A storage-only graph that still claims to need readout: there is
        // no compute device to blame, so the attribution must be explicit
        // (`None`), not an arbitrary DeviceId(0) that happens to be storage.
        let mut g = DeviceGraph::new();
        let s = g.add_device("s", multimode_resonator_3d(), false);
        let v = check_dr4(&g, 1);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, DesignRule::Dr4MinimalReadout);
        assert_eq!(v[0].device, None, "must not blame the storage device");
        assert_ne!(v[0].device, Some(s));
        assert!(v[0].detail.contains("no compute device"), "{}", v[0].detail);
        let msg = v[0].to_string();
        assert!(msg.contains("graph:"), "{msg}");

        // An empty graph needing readout is also a graph-level violation.
        let v = check_dr4(&DeviceGraph::new(), 2);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].device, None);
    }

    #[test]
    fn violation_display_is_informative() {
        let mut g = DeviceGraph::new();
        let s = g.add_device("lonely", multimode_resonator_3d(), false);
        let v = check_dr2(&g);
        let msg = v[0].to_string();
        assert!(msg.contains("DR2"));
        assert!(msg.contains("lonely"));
        let _ = s;
    }
}
