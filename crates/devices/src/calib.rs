//! Fleet calibration snapshots: measured per-qubit parameters as data.
//!
//! Every characterization in the workspace historically ran from one global
//! noise point (a catalog [`DeviceSpec`] per role). A real fleet is not that
//! uniform: each physical qubit has its own measured T1/T2, gate errors and
//! readout duration, refreshed by daily calibration. This module defines the
//! versioned JSON schema for such a snapshot and the mapper that folds the
//! measured values onto catalog specs as *per-device overrides*.
//!
//! Contract (DESIGN.md §5j):
//!
//! * **Strict parsing.** Unknown fields (at either nesting level), missing
//!   `version`, non-finite or out-of-range numbers, and unphysical `t1`/`t2`
//!   pairs are rejected at parse time with a path-qualified error. A
//!   snapshot that parses is safe to apply: [`CalibSnapshot::apply`] cannot
//!   produce an unphysical spec from a physical one.
//! * **Defaults by omission.** Every per-qubit field is optional; an omitted
//!   field means "keep the catalog value". `t1`/`t2` must be given together
//!   so the physicality check (`0 < t2 ≤ 2·t1`) is closed under override.
//! * **Deterministic round trip.** [`CalibSnapshot::to_json`] renders via
//!   the deterministic writer in [`crate::json`] (sorted keys, shortest
//!   round-trip floats), so parse → render → parse is the identity.
//! * **Override precedence.** A calibration override beats the sweep-axis
//!   value, which beats the catalog default. Overrides are keyed by the
//!   cell-layout node label (e.g. `"usc/ancilla"`, `"register/storage"`);
//!   labels that match no slot in a given cell are simply unused there.
//!
//! Units are SI throughout (seconds for times); the optional `"units"`
//! field must spell `"si"` when present.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;
use crate::json::{self, Json};

/// The only schema version this build reads and writes.
pub const CALIB_VERSION: i64 = 1;

/// Measured overrides for one physical qubit / device slot.
///
/// Every field is optional: `None` keeps the catalog value. Times are in
/// seconds; errors are average error probabilities in `[0, 1]`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CalibParams {
    /// Amplitude-damping time constant (seconds). Must come with [`t2`].
    ///
    /// [`t2`]: CalibParams::t2
    pub t1: Option<f64>,
    /// Dephasing time constant (seconds). Must come with [`t1`].
    ///
    /// [`t1`]: CalibParams::t1
    pub t2: Option<f64>,
    /// Average single-qubit gate error; applied only when the device
    /// offers a single-qubit gate.
    pub gate_1q_error: Option<f64>,
    /// Average two-qubit gate error; applied only when the device offers
    /// a two-qubit gate.
    pub gate_2q_error: Option<f64>,
    /// Average SWAP / load-store error.
    pub swap_error: Option<f64>,
    /// Measured readout duration (seconds); applied only when the device
    /// is readout-capable (an override never *grants* readout, which
    /// would change design-rule outcomes).
    pub readout_time: Option<f64>,
}

/// Field names accepted inside a per-qubit object, in schema order.
const PARAM_FIELDS: [&str; 6] = [
    "t1",
    "t2",
    "gate_1q_error",
    "gate_2q_error",
    "swap_error",
    "readout_time",
];

impl CalibParams {
    /// True when no field is overridden.
    pub fn is_empty(&self) -> bool {
        self.t1.is_none()
            && self.t2.is_none()
            && self.gate_1q_error.is_none()
            && self.gate_2q_error.is_none()
            && self.swap_error.is_none()
            && self.readout_time.is_none()
    }

    /// Folds the overrides onto `spec`, returning the calibrated copy.
    ///
    /// Untouched fields keep their catalog values bit for bit, so applying
    /// an empty override set is the identity.
    pub fn apply_to(&self, spec: &DeviceSpec) -> DeviceSpec {
        let mut out = spec.clone();
        if let (Some(t1), Some(t2)) = (self.t1, self.t2) {
            out.t1 = t1;
            out.t2 = t2;
        }
        if let (Some(error), Some(gate)) = (self.gate_1q_error, out.gate_1q.as_mut()) {
            gate.error = error;
        }
        if let (Some(error), Some(gate)) = (self.gate_2q_error, out.gate_2q.as_mut()) {
            gate.error = error;
        }
        if let Some(error) = self.swap_error {
            out.swap.error = error;
        }
        if let (Some(time), Some(readout)) = (self.readout_time, out.readout_time.as_mut()) {
            *readout = time;
        }
        out
    }

    fn to_json(&self) -> Json {
        let mut map = BTreeMap::new();
        for (name, value) in [
            ("t1", self.t1),
            ("t2", self.t2),
            ("gate_1q_error", self.gate_1q_error),
            ("gate_2q_error", self.gate_2q_error),
            ("swap_error", self.swap_error),
            ("readout_time", self.readout_time),
        ] {
            if let Some(value) = value {
                map.insert(name.to_string(), Json::Num(value));
            }
        }
        Json::Obj(map)
    }

    fn from_json(label: &str, v: &Json) -> Result<CalibParams, CalibError> {
        let Json::Obj(map) = v else {
            return Err(schema(format!("$.qubits.{label}"), "expected an object"));
        };
        for key in map.keys() {
            if !PARAM_FIELDS.contains(&key.as_str()) {
                return Err(schema(
                    format!("$.qubits.{label}"),
                    format!("unknown field `{key}`"),
                ));
            }
        }
        let field = |name: &str| -> Result<Option<f64>, CalibError> {
            let Some(v) = map.get(name) else {
                return Ok(None);
            };
            let path = || format!("$.qubits.{label}.{name}");
            let n = v
                .as_f64()
                .ok_or_else(|| schema(path(), "expected a finite number"))?;
            if !n.is_finite() {
                return Err(schema(path(), "expected a finite number"));
            }
            Ok(Some(n))
        };
        let positive = |name: &str| -> Result<Option<f64>, CalibError> {
            match field(name)? {
                Some(n) if n <= 0.0 => Err(schema(
                    format!("$.qubits.{label}.{name}"),
                    format!("must be > 0, got {n:?}"),
                )),
                other => Ok(other),
            }
        };
        let error_rate = |name: &str| -> Result<Option<f64>, CalibError> {
            match field(name)? {
                Some(n) if !(0.0..=1.0).contains(&n) => Err(schema(
                    format!("$.qubits.{label}.{name}"),
                    format!("must be in [0, 1], got {n:?}"),
                )),
                other => Ok(other),
            }
        };
        let params = CalibParams {
            t1: positive("t1")?,
            t2: positive("t2")?,
            gate_1q_error: error_rate("gate_1q_error")?,
            gate_2q_error: error_rate("gate_2q_error")?,
            swap_error: error_rate("swap_error")?,
            readout_time: positive("readout_time")?,
        };
        match (params.t1, params.t2) {
            (Some(t1), Some(t2)) => {
                // Same tolerance as `DeviceSpec::coherence_is_physical`.
                if t2 > 2.0 * t1 * (1.0 + 1e-12) {
                    return Err(schema(
                        format!("$.qubits.{label}"),
                        format!("unphysical coherence: t2 {t2:?} exceeds 2·t1 ({t1:?})"),
                    ));
                }
            }
            (None, None) => {}
            _ => {
                return Err(schema(
                    format!("$.qubits.{label}"),
                    "t1 and t2 must be provided together",
                ));
            }
        }
        Ok(params)
    }
}

/// One dated calibration snapshot for a named fleet device.
///
/// `qubits` maps cell-layout node labels (e.g. `"usc/ancilla"`) to measured
/// overrides. The map is a [`BTreeMap`], so serialization — both the JSON
/// form and the binary serde form used in cache keys — is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CalibSnapshot {
    /// Fleet device this snapshot was measured on (free-form identifier).
    pub device: String,
    /// When the calibration was taken (free-form timestamp; metadata only,
    /// never part of cache keys).
    pub taken_at: String,
    /// Per-slot measured overrides, keyed by cell-layout node label.
    pub qubits: BTreeMap<String, CalibParams>,
}

impl CalibSnapshot {
    /// Parses a snapshot from JSON text, strictly.
    pub fn parse(text: &str) -> Result<CalibSnapshot, CalibError> {
        CalibSnapshot::from_json(&json::parse(text).map_err(CalibError::Json)?)
    }

    /// Builds a snapshot from a parsed JSON value, strictly: unknown
    /// fields, a missing or unsupported `version`, wrong units, and any
    /// non-finite / out-of-range number are errors.
    pub fn from_json(v: &Json) -> Result<CalibSnapshot, CalibError> {
        let Json::Obj(map) = v else {
            return Err(schema("$", "expected an object"));
        };
        for key in map.keys() {
            if !matches!(
                key.as_str(),
                "version" | "device" | "taken_at" | "units" | "qubits"
            ) {
                return Err(schema("$", format!("unknown field `{key}`")));
            }
        }
        match map.get("version") {
            Some(Json::Int(v)) if *v == CALIB_VERSION => {}
            Some(other) => {
                return Err(schema(
                    "$.version",
                    format!("unsupported version {other}, expected {CALIB_VERSION}"),
                ));
            }
            None => return Err(schema("$.version", "missing required field")),
        }
        if let Some(units) = map.get("units") {
            match units.as_str() {
                Some("si") => {}
                _ => return Err(schema("$.units", "expected \"si\"")),
            }
        }
        let device = match map.get("device") {
            Some(Json::Str(s)) => s.clone(),
            Some(_) => return Err(schema("$.device", "expected a string")),
            None => return Err(schema("$.device", "missing required field")),
        };
        let taken_at = match map.get("taken_at") {
            Some(Json::Str(s)) => s.clone(),
            Some(_) => return Err(schema("$.taken_at", "expected a string")),
            None => String::new(),
        };
        let mut qubits = BTreeMap::new();
        match map.get("qubits") {
            Some(Json::Obj(entries)) => {
                for (label, params) in entries {
                    qubits.insert(label.clone(), CalibParams::from_json(label, params)?);
                }
            }
            Some(_) => return Err(schema("$.qubits", "expected an object")),
            None => return Err(schema("$.qubits", "missing required field")),
        }
        Ok(CalibSnapshot {
            device,
            taken_at,
            qubits,
        })
    }

    /// Renders the canonical JSON form; `parse(to_json().render())` is the
    /// identity.
    pub fn to_json(&self) -> Json {
        let qubits = self
            .qubits
            .iter()
            .map(|(label, params)| (label.clone(), params.to_json()))
            .collect();
        Json::obj([
            ("version", Json::Int(CALIB_VERSION)),
            ("device", Json::Str(self.device.clone())),
            ("taken_at", Json::Str(self.taken_at.clone())),
            ("units", Json::Str("si".to_string())),
            ("qubits", Json::Obj(qubits)),
        ])
    }

    /// The overrides recorded for a layout label, if any.
    pub fn overrides_for(&self, label: &str) -> Option<&CalibParams> {
        self.qubits.get(label)
    }

    /// Calibrates `spec` for the slot labelled `label`: folds that label's
    /// overrides onto it, or returns it unchanged (bit for bit) when the
    /// snapshot records nothing for the label.
    pub fn apply(&self, label: &str, spec: &DeviceSpec) -> DeviceSpec {
        match self.qubits.get(label) {
            Some(params) => params.apply_to(spec),
            None => spec.clone(),
        }
    }

    /// True when no label carries any override: applying the snapshot is
    /// the identity on every spec.
    pub fn is_empty(&self) -> bool {
        self.qubits.values().all(CalibParams::is_empty)
    }
}

fn schema(path: impl Into<String>, message: impl Into<String>) -> CalibError {
    CalibError::Schema {
        path: path.into(),
        message: message.into(),
    }
}

/// Why a calibration snapshot was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum CalibError {
    /// The text was not valid JSON.
    Json(json::ParseError),
    /// The JSON was well-formed but violated the schema.
    Schema {
        /// JSONPath-style location of the offending value.
        path: String,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for CalibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibError::Json(e) => write!(f, "invalid JSON: {e}"),
            CalibError::Schema { path, message } => {
                write!(f, "invalid calibration snapshot at {path}: {message}")
            }
        }
    }
}

impl std::error::Error for CalibError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn fixture_text() -> String {
        r#"{
            "version": 1,
            "device": "fleet-east-7",
            "taken_at": "2026-08-08T06:00:00Z",
            "units": "si",
            "qubits": {
                "usc/ancilla": {"t1": 2.1e-4, "t2": 1.6e-4, "gate_2q_error": 0.004},
                "register/storage": {"t1": 0.012, "t2": 0.009, "swap_error": 0.002},
                "parcheck/b": {"readout_time": 8.4e-7}
            }
        }"#
        .to_string()
    }

    #[test]
    fn parses_and_round_trips_the_fixture() {
        let snap = CalibSnapshot::parse(&fixture_text()).unwrap();
        assert_eq!(snap.device, "fleet-east-7");
        assert_eq!(snap.qubits.len(), 3);
        let rendered = snap.to_json().render();
        let again = CalibSnapshot::parse(&rendered).unwrap();
        assert_eq!(snap, again);
        assert_eq!(again.to_json().render(), rendered);
    }

    #[test]
    fn apply_overrides_only_what_is_measured() {
        let snap = CalibSnapshot::parse(&fixture_text()).unwrap();
        let base = catalog::fixed_frequency_qubit();
        let calibrated = snap.apply("usc/ancilla", &base);
        assert_eq!(calibrated.t1, 2.1e-4);
        assert_eq!(calibrated.t2, 1.6e-4);
        assert_eq!(calibrated.gate_2q.unwrap().error, 0.004);
        // Untouched fields keep catalog values bit for bit.
        assert_eq!(calibrated.gate_1q, base.gate_1q);
        assert_eq!(calibrated.swap, base.swap);
        assert_eq!(calibrated.readout_time, base.readout_time);
        // Unknown label: identity.
        assert_eq!(snap.apply("no/such/slot", &base), base);
        assert!(calibrated.coherence_is_physical());
    }

    #[test]
    fn readout_override_never_grants_readout() {
        let mut snap = CalibSnapshot::default();
        snap.qubits.insert(
            "register/storage".to_string(),
            CalibParams {
                readout_time: Some(1e-6),
                ..CalibParams::default()
            },
        );
        let storage = catalog::multimode_resonator_3d();
        assert!(storage.readout_time.is_none());
        let calibrated = snap.apply("register/storage", &storage);
        assert!(calibrated.readout_time.is_none());
    }

    #[test]
    fn rejects_unknown_fields_at_both_levels() {
        let top = r#"{"version":1,"device":"d","qubits":{},"surprise":true}"#;
        assert!(matches!(
            CalibSnapshot::parse(top),
            Err(CalibError::Schema { path, .. }) if path == "$"
        ));
        let nested = r#"{"version":1,"device":"d","qubits":{"q":{"t_one":1.0}}}"#;
        assert!(matches!(
            CalibSnapshot::parse(nested),
            Err(CalibError::Schema { path, .. }) if path == "$.qubits.q"
        ));
    }

    #[test]
    fn rejects_bad_numbers_and_versions() {
        for (case, text) in [
            (
                "negative t1",
                r#"{"version":1,"device":"d","qubits":{"q":{"t1":-1.0,"t2":1.0}}}"#,
            ),
            (
                "zero t2",
                r#"{"version":1,"device":"d","qubits":{"q":{"t1":1.0,"t2":0}}}"#,
            ),
            (
                "error > 1",
                r#"{"version":1,"device":"d","qubits":{"q":{"swap_error":1.5}}}"#,
            ),
            (
                "negative error",
                r#"{"version":1,"device":"d","qubits":{"q":{"swap_error":-0.1}}}"#,
            ),
            (
                "NaN literal",
                r#"{"version":1,"device":"d","qubits":{"q":{"t1":NaN,"t2":1.0}}}"#,
            ),
            (
                "Inf literal",
                r#"{"version":1,"device":"d","qubits":{"q":{"t1":1e999,"t2":1.0}}}"#,
            ),
            (
                "string number",
                r#"{"version":1,"device":"d","qubits":{"q":{"t1":"0.1","t2":1.0}}}"#,
            ),
            (
                "t1 without t2",
                r#"{"version":1,"device":"d","qubits":{"q":{"t1":1.0}}}"#,
            ),
            (
                "unphysical t2",
                r#"{"version":1,"device":"d","qubits":{"q":{"t1":1.0,"t2":2.1}}}"#,
            ),
            ("missing version", r#"{"device":"d","qubits":{}}"#),
            ("wrong version", r#"{"version":2,"device":"d","qubits":{}}"#),
            (
                "float version",
                r#"{"version":1.0,"device":"d","qubits":{}}"#,
            ),
            (
                "bad units",
                r#"{"version":1,"device":"d","units":"ns","qubits":{}}"#,
            ),
            ("missing qubits", r#"{"version":1,"device":"d"}"#),
            ("missing device", r#"{"version":1,"qubits":{}}"#),
        ] {
            assert!(CalibSnapshot::parse(text).is_err(), "should reject {case}");
        }
    }

    #[test]
    fn binary_serde_round_trips() {
        let snap = CalibSnapshot::parse(&fixture_text()).unwrap();
        let bytes = serde::to_bytes(&snap);
        let back: CalibSnapshot = serde::from_bytes(&bytes).unwrap();
        assert_eq!(snap, back);
    }

    mod props {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;

        fn label() -> impl Strategy<Value = String> {
            prop_oneof![
                Just("usc/ancilla".to_string()),
                Just("usc/s0".to_string()),
                Just("usc/c1".to_string()),
                Just("register/compute".to_string()),
                Just("register/storage".to_string()),
                Just("parcheck/a".to_string()),
                Just("parcheck/b".to_string()),
                Just("seqop/cp".to_string()),
            ]
        }

        /// Optional-value combinator (the vendored proptest has no
        /// `option::of`).
        fn opt<S>(s: S) -> impl Strategy<Value = Option<S::Value>>
        where
            S: Strategy + 'static,
        {
            (0u32..2, s).prop_map(|(tag, v)| (tag == 1).then_some(v))
        }

        fn params() -> impl Strategy<Value = CalibParams> {
            (
                opt((1e-6f64..1.0, 0.05f64..=2.0)),
                opt(0.0f64..=1.0),
                opt(0.0f64..=1.0),
                opt(0.0f64..=1.0),
                opt(1e-9f64..1e-3),
            )
                .prop_map(|(coherence, g1, g2, sw, ro)| {
                    let (t1, t2) = match coherence {
                        // ratio ≤ 2.0 keeps t2 ≤ 2·t1 exactly.
                        Some((t1, ratio)) => (Some(t1), Some(t1 * ratio)),
                        None => (None, None),
                    };
                    CalibParams {
                        t1,
                        t2,
                        gate_1q_error: g1,
                        gate_2q_error: g2,
                        swap_error: sw,
                        readout_time: ro,
                    }
                })
        }

        fn snapshot() -> impl Strategy<Value = CalibSnapshot> {
            (
                prop_oneof![
                    Just("fleet-east-7".to_string()),
                    Just("fleet-west-2".to_string()),
                    Just("rig-a".to_string()),
                ],
                prop_oneof![
                    Just(String::new()),
                    Just("2026-08-08T06:00:00Z".to_string()),
                ],
                vec((label(), params()), 0..6),
            )
                .prop_map(|(device, taken_at, entries)| CalibSnapshot {
                    device,
                    taken_at,
                    qubits: entries.into_iter().collect(),
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// parse → render → parse is the identity, and rendering is a
            /// fixpoint (canonical form renders to itself).
            fn json_round_trip_is_idempotent(snap in snapshot()) {
                let rendered = snap.to_json().render();
                let parsed = CalibSnapshot::parse(&rendered).unwrap();
                prop_assert_eq!(&parsed, &snap);
                prop_assert_eq!(parsed.to_json().render(), rendered);
            }

            /// The binary serde form (used inside cache keys) round-trips.
            fn binary_round_trip(snap in snapshot()) {
                let bytes = serde::to_bytes(&snap);
                let back: CalibSnapshot = serde::from_bytes(&bytes).unwrap();
                prop_assert_eq!(back, snap);
            }

            /// Corrupting any one numeric field to a non-finite or
            /// out-of-range value makes the whole snapshot unparseable.
            fn corrupted_fields_are_rejected(
                snap in snapshot(),
                field in 0usize..6,
                bad in prop_oneof![
                    Just("-1.0"), Just("NaN"), Just("Infinity"),
                    Just("1e999"), Just("null"), Just("\"0.1\""),
                ],
            ) {
                let name = super::PARAM_FIELDS[field];
                let mut v = snap.to_json();
                let Json::Obj(map) = &mut v else { unreachable!() };
                let Some(Json::Obj(qubits)) = map.get_mut("qubits") else {
                    unreachable!()
                };
                qubits.insert(
                    "injected/slot".to_string(),
                    json::parse(&format!("{{\"{name}\":0.5}}")).unwrap(),
                );
                let good = v.render();
                prop_assert!(CalibSnapshot::parse(&good).is_err() == (name == "t1" || name == "t2"),
                    "lone t1/t2 must be rejected, everything else accepted");
                let bad_text = good.replace(&format!("\"{name}\":0.5"), &format!("\"{name}\":{bad}"));
                prop_assert!(CalibSnapshot::parse(&bad_text).is_err(),
                    "should reject {}={}", name, bad);
            }

            /// Applying an effectively-empty snapshot is the identity on
            /// every catalog spec.
            fn empty_snapshot_apply_is_identity(label in label()) {
                let snap = CalibSnapshot::default();
                prop_assert!(snap.is_empty());
                for spec in [
                    catalog::fixed_frequency_qubit(),
                    catalog::flux_tunable_qubit(),
                    catalog::multimode_resonator_3d(),
                ] {
                    prop_assert_eq!(snap.apply(&label, &spec), spec);
                }
            }
        }
    }
}
