//! Superconducting device specifications.
//!
//! A [`DeviceSpec`] captures the properties Table 1 of the paper assigns to
//! each near-term superconducting device: coherence times, readout, gate
//! set, connectivity budget, control overhead, and physical footprint.

use serde::{Deserialize, Serialize};

/// The physical family a device belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Fixed-frequency planar qubit (e.g. transmon).
    FixedFrequencyQubit,
    /// Flux-tunable planar qubit (e.g. fluxonium).
    FluxTunableQubit,
    /// Single-mode 3D cavity memory.
    Memory3D,
    /// 3D multimode resonator.
    MultimodeResonator3D,
    /// Projected on-chip multimode resonator.
    OnChipMultimodeResonator,
    /// A user-defined device.
    Custom,
}

/// The architectural role a device plays in a heterogeneous design (§2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceRole {
    /// Fast, high-connectivity gate execution; single-qubit capacity.
    Compute,
    /// Long-lived, low-connectivity multi-qubit storage.
    Storage,
}

/// The gate families a device offers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateSet {
    /// Arbitrary single- and two-qubit gates.
    Arbitrary,
    /// Only SWAP-style load/store with the attached compute device.
    SwapOnly,
}

/// Duration and average error of one gate family.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GateSpec {
    /// Gate duration in seconds.
    pub time: f64,
    /// Average gate error probability.
    pub error: f64,
}

impl GateSpec {
    /// Creates a gate spec.
    ///
    /// # Panics
    ///
    /// Panics if the duration is negative or the error is outside `[0, 1]`.
    pub fn new(time: f64, error: f64) -> Self {
        assert!(time >= 0.0 && time.is_finite(), "invalid gate time {time}");
        assert!((0.0..=1.0).contains(&error), "invalid gate error {error}");
        GateSpec { time, error }
    }
}

/// Extra I/O lines required to operate a device (Table 1 "control
/// overhead").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ControlOverhead {
    /// Charge (microwave drive) lines.
    pub charge_lines: u32,
    /// Flux bias lines.
    pub flux_lines: u32,
    /// Readout lines.
    pub readout_lines: u32,
}

impl ControlOverhead {
    /// Total line count.
    pub fn total(&self) -> u32 {
        self.charge_lines + self.flux_lines + self.readout_lines
    }
}

/// Physical footprint in millimetres. Planar devices have `z = 0`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Footprint {
    /// Extent along x (mm).
    pub x_mm: f64,
    /// Extent along y (mm).
    pub y_mm: f64,
    /// Extent along z (mm); zero for planar devices.
    pub z_mm: f64,
}

impl Footprint {
    /// Planar footprint.
    pub fn planar(x_mm: f64, y_mm: f64) -> Self {
        Footprint {
            x_mm,
            y_mm,
            z_mm: 0.0,
        }
    }

    /// 2D area (mm²).
    pub fn area_mm2(&self) -> f64 {
        self.x_mm * self.y_mm
    }

    /// True when 2D/3D integration is required.
    pub fn is_3d(&self) -> bool {
        self.z_mm > 0.0
    }
}

/// A full device specification (one row of Table 1).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Display name.
    pub name: String,
    /// Device family.
    pub kind: DeviceKind,
    /// Architectural role (compute vs storage).
    pub role: DeviceRole,
    /// Amplitude-damping time constant (seconds).
    pub t1: f64,
    /// Dephasing time constant (seconds).
    pub t2: f64,
    /// Readout duration, if the device supports direct readout.
    pub readout_time: Option<f64>,
    /// Offered gate families.
    pub gate_set: GateSet,
    /// Single-qubit gate (compute devices).
    pub gate_1q: Option<GateSpec>,
    /// Two-qubit gate (compute devices).
    pub gate_2q: Option<GateSpec>,
    /// SWAP / load-store gate (storage devices; compute devices use
    /// `gate_2q`).
    pub swap: GateSpec,
    /// Maximum number of couplings the device tolerates.
    pub max_connectivity: u32,
    /// Qubit capacity (modes); 1 for qubits, >1 for multimode resonators.
    pub capacity: u32,
    /// Control I/O overhead.
    pub control: ControlOverhead,
    /// Physical footprint.
    pub footprint: Footprint,
    /// Free-form notes (e.g. integration caveats).
    pub notes: String,
}

impl DeviceSpec {
    /// True when T1/T2 are physical (`0 < T2 ≤ 2·T1`).
    pub fn coherence_is_physical(&self) -> bool {
        self.t1 > 0.0 && self.t2 > 0.0 && self.t2 <= 2.0 * self.t1 * (1.0 + 1e-12)
    }

    /// True when the device can be read out directly.
    pub fn has_readout(&self) -> bool {
        self.readout_time.is_some()
    }

    /// Returns a copy with scaled coherence times (used in design-space
    /// sweeps over `T_S` / `T_C`).
    pub fn with_coherence(&self, t1: f64, t2: f64) -> DeviceSpec {
        let mut out = self.clone();
        out.t1 = t1;
        out.t2 = t2;
        out
    }

    /// Returns a copy renamed (useful when a sweep instantiates variants).
    pub fn renamed(&self, name: impl Into<String>) -> DeviceSpec {
        let mut out = self.clone();
        out.name = name.into();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec {
            name: "test".into(),
            kind: DeviceKind::Custom,
            role: DeviceRole::Compute,
            t1: 300e-6,
            t2: 550e-6,
            readout_time: Some(1e-6),
            gate_set: GateSet::Arbitrary,
            gate_1q: Some(GateSpec::new(40e-9, 1e-3)),
            gate_2q: Some(GateSpec::new(100e-9, 1e-3)),
            swap: GateSpec::new(100e-9, 1e-3),
            max_connectivity: 4,
            capacity: 1,
            control: ControlOverhead {
                charge_lines: 1,
                flux_lines: 0,
                readout_lines: 1,
            },
            footprint: Footprint::planar(2.0, 2.0),
            notes: String::new(),
        }
    }

    #[test]
    fn coherence_check() {
        assert!(spec().coherence_is_physical());
        let bad = spec().with_coherence(100e-6, 250e-6);
        assert!(!bad.coherence_is_physical());
    }

    #[test]
    fn footprint_math() {
        let f = Footprint::planar(2.0, 2.0);
        assert_eq!(f.area_mm2(), 4.0);
        assert!(!f.is_3d());
        let c = Footprint {
            x_mm: 100.0,
            y_mm: 100.0,
            z_mm: 10.0,
        };
        assert!(c.is_3d());
    }

    #[test]
    fn control_overhead_total() {
        let c = ControlOverhead {
            charge_lines: 1,
            flux_lines: 1,
            readout_lines: 1,
        };
        assert_eq!(c.total(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid gate error")]
    fn gate_spec_validates_error() {
        GateSpec::new(1e-7, 1.5);
    }

    #[test]
    fn renamed_and_scaled_copies() {
        let s = spec().renamed("variant").with_coherence(1e-3, 1e-3);
        assert_eq!(s.name, "variant");
        assert_eq!(s.t1, 1e-3);
    }
}
