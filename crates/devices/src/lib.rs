//! # hetarch-devices
//!
//! Superconducting device catalog, symbolic layouts and machine-checked
//! design rules for the HetArch workspace.
//!
//! This crate implements paper §3.1 (Table 1, the device inventory) and the
//! design-rule half of §3.2 (DR1–DR4): device specifications with coherence,
//! gates, connectivity budgets, control overhead and footprint; the
//! [`topology::DeviceGraph`] type for symbolic cell layouts; and the
//! [`rules::validate`] checker that makes standard cells rule-compliant by
//! construction.
//!
//! # Example
//!
//! ```
//! use hetarch_devices::catalog::{fixed_frequency_qubit, multimode_resonator_3d};
//! use hetarch_devices::topology::DeviceGraph;
//! use hetarch_devices::rules::validate;
//!
//! // A Register cell layout: one storage device, one compute device.
//! let mut g = DeviceGraph::new();
//! let c = g.add_device("compute", fixed_frequency_qubit(), false);
//! let s = g.add_device("storage", multimode_resonator_3d(), false);
//! g.connect(c, s);
//! assert!(validate(&g, 0).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
pub mod catalog;
pub mod device;
pub mod footprint;
pub mod json;
pub mod rules;
pub mod topology;

pub use calib::{CalibError, CalibParams, CalibSnapshot};
pub use catalog::catalog;
pub use device::{DeviceKind, DeviceRole, DeviceSpec, Footprint, GateSet, GateSpec};
pub use rules::{validate, DesignRule, Violation};
pub use topology::{DeviceGraph, DeviceId};
