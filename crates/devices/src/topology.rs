//! Device graphs: the symbolic physical layout of a standard cell or module.
//!
//! A [`DeviceGraph`] holds device instances and their couplings. It is the
//! object the design rules (paper §3.2) are checked against, and the base
//! layer cells build on.

use serde::{Deserialize, Serialize};

use crate::device::{DeviceRole, DeviceSpec};

/// Handle to a device instance within a [`DeviceGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

/// One placed device.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceNode {
    /// Instance label (unique within a graph by convention, not enforced).
    pub label: String,
    /// The device specification.
    pub spec: DeviceSpec,
    /// Whether this instance is equipped with a readout resonator. Only
    /// meaningful for compute devices; adding readout costs coherence and
    /// I/O, so design rule DR4 minimizes it.
    pub readout_equipped: bool,
}

/// A symbolic physical layout: devices and couplings.
///
/// # Examples
///
/// ```
/// use hetarch_devices::catalog::{fixed_frequency_qubit, multimode_resonator_3d};
/// use hetarch_devices::topology::DeviceGraph;
///
/// let mut g = DeviceGraph::new();
/// let c = g.add_device("c0", fixed_frequency_qubit(), true);
/// let s = g.add_device("s0", multimode_resonator_3d(), false);
/// g.connect(c, s);
/// assert_eq!(g.degree(c), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceGraph {
    nodes: Vec<DeviceNode>,
    edges: Vec<(DeviceId, DeviceId)>,
}

impl DeviceGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DeviceGraph::default()
    }

    /// Adds a device instance, returning its handle.
    pub fn add_device(
        &mut self,
        label: impl Into<String>,
        spec: DeviceSpec,
        readout_equipped: bool,
    ) -> DeviceId {
        self.nodes.push(DeviceNode {
            label: label.into(),
            spec,
            readout_equipped,
        });
        DeviceId(self.nodes.len() as u32 - 1)
    }

    /// Couples two devices.
    ///
    /// # Panics
    ///
    /// Panics on self-coupling, unknown ids, or duplicate edges.
    pub fn connect(&mut self, a: DeviceId, b: DeviceId) {
        assert_ne!(a, b, "cannot couple a device to itself");
        assert!(
            (a.0 as usize) < self.nodes.len() && (b.0 as usize) < self.nodes.len(),
            "unknown device id"
        );
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        assert!(
            !self.edges.contains(&(a, b)),
            "devices {} and {} are already coupled",
            self.node(a).label,
            self.node(b).label
        );
        self.edges.push((a, b));
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.nodes.len()
    }

    /// Device node by id.
    pub fn node(&self, id: DeviceId) -> &DeviceNode {
        &self.nodes[id.0 as usize]
    }

    /// All device ids.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.nodes.len() as u32).map(DeviceId)
    }

    /// All nodes with ids.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, &DeviceNode)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (DeviceId(i as u32), n))
    }

    /// Coupling list.
    pub fn edges(&self) -> &[(DeviceId, DeviceId)] {
        &self.edges
    }

    /// Degree (number of couplings) of a device.
    pub fn degree(&self, id: DeviceId) -> usize {
        self.edges
            .iter()
            .filter(|(a, b)| *a == id || *b == id)
            .count()
    }

    /// Neighbors of a device.
    pub fn neighbors(&self, id: DeviceId) -> Vec<DeviceId> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == id {
                    Some(b)
                } else if b == id {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Ids of all compute devices.
    pub fn compute_devices(&self) -> Vec<DeviceId> {
        self.iter()
            .filter(|(_, n)| n.spec.role == DeviceRole::Compute)
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all storage devices.
    pub fn storage_devices(&self) -> Vec<DeviceId> {
        self.iter()
            .filter(|(_, n)| n.spec.role == DeviceRole::Storage)
            .map(|(id, _)| id)
            .collect()
    }

    /// Total qubit capacity (sum of device capacities).
    pub fn total_capacity(&self) -> u32 {
        self.nodes.iter().map(|n| n.spec.capacity).sum()
    }

    /// Merges `other` into `self`, returning the id offset applied to
    /// `other`'s devices (its `DeviceId(k)` becomes `DeviceId(k + offset)`).
    pub fn merge(&mut self, other: &DeviceGraph) -> u32 {
        let offset = self.nodes.len() as u32;
        self.nodes.extend(other.nodes.iter().cloned());
        for &(a, b) in &other.edges {
            self.edges
                .push((DeviceId(a.0 + offset), DeviceId(b.0 + offset)));
        }
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{fixed_frequency_qubit, multimode_resonator_3d};

    fn register_like() -> (DeviceGraph, DeviceId, DeviceId) {
        let mut g = DeviceGraph::new();
        let c = g.add_device("c", fixed_frequency_qubit(), false);
        let s = g.add_device("s", multimode_resonator_3d(), false);
        g.connect(c, s);
        (g, c, s)
    }

    #[test]
    fn build_and_query() {
        let (g, c, s) = register_like();
        assert_eq!(g.num_devices(), 2);
        assert_eq!(g.degree(c), 1);
        assert_eq!(g.neighbors(s), vec![c]);
        assert_eq!(g.compute_devices(), vec![c]);
        assert_eq!(g.storage_devices(), vec![s]);
        assert_eq!(g.total_capacity(), 11);
    }

    #[test]
    #[should_panic(expected = "already coupled")]
    fn duplicate_edge_panics() {
        let (mut g, c, s) = register_like();
        g.connect(s, c);
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn self_loop_panics() {
        let (mut g, c, _) = register_like();
        g.connect(c, c);
    }

    #[test]
    fn merge_offsets_ids() {
        let (mut g, _, _) = register_like();
        let (h, _, _) = register_like();
        let off = g.merge(&h);
        assert_eq!(off, 2);
        assert_eq!(g.num_devices(), 4);
        assert_eq!(g.edges().len(), 2);
        assert_eq!(g.degree(DeviceId(2)), 1);
    }
}
