//! The near-term superconducting device catalog (paper Table 1).
//!
//! Values are the paper's estimates from the cited experimental literature;
//! they represent best observed properties, not at-scale demonstrations.

use crate::device::{
    ControlOverhead, DeviceKind, DeviceRole, DeviceSpec, Footprint, GateSet, GateSpec,
};

/// Fixed-frequency planar qubit (e.g. transmon): `T1 = 300 µs`,
/// `T2 = 550 µs`, 1 µs readout, arbitrary 1Q/2Q gates at `1e-3` (100 ns),
/// connectivity 4.
pub fn fixed_frequency_qubit() -> DeviceSpec {
    DeviceSpec {
        name: "Fixed-frequency qubit".into(),
        kind: DeviceKind::FixedFrequencyQubit,
        role: DeviceRole::Compute,
        t1: 300e-6,
        t2: 550e-6,
        readout_time: Some(1e-6),
        gate_set: GateSet::Arbitrary,
        gate_1q: Some(GateSpec::new(40e-9, 1e-3)),
        gate_2q: Some(GateSpec::new(100e-9, 1e-3)),
        swap: GateSpec::new(100e-9, 1e-3),
        max_connectivity: 4,
        capacity: 1,
        control: ControlOverhead {
            charge_lines: 1,
            flux_lines: 0,
            readout_lines: 1,
        },
        footprint: Footprint::planar(2.0, 2.0),
        notes: "e.g. transmon".into(),
    }
}

/// Flux-tunable planar qubit (e.g. fluxonium): `T1 = 800 µs`, `T2 = 200 µs`,
/// extra flux bias line.
pub fn flux_tunable_qubit() -> DeviceSpec {
    DeviceSpec {
        name: "Flux-tunable qubit".into(),
        kind: DeviceKind::FluxTunableQubit,
        role: DeviceRole::Compute,
        t1: 800e-6,
        t2: 200e-6,
        readout_time: Some(1e-6),
        gate_set: GateSet::Arbitrary,
        gate_1q: Some(GateSpec::new(40e-9, 1e-3)),
        gate_2q: Some(GateSpec::new(100e-9, 1e-3)),
        swap: GateSpec::new(100e-9, 1e-3),
        max_connectivity: 4,
        capacity: 1,
        control: ControlOverhead {
            charge_lines: 1,
            flux_lines: 1,
            readout_lines: 1,
        },
        footprint: Footprint::planar(2.0, 2.0),
        notes: "e.g. fluxonium".into(),
    }
}

/// Single-mode 3D cavity memory: `T1 = 25 ms`, `T2 = 30 ms`, SWAP-only
/// access at `1e-2` (1 µs); requires 2D/3D integration.
pub fn memory_3d() -> DeviceSpec {
    DeviceSpec {
        name: "3D quantum memory".into(),
        kind: DeviceKind::Memory3D,
        role: DeviceRole::Storage,
        t1: 25e-3,
        t2: 30e-3,
        readout_time: None,
        gate_set: GateSet::SwapOnly,
        gate_1q: None,
        gate_2q: None,
        swap: GateSpec::new(1e-6, 1e-2),
        max_connectivity: 1,
        capacity: 1,
        control: ControlOverhead::default(),
        footprint: Footprint {
            x_mm: 50.0,
            y_mm: 0.5,
            z_mm: 1.0,
        },
        notes: "requires 2D/3D integration".into(),
    }
}

/// 3D multimode resonator with 10 modes: `T1 = 2 ms`, `T2 = 2.5 ms`,
/// 400 ns SWAP at `1e-2`.
pub fn multimode_resonator_3d() -> DeviceSpec {
    DeviceSpec {
        name: "3D multimode resonator (10 modes)".into(),
        kind: DeviceKind::MultimodeResonator3D,
        role: DeviceRole::Storage,
        t1: 2e-3,
        t2: 2.5e-3,
        readout_time: None,
        gate_set: GateSet::SwapOnly,
        gate_1q: None,
        gate_2q: None,
        swap: GateSpec::new(400e-9, 1e-2),
        max_connectivity: 1,
        capacity: 10,
        control: ControlOverhead::default(),
        footprint: Footprint {
            x_mm: 100.0,
            y_mm: 100.0,
            z_mm: 10.0,
        },
        notes: "requires 2D/3D integration".into(),
    }
}

/// Projected on-chip multimode resonator: `T1 = T2 = 1 ms`, 100 ns SWAP at
/// `1e-2`; no experimental demonstration yet (paper §3.1 discussion).
pub fn on_chip_multimode_resonator() -> DeviceSpec {
    DeviceSpec {
        name: "Future on-chip multimode resonator".into(),
        kind: DeviceKind::OnChipMultimodeResonator,
        role: DeviceRole::Storage,
        t1: 1e-3,
        t2: 1e-3,
        readout_time: None,
        gate_set: GateSet::SwapOnly,
        gate_1q: None,
        gate_2q: None,
        swap: GateSpec::new(100e-9, 1e-2),
        max_connectivity: 1,
        capacity: 10,
        control: ControlOverhead::default(),
        footprint: Footprint::planar(5.0, 5.0),
        notes: "no demonstration".into(),
    }
}

/// All Table 1 devices, in row order.
pub fn catalog() -> Vec<DeviceSpec> {
    vec![
        fixed_frequency_qubit(),
        flux_tunable_qubit(),
        memory_3d(),
        multimode_resonator_3d(),
        on_chip_multimode_resonator(),
    ]
}

/// Single-mode planar resonator (§3.1: coherence times of 1 ms demonstrated
/// on-chip [41]).
pub fn planar_resonator() -> DeviceSpec {
    DeviceSpec {
        name: "Single-mode planar resonator".into(),
        kind: DeviceKind::Custom,
        role: DeviceRole::Storage,
        t1: 1e-3,
        t2: 1e-3,
        readout_time: None,
        gate_set: GateSet::SwapOnly,
        gate_1q: None,
        gate_2q: None,
        swap: GateSpec::new(100e-9, 1e-2),
        max_connectivity: 1,
        capacity: 1,
        control: ControlOverhead::default(),
        footprint: Footprint::planar(3.0, 0.5),
        notes: "on-chip, single mode".into(),
    }
}

/// Micromachined resonator (§3.1: 5 ms coherence [63]).
pub fn micromachined_resonator() -> DeviceSpec {
    DeviceSpec {
        name: "Micromachined resonator".into(),
        kind: DeviceKind::Custom,
        role: DeviceRole::Storage,
        t1: 5e-3,
        t2: 5e-3,
        readout_time: None,
        gate_set: GateSet::SwapOnly,
        gate_1q: None,
        gate_2q: None,
        swap: GateSpec::new(400e-9, 1e-2),
        max_connectivity: 1,
        capacity: 1,
        control: ControlOverhead::default(),
        footprint: Footprint {
            x_mm: 10.0,
            y_mm: 10.0,
            z_mm: 0.5,
        },
        notes: "requires 2D/3D integration".into(),
    }
}

/// Speculative nanomechanical resonator (§3.1: >1 s phonon lifetimes [69] if
/// coupling to superconducting qubits [93] succeeds).
pub fn nanomechanical_resonator() -> DeviceSpec {
    DeviceSpec {
        name: "Nanomechanical resonator (speculative)".into(),
        kind: DeviceKind::Custom,
        role: DeviceRole::Storage,
        t1: 1.0,
        t2: 1.0,
        readout_time: None,
        gate_set: GateSet::SwapOnly,
        gate_1q: None,
        gate_2q: None,
        swap: GateSpec::new(1e-6, 5e-2),
        max_connectivity: 1,
        capacity: 1,
        control: ControlOverhead::default(),
        footprint: Footprint::planar(0.1, 0.1),
        notes: "no demonstrated qubit coupling; §5 future option".into(),
    }
}

/// The §3.1 extended storage options beyond Table 1's rows.
pub fn extended_storage_options() -> Vec<DeviceSpec> {
    vec![
        planar_resonator(),
        micromachined_resonator(),
        nanomechanical_resonator(),
    ]
}

/// A storage device with the given per-mode coherence `T_S` (the §4 sweep
/// knob): the on-chip multimode resonator rescaled to `T1 = T2 = ts`.
pub fn storage_with_ts(ts: f64) -> DeviceSpec {
    on_chip_multimode_resonator()
        .with_coherence(ts, ts)
        .renamed(format!("Storage (Ts = {:.1} ms)", ts * 1e3))
}

/// A compute device with coherence `T_C` (`T1 = T2 = tc`), the §4 sweep
/// knob for compute qubits.
pub fn compute_with_tc(tc: f64) -> DeviceSpec {
    fixed_frequency_qubit()
        .with_coherence(tc, tc)
        .renamed(format!("Compute (Tc = {:.1} ms)", tc * 1e3))
}

/// The §4 evaluation compute device: `T1 = T2 = tc` and **coherence-limited
/// gates** — 40 ns / 100 ns durations with no intrinsic gate error (all loss
/// comes from idle decay during the gate), plus 1 µs error-free readout, as
/// stated in the paper's §4 preamble.
pub fn coherence_limited_compute(tc: f64) -> DeviceSpec {
    let mut d = compute_with_tc(tc);
    d.gate_1q = Some(GateSpec::new(40e-9, 0.0));
    d.gate_2q = Some(GateSpec::new(100e-9, 0.0));
    d.swap = GateSpec::new(100e-9, 0.0);
    d.name = format!("Compute CL (Tc = {:.2} ms)", tc * 1e3);
    d
}

/// The §4 evaluation storage device: per-mode `T1 = T2 = ts` with a
/// coherence-limited 100 ns SWAP.
pub fn coherence_limited_storage(ts: f64) -> DeviceSpec {
    let mut d = storage_with_ts(ts);
    d.swap = GateSpec::new(100e-9, 0.0);
    d.name = format!("Storage CL (Ts = {:.2} ms)", ts * 1e3);
    d
}

/// The homogeneous baseline's "memory": a compute qubit pressed into storage
/// service. Same coherence as the compute device (`T_S = T_C`), SWAP is the
/// ordinary coherence-limited two-qubit gate, and capacity is one qubit per
/// device (modeled as a pseudo-storage spec so the same Register pipeline
/// characterizes both systems).
pub fn homogeneous_pseudo_storage(tc: f64, capacity: u32) -> DeviceSpec {
    let mut d = coherence_limited_storage(tc);
    d.kind = DeviceKind::Custom;
    d.capacity = capacity;
    d.footprint = Footprint::planar(2.0, 2.0 * capacity as f64);
    d.name = format!("Homogeneous pseudo-storage (Tc = {:.2} ms)", tc * 1e3);
    d.notes = "compute qubits used as memory in the sea-of-qubits baseline".into();
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceRole;

    #[test]
    fn catalog_has_five_rows() {
        assert_eq!(catalog().len(), 5);
    }

    #[test]
    fn all_catalog_devices_are_physical() {
        for d in catalog() {
            assert!(d.coherence_is_physical(), "{} has unphysical T1/T2", d.name);
            assert!(d.swap.time > 0.0);
        }
    }

    #[test]
    fn compute_devices_have_readout_and_gates() {
        for d in catalog() {
            match d.role {
                DeviceRole::Compute => {
                    assert!(d.has_readout(), "{}", d.name);
                    assert!(d.gate_1q.is_some() && d.gate_2q.is_some());
                    assert_eq!(d.capacity, 1);
                    assert_eq!(d.max_connectivity, 4);
                }
                DeviceRole::Storage => {
                    assert!(!d.has_readout(), "{}", d.name);
                    assert_eq!(d.max_connectivity, 1);
                    assert!(d.control.total() == 0, "storage adds no control lines");
                }
            }
        }
    }

    #[test]
    fn storage_capacities_match_table() {
        assert_eq!(memory_3d().capacity, 1);
        assert_eq!(multimode_resonator_3d().capacity, 10);
        assert_eq!(on_chip_multimode_resonator().capacity, 10);
    }

    #[test]
    fn table_values_spot_check() {
        let t = fixed_frequency_qubit();
        assert_eq!(t.t1, 300e-6);
        assert_eq!(t.t2, 550e-6);
        assert_eq!(t.gate_2q.unwrap().time, 100e-9);
        let m = memory_3d();
        assert_eq!(m.t1, 25e-3);
        assert_eq!(m.swap.time, 1e-6);
    }

    #[test]
    fn extended_storage_options_are_physical_storage() {
        for d in extended_storage_options() {
            assert!(d.coherence_is_physical(), "{}", d.name);
            assert_eq!(d.role, DeviceRole::Storage, "{}", d.name);
            assert_eq!(d.max_connectivity, 1, "{}", d.name);
            assert!(!d.has_readout(), "{}", d.name);
        }
        // The §3.1 coherence ladder: planar < micromachined < nanomechanical.
        let t1s: Vec<f64> = extended_storage_options().iter().map(|d| d.t1).collect();
        assert!(t1s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sweep_constructors() {
        let s = storage_with_ts(12.5e-3);
        assert_eq!(s.t1, 12.5e-3);
        assert_eq!(s.role, DeviceRole::Storage);
        let c = compute_with_tc(0.5e-3);
        assert_eq!(c.t2, 0.5e-3);
        assert_eq!(c.role, DeviceRole::Compute);
    }
}
