//! Data-qubit assignment to USC registers, and serialized check schedules.
//!
//! The UEC module stores data qubits in up to three 10-mode Registers around
//! a shared stabilizer ancilla (paper §4.2.2). Each Register has a single
//! compute qubit, so data co-located in one Register must be swapped out
//! *sequentially* during a check; the assignment search spreads each check's
//! support across Registers to maximize swap parallelism, which is the paper's
//! "maximum possible parallelism while minimizing time outside storage".

use serde::{Deserialize, Serialize};

use hetarch_cells::UscChannel;
use hetarch_stab::codes::StabilizerCode;

/// A mapping from data qubit index to register index.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    registers: u32,
    of_qubit: Vec<u32>,
}

impl Assignment {
    /// Creates an assignment from an explicit map.
    ///
    /// # Panics
    ///
    /// Panics if any register index is out of range.
    pub fn new(registers: u32, of_qubit: Vec<u32>) -> Self {
        assert!(
            of_qubit.iter().all(|&r| r < registers),
            "register out of range"
        );
        Assignment {
            registers,
            of_qubit,
        }
    }

    /// Register of data qubit `q`.
    pub fn register_of(&self, q: usize) -> u32 {
        self.of_qubit[q]
    }

    /// Number of registers used.
    pub fn registers(&self) -> u32 {
        self.registers
    }

    /// Number of data qubits.
    pub fn num_qubits(&self) -> usize {
        self.of_qubit.len()
    }

    /// For one check support, the largest number of its qubits co-located in
    /// a single register (the swap-serialization factor).
    pub fn max_group(&self, support: &[usize]) -> usize {
        let mut counts = vec![0usize; self.registers as usize];
        for &q in support {
            counts[self.of_qubit[q] as usize] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }

    /// Total swap-serialization cost over all checks of a code.
    pub fn cost(&self, code: &StabilizerCode) -> usize {
        code.stabilizers()
            .iter()
            .map(|s| {
                let support: Vec<usize> = s.iter_support().map(|(q, _)| q).collect();
                self.max_group(&support)
            })
            .sum()
    }
}

/// Searches for a good assignment of `code`'s data qubits to `registers`
/// registers with `modes` modes each.
///
/// Exhaustive for small codes (≤ 10 qubits); greedy placement plus
/// hill-climbing otherwise (the paper's brute force is likewise "a first
/// study" and flags scalable search as future work).
///
/// # Panics
///
/// Panics if the code does not fit (`n > registers × modes`).
pub fn search_assignment(code: &StabilizerCode, registers: u32, modes: u32) -> Assignment {
    let n = code.num_qubits();
    assert!(
        n <= (registers * modes) as usize,
        "code with {n} qubits exceeds capacity {}",
        registers * modes
    );
    if n <= 10 && registers <= 3 {
        exhaustive(code, registers, modes)
    } else {
        hill_climb(code, registers, modes)
    }
}

fn capacity_ok(of_qubit: &[u32], registers: u32, modes: u32) -> bool {
    let mut counts = vec![0u32; registers as usize];
    for &r in of_qubit {
        counts[r as usize] += 1;
    }
    counts.into_iter().all(|c| c <= modes)
}

fn exhaustive(code: &StabilizerCode, registers: u32, modes: u32) -> Assignment {
    let n = code.num_qubits();
    let mut best: Option<(usize, Vec<u32>)> = None;
    let mut of_qubit = vec![0u32; n];
    // Qubit 0 pinned to register 0 (register labels are symmetric).
    fn rec(
        q: usize,
        of_qubit: &mut Vec<u32>,
        code: &StabilizerCode,
        registers: u32,
        modes: u32,
        best: &mut Option<(usize, Vec<u32>)>,
    ) {
        let n = of_qubit.len();
        if q == n {
            if !capacity_ok(of_qubit, registers, modes) {
                return;
            }
            let a = Assignment::new(registers, of_qubit.clone());
            let cost = a.cost(code);
            if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
                *best = Some((cost, of_qubit.clone()));
            }
            return;
        }
        let limit = if q == 0 { 1 } else { registers };
        for r in 0..limit {
            of_qubit[q] = r;
            rec(q + 1, of_qubit, code, registers, modes, best);
        }
    }
    rec(0, &mut of_qubit, code, registers, modes, &mut best);
    let (_, map) = best.expect("at least one assignment exists");
    Assignment::new(registers, map)
}

fn hill_climb(code: &StabilizerCode, registers: u32, modes: u32) -> Assignment {
    let n = code.num_qubits();
    // Greedy start: round-robin.
    let mut map: Vec<u32> = (0..n).map(|q| (q as u32) % registers).collect();
    let mut cost = Assignment::new(registers, map.clone()).cost(code);
    let mut improved = true;
    while improved {
        improved = false;
        for q in 0..n {
            let original = map[q];
            for r in 0..registers {
                if r == original {
                    continue;
                }
                map[q] = r;
                if !capacity_ok(&map, registers, modes) {
                    continue;
                }
                let c = Assignment::new(registers, map.clone()).cost(code);
                if c < cost {
                    cost = c;
                    improved = true;
                    break;
                }
                map[q] = original;
            }
        }
    }
    Assignment::new(registers, map)
}

/// The serialized schedule of one QEC cycle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CycleSchedule {
    /// Per-check timing, in stabilizer order.
    pub checks: Vec<CheckSlot>,
    /// Total cycle duration (seconds).
    pub cycle_duration: f64,
}

/// Timing of one serialized stabilizer check.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckSlot {
    /// Index of the stabilizer generator.
    pub stabilizer: usize,
    /// Wall-clock duration of the check.
    pub duration: f64,
    /// Time each involved data qubit spends outside storage.
    pub exposure: f64,
    /// Check weight.
    pub weight: usize,
}

/// Builds the cycle schedule for `code` under `assignment` on a USC with
/// channel `usc`: per check, parallel swap-outs across registers (serialized
/// within one register), serial CXs through the shared ancilla, swap-backs,
/// then ancilla readout.
pub fn build_schedule(
    code: &StabilizerCode,
    assignment: &Assignment,
    usc: &UscChannel,
) -> CycleSchedule {
    let mut checks = Vec::new();
    let mut total = 0.0;
    for (i, s) in code.stabilizers().iter().enumerate() {
        let support: Vec<usize> = s.iter_support().map(|(q, _)| q).collect();
        let w = support.len();
        let max_group = assignment.max_group(&support);
        let duration =
            2.0 * max_group as f64 * usc.swap.time + w as f64 * usc.cx.time + usc.readout_time;
        let exposure = 2.0 * usc.swap.time + w as f64 * usc.cx.time;
        checks.push(CheckSlot {
            stabilizer: i,
            duration,
            exposure,
            weight: w,
        });
        total += duration;
    }
    CycleSchedule {
        checks,
        cycle_duration: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_cells::UscCell;
    use hetarch_devices::catalog::{coherence_limited_compute, coherence_limited_storage};
    use hetarch_stab::codes::{rotated_surface_code, steane};

    fn usc_channel() -> UscChannel {
        UscCell::new(
            coherence_limited_compute(0.5e-3),
            coherence_limited_storage(1e-3),
        )
        .unwrap()
        .characterize()
    }

    #[test]
    fn steane_assignment_spreads_checks() {
        let code = steane();
        let a = search_assignment(&code, 3, 10);
        assert_eq!(a.num_qubits(), 7);
        // Optimal: every weight-4 check splits at most 2-2 across registers.
        for s in code.stabilizers() {
            let support: Vec<usize> = s.iter_support().map(|(q, _)| q).collect();
            assert!(a.max_group(&support) <= 2, "check too concentrated");
        }
    }

    #[test]
    fn assignment_respects_capacity() {
        let code = rotated_surface_code(4); // 16 qubits
        let a = search_assignment(&code, 3, 10);
        let mut counts = [0u32; 3];
        for q in 0..16 {
            counts[a.register_of(q) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c <= 10));
        assert_eq!(counts.iter().sum::<u32>(), 16);
    }

    #[test]
    fn hill_climb_beats_or_matches_round_robin() {
        let code = rotated_surface_code(4);
        let rr = Assignment::new(3, (0..16).map(|q| (q as u32) % 3).collect());
        let tuned = search_assignment(&code, 3, 10);
        assert!(tuned.cost(&code) <= rr.cost(&code));
    }

    #[test]
    fn schedule_durations_are_consistent() {
        let code = steane();
        let a = search_assignment(&code, 3, 10);
        let usc = usc_channel();
        let sched = build_schedule(&code, &a, &usc);
        assert_eq!(sched.checks.len(), 6);
        let sum: f64 = sched.checks.iter().map(|c| c.duration).sum();
        assert!((sum - sched.cycle_duration).abs() < 1e-12);
        for c in &sched.checks {
            assert!(c.duration >= c.exposure);
            assert_eq!(c.weight, 4);
        }
    }

    #[test]
    fn better_assignment_shortens_cycle() {
        let code = steane();
        let usc = usc_channel();
        let good = search_assignment(&code, 3, 10);
        // Pathological: everything in one register.
        let bad = Assignment::new(3, vec![0; 7]);
        let t_good = build_schedule(&code, &good, &usc).cycle_duration;
        let t_bad = build_schedule(&code, &bad, &usc).cycle_duration;
        assert!(t_good < t_bad);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_code_rejected() {
        let code = rotated_surface_code(6); // 36 qubits > 30
        search_assignment(&code, 3, 10);
    }
}
