//! Chained UEC: codes beyond one USC's 30-qubit capacity on a USC +
//! `USC-EXT` chain (paper Fig. 8 — "with USC-EXTs added, to any code that
//! can be partitioned in 1D for larger sizes").
//!
//! Each chain segment (the head USC with three Registers, each extension
//! with two) owns a stabilizer ancilla; segments execute checks whose data
//! they hold locally, and remote qubits hop along the ancilla chain at the
//! cost of two extra SWAPs per hop. Checks touching disjoint segment sets
//! run concurrently — partial parallelism the single USC cannot offer.

use hetarch_exec::WorkerPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use hetarch_cells::UscChannel;
use hetarch_qsim::channels::PauliProbs;
use hetarch_stab::codes::StabilizerCode;
use hetarch_stab::decoder::LookupDecoder;
use hetarch_stab::pauli::PauliString;

use crate::uec::sim::{
    combine, first_order_table, pack_syndrome, sample_pauli_into, UecNoise, UEC_FAILURES,
    UEC_RUN_NS, UEC_SHOTS,
};
use hetarch_obs as obs;

/// The chain geometry: segment 0 is the head USC, the rest are extensions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainShape {
    /// Registers per segment (3 for the USC head, 2 per USC-EXT).
    pub registers_per_segment: Vec<u32>,
    /// Storage modes per register.
    pub modes: u32,
}

impl ChainShape {
    /// A head USC plus `n_ext` extensions, `modes` modes per register.
    pub fn new(n_ext: usize, modes: u32) -> Self {
        let mut registers_per_segment = vec![3u32];
        registers_per_segment.extend(std::iter::repeat_n(2, n_ext));
        ChainShape {
            registers_per_segment,
            modes,
        }
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.registers_per_segment.len()
    }

    /// Total data capacity.
    pub fn capacity(&self) -> u32 {
        self.registers_per_segment.iter().sum::<u32>() * self.modes
    }
}

/// Mapping of data qubits to chain segments.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainAssignment {
    segment_of: Vec<u32>,
}

impl ChainAssignment {
    /// Segment of data qubit `q`.
    pub fn segment_of(&self, q: usize) -> u32 {
        self.segment_of[q]
    }

    /// Total chain hops a check incurs when executed at the hop-optimal
    /// (median) segment.
    pub fn check_hops(&self, support: &[usize]) -> (u32, u32) {
        let mut segs: Vec<u32> = support.iter().map(|&q| self.segment_of[q]).collect();
        segs.sort_unstable();
        let exec = segs[segs.len() / 2];
        let hops = segs.iter().map(|&s| s.abs_diff(exec)).sum();
        (exec, hops)
    }

    /// Total hop cost over all of a code's checks.
    pub fn cost(&self, code: &StabilizerCode) -> u32 {
        code.stabilizers()
            .iter()
            .map(|s| {
                let support: Vec<usize> = s.iter_support().map(|(q, _)| q).collect();
                self.check_hops(&support).1
            })
            .sum()
    }
}

/// Searches a 1D partition of `code`'s qubits across the chain, minimizing
/// total chain hops (greedy block start + hill climbing).
///
/// # Panics
///
/// Panics if the code does not fit the chain.
pub fn search_chain_assignment(code: &StabilizerCode, shape: &ChainShape) -> ChainAssignment {
    let n = code.num_qubits();
    assert!(
        n as u32 <= shape.capacity(),
        "code with {n} qubits exceeds chain capacity {}",
        shape.capacity()
    );
    let seg_caps: Vec<u32> = shape
        .registers_per_segment
        .iter()
        .map(|r| r * shape.modes)
        .collect();
    // Greedy start: fill segments in index order (a 1D block partition).
    let mut segment_of = Vec::with_capacity(n);
    let mut seg = 0usize;
    let mut used = 0u32;
    for _ in 0..n {
        while used >= seg_caps[seg] {
            seg += 1;
            used = 0;
        }
        segment_of.push(seg as u32);
        used += 1;
    }
    let mut assignment = ChainAssignment { segment_of };
    let mut cost = assignment.cost(code);
    // Hill-climb with pairwise swaps (capacity-preserving moves).
    let mut improved = true;
    while improved {
        improved = false;
        for a in 0..n {
            for b in (a + 1)..n {
                if assignment.segment_of[a] == assignment.segment_of[b] {
                    continue;
                }
                assignment.segment_of.swap(a, b);
                let c = assignment.cost(code);
                if c < cost {
                    cost = c;
                    improved = true;
                } else {
                    assignment.segment_of.swap(a, b);
                }
            }
        }
    }
    assignment
}

/// One scheduled check on the chain.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChainCheck {
    /// Stabilizer index.
    pub stabilizer: usize,
    /// Executing segment.
    pub segment: u32,
    /// All segments the check touches.
    pub segments_touched: Vec<u32>,
    /// Chain hops paid by remote qubits.
    pub hops: u32,
    /// Wall-clock duration.
    pub duration: f64,
    /// Compute exposure per involved qubit.
    pub exposure: f64,
}

/// The chain schedule: waves of concurrently executing checks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChainSchedule {
    /// Waves; checks within a wave touch disjoint segment sets.
    pub waves: Vec<Vec<ChainCheck>>,
    /// Total cycle duration (sum over waves of the slowest member).
    pub cycle_duration: f64,
}

/// Builds the wave schedule for `code` on the chain.
pub fn build_chain_schedule(
    code: &StabilizerCode,
    assignment: &ChainAssignment,
    usc: &UscChannel,
) -> ChainSchedule {
    let mut checks: Vec<ChainCheck> = code
        .stabilizers()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let support: Vec<usize> = s.iter_support().map(|(q, _)| q).collect();
            let (exec, hops) = assignment.check_hops(&support);
            let mut touched: Vec<u32> = support.iter().map(|&q| assignment.segment_of(q)).collect();
            touched.push(exec);
            touched.sort_unstable();
            touched.dedup();
            // Remote traffic also occupies every segment between source and
            // executor.
            let lo = *touched.first().expect("non-empty");
            let hi = *touched.last().expect("non-empty");
            let touched: Vec<u32> = (lo..=hi).collect();
            let w = support.len() as f64;
            let duration = 2.0 * w.min(3.0) * usc.swap.time          // local swap groups
                + 2.0 * hops as f64 * usc.swap.time                   // chain hops, round trip
                + w * usc.cx.time
                + usc.readout_time;
            let exposure = 2.0 * usc.swap.time
                + 2.0 * hops as f64 * usc.swap.time / w.max(1.0)
                + w * usc.cx.time;
            ChainCheck {
                stabilizer: i,
                segment: exec,
                segments_touched: touched,
                hops,
                duration,
                exposure,
            }
        })
        .collect();
    // Greedy wave packing: longest checks first.
    checks.sort_by(|a, b| b.duration.total_cmp(&a.duration));
    let mut waves: Vec<Vec<ChainCheck>> = Vec::new();
    for check in checks {
        let slot = waves.iter_mut().find(|wave| {
            wave.iter().all(|c| {
                c.segments_touched
                    .iter()
                    .all(|s| !check.segments_touched.contains(s))
            })
        });
        match slot {
            Some(wave) => wave.push(check),
            None => waves.push(vec![check]),
        }
    }
    let cycle_duration = waves
        .iter()
        .map(|w| w.iter().map(|c| c.duration).fold(0.0f64, f64::max))
        .sum();
    ChainSchedule {
        waves,
        cycle_duration,
    }
}

/// Monte-Carlo simulator for a code running on a USC chain.
#[derive(Clone, Debug)]
pub struct ChainUecModule {
    code: StabilizerCode,
    usc: UscChannel,
    noise: UecNoise,
    schedule: ChainSchedule,
    decoder: LookupDecoder,
    fault_table: std::collections::HashMap<u64, PauliString>,
}

impl ChainUecModule {
    /// Builds the module for `code` on a chain with `n_ext` extensions.
    ///
    /// # Panics
    ///
    /// Panics if the code does not fit, or needs more than 63 stabilizers.
    pub fn new(code: StabilizerCode, usc: UscChannel, n_ext: usize, noise: UecNoise) -> Self {
        let shape = ChainShape::new(n_ext, usc.capacity / usc.registers);
        let assignment = search_chain_assignment(&code, &shape);
        let schedule = build_chain_schedule(&code, &assignment, &usc);
        let weight_cap = (code.distance().div_ceil(2)).clamp(1, 2);
        let decoder = LookupDecoder::new(&code, weight_cap);
        let groups: Vec<Vec<usize>> = schedule
            .waves
            .iter()
            .map(|w| w.iter().map(|c| c.stabilizer).collect())
            .collect();
        let fault_table = first_order_table(&code, &groups);
        ChainUecModule {
            code,
            usc,
            noise,
            schedule,
            decoder,
            fault_table,
        }
    }

    /// The wave schedule.
    pub fn schedule(&self) -> &ChainSchedule {
        &self.schedule
    }

    /// Per-cycle logical error rate over `shots` Monte-Carlo cycles.
    ///
    /// Shots are sharded over the global [`WorkerPool`]; shard boundaries
    /// and per-shard RNG streams depend only on `(shots, seed)`, so the
    /// result is **bit-identical for every worker count**. `shots == 0`
    /// reports a rate of zero.
    pub fn logical_error_rate(&self, shots: usize, seed: u64) -> crate::uec::sim::UecResult {
        self.logical_error_rate_on(WorkerPool::global(), shots, seed)
    }

    /// As [`Self::logical_error_rate`] with an explicit worker pool.
    pub fn logical_error_rate_on(
        &self,
        pool: &WorkerPool,
        shots: usize,
        seed: u64,
    ) -> crate::uec::sim::UecResult {
        let n = self.code.num_qubits();
        let stabs = self.code.stabilizers();
        let supports: Vec<Vec<usize>> = stabs
            .iter()
            .map(|s| s.iter_support().map(|(q, _)| q).collect())
            .collect();

        struct WaveNoise {
            duration: f64,
            storage: PauliProbs,
            checks: Vec<(usize, PauliProbs, f64, u32)>, // (stab, compute-exposure twirl, anc_flip, hops)
        }
        let waves: Vec<WaveNoise> = self
            .schedule
            .waves
            .iter()
            .map(|wave| {
                let duration = wave.iter().map(|c| c.duration).fold(0.0f64, f64::max);
                let checks = wave
                    .iter()
                    .map(|c| {
                        let w = supports[c.stabilizer].len();
                        let anc_idle = self.usc.compute_idle.twirl_probs(c.duration);
                        let p_gate_anc = 1.0 - (1.0 - 8.0 / 15.0 * self.noise.p2q).powi(w as i32);
                        let anc_flip = combine(
                            combine(anc_idle.px + anc_idle.py, p_gate_anc),
                            self.noise.meas_flip,
                        );
                        (
                            c.stabilizer,
                            self.usc.compute_idle.twirl_probs(c.exposure),
                            anc_flip,
                            c.hops,
                        )
                    })
                    .collect();
                WaveNoise {
                    duration,
                    storage: self.usc.storage_idle.twirl_probs(duration),
                    checks,
                }
            })
            .collect();

        let one_shot = |rng: &mut StdRng| -> bool {
            let mut error = PauliString::identity(n);
            let mut syndrome = 0u64;
            for wave in &waves {
                for q in 0..n {
                    sample_pauli_into(&mut error, q, wave.storage, rng);
                }
                let _ = wave.duration;
                for (stab, exposure_twirl, anc_flip, hops) in &wave.checks {
                    let p_sw = self.noise.p_swap * 4.0 / 15.0;
                    let p_cx = self.noise.p2q * 4.0 / 15.0;
                    let extra_hop_swaps = (2 * *hops) as usize / supports[*stab].len().max(1);
                    for &q in &supports[*stab] {
                        sample_pauli_into(&mut error, q, *exposure_twirl, rng);
                        for _ in 0..(2 + extra_hop_swaps) {
                            sample_pauli_into(
                                &mut error,
                                q,
                                PauliProbs {
                                    px: p_sw,
                                    py: p_sw,
                                    pz: p_sw,
                                },
                                rng,
                            );
                        }
                        sample_pauli_into(
                            &mut error,
                            q,
                            PauliProbs {
                                px: p_cx,
                                py: p_cx,
                                pz: p_cx,
                            },
                            rng,
                        );
                    }
                    let mut bit = !stabs[*stab].commutes_with(&error);
                    if rng.gen::<f64>() < *anc_flip {
                        bit = !bit;
                    }
                    if bit {
                        syndrome |= 1 << *stab;
                    }
                }
            }
            let correction = self
                .fault_table
                .get(&syndrome)
                .cloned()
                .unwrap_or_else(|| self.decoder.decode_bits(syndrome));
            let residual = error.xor(&correction);
            let true_syn = pack_syndrome(&self.code.syndrome_of(&residual));
            let final_error = residual.xor(&self.decoder.decode_bits(true_syn));
            !self.code.in_normalizer(&final_error) || self.code.is_logical_error(&final_error)
        };
        let span = obs::span!(UEC_RUN_NS);
        let failures = pool.fold_shards(
            shots,
            crate::uec::sim::MC_SHARD_SHOTS,
            seed,
            |shard| {
                let mut rng = StdRng::seed_from_u64(shard.seed);
                (0..shard.len).filter(|_| one_shot(&mut rng)).count()
            },
            0usize,
            |acc, f| acc + f,
        );
        drop(span);
        UEC_SHOTS.add(shots as u64);
        UEC_FAILURES.add(failures as u64);
        crate::uec::sim::UecResult {
            logical_error_rate: if shots == 0 {
                0.0
            } else {
                failures as f64 / shots as f64
            },
            cycle_duration: self.schedule.cycle_duration,
            shots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_cells::UscCell;
    use hetarch_devices::catalog::{coherence_limited_compute, coherence_limited_storage};
    use hetarch_stab::codes::{rotated_surface_code, steane};

    fn usc(ts: f64) -> UscChannel {
        UscCell::new(
            coherence_limited_compute(0.5e-3),
            coherence_limited_storage(ts),
        )
        .unwrap()
        .characterize()
    }

    #[test]
    fn chain_shape_capacity() {
        assert_eq!(ChainShape::new(0, 10).capacity(), 30);
        assert_eq!(ChainShape::new(1, 10).capacity(), 50);
        assert_eq!(ChainShape::new(2, 10).capacity(), 70);
    }

    #[test]
    fn block_partition_minimizes_hops_for_surface_code() {
        // d=6 surface code (36 qubits) needs one extension.
        let code = rotated_surface_code(6);
        let shape = ChainShape::new(1, 10);
        let a = search_chain_assignment(&code, &shape);
        // Hops should be modest: local checks dominate for a 1D-partitioned
        // planar code.
        let cost = a.cost(&code);
        assert!(cost < 80, "total hops {cost}");
    }

    #[test]
    fn waves_exploit_multi_ancilla_parallelism() {
        let code = rotated_surface_code(6);
        let shape = ChainShape::new(1, 10);
        let a = search_chain_assignment(&code, &shape);
        let sched = build_chain_schedule(&code, &a, &usc(50e-3));
        // Fewer waves than checks => some parallelism happened.
        let n_checks: usize = sched.waves.iter().map(|w| w.len()).sum();
        assert_eq!(n_checks, code.stabilizers().len());
        assert!(
            sched.waves.len() < n_checks,
            "{} waves for {} checks",
            sched.waves.len(),
            n_checks
        );
    }

    #[test]
    fn oversized_code_runs_end_to_end() {
        let code = rotated_surface_code(6); // 36 data qubits > 30
        let module = ChainUecModule::new(code, usc(50e-3), 1, UecNoise::default());
        let r = module.logical_error_rate(1500, 3);
        assert!(r.logical_error_rate < 0.5, "rate {}", r.logical_error_rate);
        assert!(r.cycle_duration > 0.0);
    }

    #[test]
    fn small_code_on_chain_matches_single_usc_ballpark() {
        // Steane fits a single segment; the chain should behave like (or
        // better than, thanks to wave parallelism) the serialized USC.
        let ch = usc(50e-3);
        let chain = ChainUecModule::new(steane(), ch.clone(), 1, UecNoise::default());
        let single = crate::uec::UecModule::new(steane(), ch, UecNoise::default());
        let a = chain.logical_error_rate(6000, 9).logical_error_rate;
        let b = single.logical_error_rate(6000, 9).logical_error_rate;
        assert!(a < 3.0 * b + 0.02, "chain {a} vs single {b}");
    }

    #[test]
    #[should_panic(expected = "exceeds chain capacity")]
    fn overflow_rejected() {
        let code = rotated_surface_code(8); // 64 qubits > 50
        let shape = ChainShape::new(1, 10);
        search_chain_assignment(&code, &shape);
    }
}
