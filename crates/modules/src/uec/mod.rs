//! The universal error correction (UEC) module (paper §4.2.2): storage-based,
//! topology-agnostic stabilizer QEC with serialized checks, plus the chained
//! USC + USC-EXT variant for codes beyond 30 qubits (Fig. 8).

pub mod assign;
pub mod chain;
pub mod sim;

pub use assign::{build_schedule, search_assignment, Assignment, CheckSlot, CycleSchedule};
pub use chain::{ChainAssignment, ChainSchedule, ChainShape, ChainUecModule};
pub use sim::{UecModule, UecNoise, UecResult};
