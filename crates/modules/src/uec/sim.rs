//! Monte-Carlo simulation of the universal error correction module
//! (paper §4.2.2, Fig. 9, Table 3).
//!
//! Checks are serialized: the error accumulates *while* the syndrome is
//! being read out check by check, which is exactly the flexibility-for-time
//! trade the UEC makes. Decoding uses the exact minimum-weight lookup table,
//! followed by a perfect round to resolve measurement-error-induced
//! miscorrections (the standard pseudothreshold methodology for small
//! codes).

use hetarch_exec::rare::{RareConfig, RareOutcome};
use hetarch_exec::{CancelToken, Cancelled, WorkerPool};
use hetarch_obs as obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::faults::{stratified_rate, try_stratified_rate, FaultDriver, RecordFaults, RngFaults};

use hetarch_cells::UscChannel;
use hetarch_qsim::channels::PauliProbs;
use hetarch_stab::codes::StabilizerCode;
use hetarch_stab::decoder::LookupDecoder;
use hetarch_stab::pauli::{Pauli, PauliString};

use crate::uec::assign::{build_schedule, search_assignment, Assignment, CycleSchedule};

use std::collections::HashMap;

/// Shots per shard of the UEC Monte-Carlo loops. Fixed (never derived from
/// the worker count) so shard boundaries — and therefore results — are
/// identical for every worker count.
pub(crate) const MC_SHARD_SHOTS: usize = 512;

// UEC Monte-Carlo metrics, shared with the chained variant in `chain.rs`
// (no-ops unless the `obs` feature is on and `HETARCH_OBS=1`).
pub(crate) static UEC_SHOTS: obs::Counter = obs::Counter::new("modules.uec.shots");
pub(crate) static UEC_FAILURES: obs::Counter = obs::Counter::new("modules.uec.failures");
pub(crate) static UEC_RUN_NS: obs::Histogram = obs::Histogram::new("modules.uec.run_ns");

/// Gate-level noise settings for the UEC study (§4.2: two-qubit gates at
/// 1%).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct UecNoise {
    /// Two-qubit (CX) depolarizing probability.
    pub p2q: f64,
    /// Storage SWAP depolarizing probability.
    pub p_swap: f64,
    /// Classical readout flip probability.
    pub meas_flip: f64,
}

impl Default for UecNoise {
    /// §4.2 calibration: CX gates at 1%; the storage SWAP at 0.5% —
    /// per §3.1 its fidelity is limited only by the SWAP time and the
    /// transmon's T2, i.e. roughly half a full compute-compute gate's error.
    fn default() -> Self {
        UecNoise {
            p2q: 1e-2,
            p_swap: 5e-3,
            meas_flip: 0.0,
        }
    }
}

/// Results of a UEC Monte-Carlo run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct UecResult {
    /// Logical error probability per QEC cycle.
    pub logical_error_rate: f64,
    /// Cycle duration (seconds).
    pub cycle_duration: f64,
    /// Shots simulated.
    pub shots: usize,
}

/// The UEC module simulator for one code on one USC.
#[derive(Clone, Debug)]
pub struct UecModule {
    code: StabilizerCode,
    usc: UscChannel,
    noise: UecNoise,
    assignment: Assignment,
    schedule: CycleSchedule,
    decoder: LookupDecoder,
    fault_table: HashMap<u64, PauliString>,
}

impl UecModule {
    /// Builds the module: searches the qubit assignment, builds the
    /// serialized schedule, and constructs the lookup decoder (weight cap
    /// `⌈d/2⌉` capped at 3 for table-size reasons).
    ///
    /// # Panics
    ///
    /// Panics if the code exceeds the USC capacity.
    pub fn new(code: StabilizerCode, usc: UscChannel, noise: UecNoise) -> Self {
        let assignment = search_assignment(&code, usc.registers, usc.capacity / usc.registers);
        let schedule = build_schedule(&code, &assignment, &usc);
        let weight_cap = (code.distance().div_ceil(2)).clamp(1, 3);
        let decoder = LookupDecoder::new(&code, weight_cap);
        // Serialized extraction: one stabilizer per temporal step, in
        // schedule order.
        let groups: Vec<Vec<usize>> = schedule.checks.iter().map(|c| vec![c.stabilizer]).collect();
        let fault_table = first_order_table(&code, &groups);
        UecModule {
            code,
            usc,
            noise,
            assignment,
            schedule,
            decoder,
            fault_table,
        }
    }

    /// The code under test.
    pub fn code(&self) -> &StabilizerCode {
        &self.code
    }

    /// The serialized cycle schedule.
    pub fn schedule(&self) -> &CycleSchedule {
        &self.schedule
    }

    /// The chosen register assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Runs `shots` Monte-Carlo cycles and returns the per-cycle logical
    /// error rate.
    ///
    /// Shots are sharded over the global [`WorkerPool`]; shard boundaries
    /// and the per-shard RNG streams depend only on `(shots, seed)`, so the
    /// result is **bit-identical for every worker count** and across
    /// repeated runs. `shots == 0` reports a rate of zero.
    pub fn logical_error_rate(&self, shots: usize, seed: u64) -> UecResult {
        self.logical_error_rate_on(WorkerPool::global(), shots, seed)
    }

    /// As [`Self::logical_error_rate`] with an explicit worker pool.
    pub fn logical_error_rate_on(&self, pool: &WorkerPool, shots: usize, seed: u64) -> UecResult {
        let slots = self.slot_noise();
        let span = obs::span!(UEC_RUN_NS);
        let failures = pool.fold_shards(
            shots,
            MC_SHARD_SHOTS,
            seed,
            |shard| {
                let mut rng = StdRng::seed_from_u64(shard.seed);
                (0..shard.len)
                    .filter(|_| self.run_shot(&slots, &mut RngFaults::new(&mut rng)))
                    .count()
            },
            0usize,
            |acc, f| acc + f,
        );
        drop(span);
        UEC_SHOTS.add(shots as u64);
        UEC_FAILURES.add(failures as u64);
        UecResult {
            logical_error_rate: if shots == 0 {
                0.0
            } else {
                failures as f64 / shots as f64
            },
            cycle_duration: self.schedule.cycle_duration,
            shots,
        }
    }

    /// As [`Self::logical_error_rate_on`] with a cooperative
    /// [`CancelToken`] checked between shards; a fired token returns
    /// [`Cancelled`] instead of finishing the run. An uncancelled call is
    /// bit-identical to [`Self::logical_error_rate_on`].
    pub fn try_logical_error_rate_on(
        &self,
        pool: &WorkerPool,
        shots: usize,
        seed: u64,
        token: &CancelToken,
    ) -> Result<UecResult, Cancelled> {
        let slots = self.slot_noise();
        let span = obs::span!(UEC_RUN_NS);
        let failures = pool.try_fold_shards(
            shots,
            MC_SHARD_SHOTS,
            seed,
            token,
            |shard| {
                let mut rng = StdRng::seed_from_u64(shard.seed);
                (0..shard.len)
                    .filter(|_| self.run_shot(&slots, &mut RngFaults::new(&mut rng)))
                    .count()
            },
            0usize,
            |acc, f| acc + f,
        )?;
        drop(span);
        UEC_SHOTS.add(shots as u64);
        UEC_FAILURES.add(failures as u64);
        Ok(UecResult {
            logical_error_rate: if shots == 0 {
                0.0
            } else {
                failures as f64 / shots as f64
            },
            cycle_duration: self.schedule.cycle_duration,
            shots,
        })
    }

    /// Estimates the per-cycle logical error rate with the weight-stratified
    /// rare-event estimator (see [`hetarch_exec::rare`]) on the global
    /// [`WorkerPool`].
    ///
    /// Unlike [`Self::logical_error_rate`], this resolves deep-subthreshold
    /// rates far below `1/shots`: low-weight strata are enumerated exactly,
    /// higher ones conditionally sampled, and the report carries an explicit
    /// statistical sigma and truncation bound. The outcome is bit-identical
    /// for every worker count.
    pub fn logical_error_rate_rare(&self, config: RareConfig, seed: u64) -> RareOutcome {
        self.logical_error_rate_rare_on(WorkerPool::global(), config, seed)
    }

    /// As [`Self::logical_error_rate_rare`] with an explicit worker pool.
    pub fn logical_error_rate_rare_on(
        &self,
        pool: &WorkerPool,
        config: RareConfig,
        seed: u64,
    ) -> RareOutcome {
        let slots = self.slot_noise();
        // One dry shot records the static fault-site table.
        let mut recorder = RecordFaults::new();
        self.run_shot(&slots, &mut recorder);
        let sites = recorder.into_sites();
        let span = obs::span!(UEC_RUN_NS);
        let outcome = stratified_rate(pool, &sites, config, seed, MC_SHARD_SHOTS, |driver| {
            self.run_shot(&slots, driver)
        });
        drop(span);
        UEC_SHOTS.add(outcome.report().total_shots as u64);
        outcome
    }

    /// As [`Self::logical_error_rate_rare_on`] with a cooperative
    /// [`CancelToken`] threaded into the stratified estimator (see
    /// [`try_stratified_rate`]).
    pub fn try_logical_error_rate_rare_on(
        &self,
        pool: &WorkerPool,
        config: RareConfig,
        seed: u64,
        token: &CancelToken,
    ) -> Result<RareOutcome, Cancelled> {
        let slots = self.slot_noise();
        let mut recorder = RecordFaults::new();
        self.run_shot(&slots, &mut recorder);
        let sites = recorder.into_sites();
        let span = obs::span!(UEC_RUN_NS);
        let outcome = try_stratified_rate(
            pool,
            &sites,
            config,
            seed,
            MC_SHARD_SHOTS,
            token,
            |driver| self.run_shot(&slots, driver),
        )?;
        drop(span);
        UEC_SHOTS.add(outcome.report().total_shots as u64);
        Ok(outcome)
    }

    /// Precomputes the per-slot noise tables.
    fn slot_noise(&self) -> Vec<SlotNoise> {
        let stabs = self.code.stabilizers();
        self.schedule
            .checks
            .iter()
            .map(|slot| {
                let stab = &stabs[slot.stabilizer];
                let support: Vec<usize> = stab.iter_support().map(|(q, _)| q).collect();
                let anc_idle = self.usc.compute_idle.twirl_probs(slot.duration);
                // X/Y on the ancilla flips its Z readout; each CX can also
                // deposit a flipping component (8 of 15 depolarizing terms).
                let p_gate_anc = 1.0 - (1.0 - 8.0 / 15.0 * self.noise.p2q).powi(slot.weight as i32);
                let anc_flip = combine(
                    combine(anc_idle.px + anc_idle.py, p_gate_anc),
                    self.noise.meas_flip,
                );
                SlotNoise {
                    storage_uninvolved: self.usc.storage_idle.twirl_probs(slot.duration),
                    storage_involved: self
                        .usc
                        .storage_idle
                        .twirl_probs((slot.duration - slot.exposure).max(0.0)),
                    compute_exposure: self.usc.compute_idle.twirl_probs(slot.exposure),
                    anc_flip,
                    support,
                }
            })
            .collect()
    }

    /// One QEC cycle against an arbitrary [`FaultDriver`].
    ///
    /// The site-visit order is static — it never depends on sampled
    /// outcomes — which is what lets the same body serve the legacy
    /// Monte-Carlo path ([`RngFaults`], preserving the historical variate
    /// stream exactly), the site recorder, and the forced-fault replays of
    /// the rare-event estimator.
    fn run_shot<D: FaultDriver>(&self, slots: &[SlotNoise], driver: &mut D) -> bool {
        let n = self.code.num_qubits();
        let stabs = self.code.stabilizers();
        let mut error = PauliString::identity(n);
        let mut syndrome: u64 = 0;
        for (slot, sn) in self.schedule.checks.iter().zip(slots) {
            // Idle noise on every data qubit for this slot.
            for q in 0..n {
                let involved = sn.support.contains(&q);
                let probs = if involved {
                    sn.storage_involved
                } else {
                    sn.storage_uninvolved
                };
                driver.pauli_site(&mut error, q, probs);
                if involved {
                    driver.pauli_site(&mut error, q, sn.compute_exposure);
                }
            }
            // Gate noise: two SWAPs and one CX per involved qubit (the
            // data-side marginal of two-qubit depolarizing noise).
            let p_sw = self.noise.p_swap * 4.0 / 15.0;
            let p_cx = self.noise.p2q * 4.0 / 15.0;
            for &q in &sn.support {
                for _ in 0..2 {
                    driver.pauli_site(
                        &mut error,
                        q,
                        PauliProbs {
                            px: p_sw,
                            py: p_sw,
                            pz: p_sw,
                        },
                    );
                }
                driver.pauli_site(
                    &mut error,
                    q,
                    PauliProbs {
                        px: p_cx,
                        py: p_cx,
                        pz: p_cx,
                    },
                );
            }
            // Measured syndrome bit: the accumulated error so far, plus
            // ancilla/readout faults.
            let mut bit = !stabs[slot.stabilizer].commutes_with(&error);
            if driver.flip_site(sn.anc_flip) {
                bit = !bit;
            }
            if bit {
                syndrome |= 1 << slot.stabilizer;
            }
        }
        // Decode with the (noisy) measured syndrome using the
        // first-order circuit-fault table (partial syndromes from
        // mid-cycle errors decode to their own fault, never to a
        // spurious multi-qubit correction)...
        let correction = self
            .fault_table
            .get(&syndrome)
            .cloned()
            .unwrap_or_else(|| self.decoder.decode_bits(syndrome));
        let residual = error.xor(&correction);
        // ...then a perfect round resolves any leftover syndrome.
        let true_syn = pack_syndrome(&self.code.syndrome_of(&residual));
        let final_error = residual.xor(&self.decoder.decode_bits(true_syn));
        !self.code.in_normalizer(&final_error) || self.code.is_logical_error(&final_error)
    }
}

/// Per-slot noise table of one serialized check.
struct SlotNoise {
    storage_uninvolved: PauliProbs,
    storage_involved: PauliProbs,
    compute_exposure: PauliProbs,
    anc_flip: f64,
    support: Vec<usize>,
}

/// Builds the first-order circuit-fault decoding table for a temporally
/// ordered syndrome extraction.
///
/// `temporal_groups` lists the stabilizer indices measured at each step, in
/// order. A single data-qubit fault occurring before step `k` is seen only
/// by the checks at steps ≥ k, producing a *partial* syndrome; this table
/// maps every such partial syndrome (and every single measurement flip) to
/// a correction of weight ≤ 1, so that **every** single circuit fault
/// decodes without a logical error — the property circuit-level decoding
/// gives the paper's Stim pipeline, recovered here for lookup decoding.
pub fn first_order_table(
    code: &StabilizerCode,
    temporal_groups: &[Vec<usize>],
) -> std::collections::HashMap<u64, PauliString> {
    use std::collections::HashMap;
    let n = code.num_qubits();
    let stabs = code.stabilizers();
    // Gather every single fault's symptom, then resolve: a symptom claimed
    // by exactly one correction decodes to it; a symptom shared by several
    // distinct faults (or by a measurement flip, which wants "identity")
    // decodes to identity — the weight <= 1 residual is then fixed exactly
    // by the perfect round, so *every* single fault is harmless.
    let mut candidates: HashMap<u64, Vec<PauliString>> = HashMap::new();
    // Single measurement flips want the identity correction.
    for s in 0..stabs.len() {
        candidates
            .entry(1u64 << s)
            .or_default()
            .push(PauliString::identity(n));
    }
    for k in 0..temporal_groups.len() {
        for q in 0..n {
            for p in [Pauli::X, Pauli::Y, Pauli::Z] {
                let e = PauliString::from_sparse(n, &[(q, p)]);
                let mut symptom = 0u64;
                for group in &temporal_groups[k..] {
                    for &s in group {
                        if !stabs[s].commutes_with(&e) {
                            symptom |= 1 << s;
                        }
                    }
                }
                let entry = candidates.entry(symptom).or_default();
                if !entry.contains(&e) {
                    entry.push(e);
                }
            }
        }
    }
    let mut table: HashMap<u64, PauliString> = HashMap::new();
    table.insert(0, PauliString::identity(n));
    for (symptom, cands) in candidates {
        if symptom == 0 {
            continue;
        }
        let correction = if cands.len() == 1 {
            cands.into_iter().next().expect("one candidate")
        } else {
            PauliString::identity(n)
        };
        table.insert(symptom, correction);
    }
    table
}

pub(crate) fn combine(a: f64, b: f64) -> f64 {
    a * (1.0 - b) + b * (1.0 - a)
}

pub(crate) fn pack_syndrome(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

pub(crate) fn sample_pauli_into<R: Rng + ?Sized>(
    error: &mut PauliString,
    q: usize,
    probs: PauliProbs,
    rng: &mut R,
) {
    let total = probs.total();
    if total <= 0.0 {
        return;
    }
    let r: f64 = rng.gen();
    if r >= total {
        return;
    }
    let p = if r < probs.px {
        Pauli::X
    } else if r < probs.px + probs.py {
        Pauli::Y
    } else {
        Pauli::Z
    };
    let cur = error.get(q);
    let (cx, cz) = cur.xz();
    let (nx, nz) = p.xz();
    error.set(q, Pauli::from_xz(cx ^ nx, cz ^ nz));
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_cells::UscCell;
    use hetarch_devices::catalog::{coherence_limited_compute, coherence_limited_storage};
    use hetarch_stab::codes::{rotated_surface_code, steane};

    fn usc(ts: f64) -> UscChannel {
        UscCell::new(
            coherence_limited_compute(0.5e-3),
            coherence_limited_storage(ts),
        )
        .unwrap()
        .characterize()
    }

    #[test]
    fn noiseless_uec_never_fails() {
        let noise = UecNoise {
            p2q: 0.0,
            p_swap: 0.0,
            meas_flip: 0.0,
        };
        // Effectively infinite coherence everywhere.
        let ch = UscCell::new(
            coherence_limited_compute(1e3),
            coherence_limited_storage(1e3),
        )
        .unwrap()
        .characterize();
        let m = UecModule::new(steane(), ch, noise);
        let r = m.logical_error_rate(500, 3);
        assert_eq!(r.logical_error_rate, 0.0);
    }

    #[test]
    fn longer_storage_reduces_logical_error() {
        let noise = UecNoise::default();
        let short = UecModule::new(steane(), usc(0.5e-3), noise).logical_error_rate(4000, 7);
        let long = UecModule::new(steane(), usc(50e-3), noise).logical_error_rate(4000, 7);
        assert!(
            long.logical_error_rate < short.logical_error_rate,
            "Ts=50ms ({}) should beat Ts=0.5ms ({})",
            long.logical_error_rate,
            short.logical_error_rate
        );
    }

    #[test]
    fn cycle_duration_reported() {
        let m = UecModule::new(steane(), usc(1e-3), UecNoise::default());
        let r = m.logical_error_rate(10, 1);
        assert!(
            r.cycle_duration > 5e-6 && r.cycle_duration < 50e-6,
            "cycle duration {}",
            r.cycle_duration
        );
    }

    #[test]
    fn surface_code_runs_on_uec() {
        let m = UecModule::new(rotated_surface_code(3), usc(50e-3), UecNoise::default());
        let r = m.logical_error_rate(2000, 11);
        assert!(r.logical_error_rate < 0.2, "rate {}", r.logical_error_rate);
    }

    #[test]
    fn results_deterministic_for_seed() {
        let m = UecModule::new(steane(), usc(1e-3), UecNoise::default());
        let a = m.logical_error_rate(1000, 42);
        let b = m.logical_error_rate(1000, 42);
        assert_eq!(a.logical_error_rate, b.logical_error_rate);
    }

    #[test]
    fn rare_estimator_tracks_plain_estimator() {
        // At the default (high) noise the plain estimator is a trustworthy
        // oracle; the stratified estimate must agree within combined error
        // bars.
        let m = UecModule::new(steane(), usc(1e-3), UecNoise::default());
        let shots = 20_000;
        let plain = m.logical_error_rate(shots, 17).logical_error_rate;
        let plain_sigma = (plain * (1.0 - plain) / shots as f64).sqrt();
        let config = RareConfig {
            max_strata: 24,
            rel_tol: 0.02,
            shots_per_stratum: 4_000,
            ..RareConfig::default()
        };
        let outcome = m.logical_error_rate_rare(config, 19);
        let report = outcome.report();
        assert!(report.p_l > 0.0, "default noise must fail sometimes");
        let tolerance = 5.0 * (plain_sigma + report.sigma) + report.truncation_bound;
        assert!(
            (report.p_l - plain).abs() <= tolerance,
            "stratified {} vs plain {plain} (tolerance {tolerance})",
            report.p_l
        );
    }

    #[test]
    fn rare_estimator_is_worker_count_invariant() {
        let m = UecModule::new(steane(), usc(1e-3), UecNoise::default());
        let config = RareConfig {
            max_strata: 4,
            rel_tol: 0.5,
            shots_per_stratum: 1_024,
            enumerate_threshold: 64,
            ..RareConfig::default()
        };
        let reports: Vec<_> = [1usize, 3, 8]
            .iter()
            .map(|&w| {
                let pool = WorkerPool::new(w);
                m.logical_error_rate_rare_on(&pool, config, 23)
                    .into_report()
            })
            .collect();
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
    }
}
