//! The greedy distillation scheduler (paper §4.1).
//!
//! Priorities, in order:
//! 1. re-distill existing (already-distilled) pairs if it would yield
//!    improvement,
//! 2. move distilled pairs to output memory (handled automatically on
//!    completion by the module),
//! 3. distill new pairs if available,
//! 4. store incoming pairs in memory (handled on arrival).
//!
//! This module implements the *decision* part — 1 and 3 — as a pure
//! function over the memory pools so it can be tested and ablated in
//! isolation.

use hetarch_qsim::bell::DejmpsTable;
use serde::{Deserialize, Serialize};

use crate::distill::memory::PairMemory;

/// What the distiller should do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Run a DEJMPS round on the two best already-distilled pairs.
    RedistillStaged,
    /// Run a DEJMPS round on the two best raw pairs.
    DistillRaw,
    /// Nothing productive to do.
    Idle,
}

/// Scheduler policy knobs (for the ablation bench).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Policy {
    /// Enable priority 1 (re-distillation of staged pairs).
    pub redistill: bool,
    /// Require a predicted fidelity improvement before distilling.
    pub require_improvement: bool,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            redistill: true,
            require_improvement: true,
        }
    }
}

/// Predicts whether one DEJMPS round on the two best pairs of `pool` would
/// improve on the better input. Pools must already be decayed to "now".
fn round_improves(pool: &PairMemory, table: &DejmpsTable) -> Option<bool> {
    let slots = pool.slots();
    if slots.len() < 2 {
        return None;
    }
    // Allocation-free top-two scan. Strict `>` comparisons break ties toward
    // the earliest slot, reproducing the stable descending sort this replaced
    // (the scheduler runs per event, so its pair choice must stay
    // bit-identical for the determinism contract).
    let mut best_i = 0usize;
    let mut best_f = slots[0].pair.fidelity();
    let mut second_i = usize::MAX;
    let mut second_f = f64::NEG_INFINITY;
    for (i, s) in slots.iter().enumerate().skip(1) {
        let f = s.pair.fidelity();
        if f > best_f {
            second_i = best_i;
            second_f = best_f;
            best_i = i;
            best_f = f;
        } else if f > second_f {
            second_i = i;
            second_f = f;
        }
    }
    let out = table.round(&slots[best_i].pair, &slots[second_i].pair)?;
    Some(out.pair.fidelity() > best_f)
}

/// Chooses the next distiller action. Pools must be decayed to the current
/// time before calling.
pub fn choose_action(
    staged: &PairMemory,
    raw: &PairMemory,
    table: &DejmpsTable,
    policy: Policy,
) -> Action {
    if policy.redistill {
        if let Some(improves) = round_improves(staged, table) {
            if improves || !policy.require_improvement {
                return Action::RedistillStaged;
            }
        }
    }
    if let Some(improves) = round_improves(raw, table) {
        if improves || !policy.require_improvement {
            return Action::DistillRaw;
        }
    }
    Action::Idle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distill::memory::StoredPair;
    use hetarch_qsim::bell::{BellDiagonal, DistillNoise};
    use hetarch_qsim::channels::IdleParams;

    fn idle() -> IdleParams {
        IdleParams::new(1e-3, 1e-3).unwrap()
    }

    fn pool(fids: &[f64]) -> PairMemory {
        let mut m = PairMemory::new(8, idle());
        for &f in fids {
            m.insert(StoredPair::new(BellDiagonal::werner(f), 0.0));
        }
        m
    }

    #[test]
    fn staged_pairs_take_priority() {
        let table = DejmpsTable::new(&DistillNoise::default());
        let staged = pool(&[0.9, 0.9]);
        let raw = pool(&[0.8, 0.8]);
        assert_eq!(
            choose_action(&staged, &raw, &table, Policy::default()),
            Action::RedistillStaged
        );
    }

    #[test]
    fn falls_back_to_raw_pairs() {
        let table = DejmpsTable::new(&DistillNoise::default());
        let staged = pool(&[0.95]); // only one staged pair
        let raw = pool(&[0.8, 0.85]);
        assert_eq!(
            choose_action(&staged, &raw, &table, Policy::default()),
            Action::DistillRaw
        );
    }

    #[test]
    fn idles_when_nothing_improves() {
        let table = DejmpsTable::new(&DistillNoise::default());
        // Sub-0.5 Werner pairs cannot be improved by DEJMPS.
        let staged = pool(&[0.3, 0.3]);
        let raw = pool(&[0.3, 0.3]);
        assert_eq!(
            choose_action(&staged, &raw, &table, Policy::default()),
            Action::Idle
        );
    }

    #[test]
    fn improvement_gate_can_be_disabled() {
        let table = DejmpsTable::new(&DistillNoise::default());
        let staged = pool(&[0.3, 0.3]);
        let raw = pool(&[]);
        let policy = Policy {
            redistill: true,
            require_improvement: false,
        };
        assert_eq!(
            choose_action(&staged, &raw, &table, policy),
            Action::RedistillStaged
        );
    }

    #[test]
    fn redistill_ablation() {
        let table = DejmpsTable::new(&DistillNoise::default());
        let staged = pool(&[0.9, 0.9]);
        let raw = pool(&[0.8, 0.8]);
        let policy = Policy {
            redistill: false,
            ..Policy::default()
        };
        assert_eq!(
            choose_action(&staged, &raw, &table, policy),
            Action::DistillRaw
        );
    }

    #[test]
    fn empty_pools_idle() {
        let table = DejmpsTable::new(&DistillNoise::default());
        assert_eq!(
            choose_action(&pool(&[]), &pool(&[]), &table, Policy::default()),
            Action::Idle
        );
    }
}
