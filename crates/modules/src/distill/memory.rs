//! Pair memories with lazy idle decay.
//!
//! Stored EPs decay while they wait (the central problem Fig. 3 and Fig. 4
//! quantify). Decay is applied lazily: each pair remembers when it was last
//! brought up to date, and [`PairMemory::decay_to`] advances all pairs to
//! the current simulation time with the Pauli-twirled idle channel on both
//! halves.

use hetarch_qsim::bell::BellDiagonal;
use hetarch_qsim::channels::IdleParams;
use serde::{Deserialize, Serialize};

/// One stored entangled pair.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StoredPair {
    /// Bell-diagonal state of the pair.
    pub pair: BellDiagonal,
    /// Simulation time at which `pair` was last brought up to date.
    pub last_update: f64,
    /// Distillation rounds this pair has survived.
    pub rounds: u32,
}

impl StoredPair {
    /// Creates a fresh pair at time `t`.
    pub fn new(pair: BellDiagonal, t: f64) -> Self {
        StoredPair {
            pair,
            last_update: t,
            rounds: 0,
        }
    }
}

/// A bounded pool of stored pairs with a common idle model on both halves.
#[derive(Clone, Debug)]
pub struct PairMemory {
    capacity: usize,
    idle: IdleParams,
    slots: Vec<StoredPair>,
}

impl PairMemory {
    /// Creates an empty memory.
    pub fn new(capacity: usize, idle: IdleParams) -> Self {
        PairMemory {
            capacity,
            idle,
            slots: Vec::new(),
        }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True when at capacity.
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity
    }

    /// Capacity in pairs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The stored pairs (callers should [`Self::decay_to`] first).
    pub fn slots(&self) -> &[StoredPair] {
        &self.slots
    }

    /// Advances every stored pair to time `t`.
    pub fn decay_to(&mut self, t: f64) {
        for s in &mut self.slots {
            let dt = t - s.last_update;
            if dt > 0.0 {
                let probs = self.idle.twirl_probs(dt);
                s.pair.idle(probs, probs);
                s.last_update = t;
            }
        }
    }

    /// Inserts a pair; when full, the worst-fidelity pair (including the
    /// candidate) is dropped. Returns `true` when the candidate was kept.
    pub fn insert(&mut self, pair: StoredPair) -> bool {
        if !self.is_full() {
            self.slots.push(pair);
            return true;
        }
        let (worst_idx, worst) = self
            .slots
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.pair.fidelity().total_cmp(&b.1.pair.fidelity()))
            .expect("memory is full, hence non-empty");
        if worst.pair.fidelity() < pair.pair.fidelity() {
            self.slots[worst_idx] = pair;
            true
        } else {
            false
        }
    }

    /// Removes and returns the two best-fidelity pairs, if present.
    pub fn take_best_two(&mut self) -> Option<(StoredPair, StoredPair)> {
        if self.slots.len() < 2 {
            return None;
        }
        let a = self.take_best().expect("len >= 2");
        let b = self.take_best().expect("len >= 1");
        Some((a, b))
    }

    /// Removes and returns the best-fidelity pair.
    pub fn take_best(&mut self) -> Option<StoredPair> {
        if self.slots.is_empty() {
            return None;
        }
        let best_idx = self
            .slots
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.pair.fidelity().total_cmp(&b.1.pair.fidelity()))
            .map(|(i, _)| i)
            .expect("non-empty");
        Some(self.slots.swap_remove(best_idx))
    }

    /// Best fidelity currently stored (after decaying to `t`).
    pub fn best_fidelity(&mut self, t: f64) -> Option<f64> {
        self.decay_to(t);
        self.slots
            .iter()
            .map(|s| s.pair.fidelity())
            .max_by(f64::total_cmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle() -> IdleParams {
        IdleParams::new(0.5e-3, 0.5e-3).unwrap()
    }

    #[test]
    fn decay_reduces_fidelity_over_time() {
        let mut m = PairMemory::new(4, idle());
        m.insert(StoredPair::new(BellDiagonal::perfect(), 0.0));
        m.decay_to(100e-6);
        let f = m.slots()[0].pair.fidelity();
        assert!(f < 1.0 && f > 0.7, "decayed fidelity {f}");
        // Decay is idempotent once up to date.
        m.decay_to(100e-6);
        assert_eq!(m.slots()[0].pair.fidelity(), f);
    }

    #[test]
    fn insert_evicts_worst_when_full() {
        let mut m = PairMemory::new(2, idle());
        m.insert(StoredPair::new(BellDiagonal::werner(0.7), 0.0));
        m.insert(StoredPair::new(BellDiagonal::werner(0.9), 0.0));
        // Better than the worst: replaces it.
        assert!(m.insert(StoredPair::new(BellDiagonal::werner(0.8), 0.0)));
        let fids: Vec<f64> = m.slots().iter().map(|s| s.pair.fidelity()).collect();
        assert!(fids.iter().all(|&f| f > 0.75));
        // Worse than everything: dropped.
        assert!(!m.insert(StoredPair::new(BellDiagonal::werner(0.5), 0.0)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn take_best_two_returns_descending() {
        let mut m = PairMemory::new(4, idle());
        for f in [0.6, 0.9, 0.7] {
            m.insert(StoredPair::new(BellDiagonal::werner(f), 0.0));
        }
        let (a, b) = m.take_best_two().unwrap();
        assert!((a.pair.fidelity() - 0.9).abs() < 1e-12);
        assert!((b.pair.fidelity() - 0.7).abs() < 1e-12);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn take_best_two_needs_two() {
        let mut m = PairMemory::new(4, idle());
        m.insert(StoredPair::new(BellDiagonal::werner(0.8), 0.0));
        assert!(m.take_best_two().is_none());
        assert_eq!(m.len(), 1, "failed take must not consume");
    }
}
