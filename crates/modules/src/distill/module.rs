//! The entanglement-distillation module (paper §4.1, Figs. 1, 3, 4).
//!
//! Input memory (Register cells) accumulates stochastically generated EPs;
//! a ParCheck cell runs DEJMPS rounds under the greedy scheduler; purified
//! pairs land in an output memory where they keep decaying until consumed.

use hetarch_exec::{shard_seed, WorkerPool};
use hetarch_obs as obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use hetarch_cells::{ParCheckChannel, RegisterChannel};
use hetarch_qsim::bell::DejmpsTable;
use hetarch_qsim::channels::PauliProbs;

use crate::distill::memory::{PairMemory, StoredPair};
use crate::distill::scheduler::{choose_action, Action, Policy};
use crate::epsource::EpSource;
use crate::event::EventQueue;

// Distillation-module metrics (no-ops unless the `obs` feature is on and
// `HETARCH_OBS=1`).
static DISTILL_RUNS: obs::Counter = obs::Counter::new("modules.distill.runs");
static DISTILL_ROUNDS: obs::Counter = obs::Counter::new("modules.distill.rounds_attempted");
static DISTILL_DELIVERED: obs::Counter = obs::Counter::new("modules.distill.delivered");
static DISTILL_RUN_NS: obs::Histogram = obs::Histogram::new("modules.distill.run_ns");
static DISTILL_SIM_SECONDS: obs::Ledger = obs::Ledger::new("modules.distill.simulated_seconds");

/// Configuration of a distillation module run.
#[derive(Clone, Debug)]
pub struct DistillConfig {
    /// EP source feeding the module.
    pub source: EpSource,
    /// Output fidelity target (paper: 0.995).
    pub target_fidelity: f64,
    /// Input memory capacity in pairs (paper: two 3-mode Registers = 6).
    pub input_capacity: usize,
    /// Output memory capacity in pairs (paper: one 3-mode Register = 3).
    pub output_capacity: usize,
    /// Characterized Register channel used for the memories.
    pub register: RegisterChannel,
    /// Characterized ParCheck channel executing DEJMPS.
    pub parcheck: ParCheckChannel,
    /// Scheduler policy.
    pub policy: Policy,
    /// Remove pairs from the output memory as soon as they reach the target
    /// (rate measurements, Fig. 4). When `false`, delivered pairs accumulate
    /// and decay in the output memory (time traces, Fig. 3).
    pub consume_output: bool,
    /// Optional sampling interval for the fidelity trace.
    pub trace_interval: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

/// One point of the fidelity trace (Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Simulation time (seconds).
    pub time: f64,
    /// Best infidelity among raw/staged pairs in the input memory.
    pub memory_infidelity: Option<f64>,
    /// Best infidelity in the output memory.
    pub output_infidelity: Option<f64>,
}

/// Aggregate results of a run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DistillReport {
    /// Simulated wall-clock duration.
    pub duration: f64,
    /// Raw EPs generated.
    pub arrivals: usize,
    /// DEJMPS rounds started.
    pub rounds_attempted: usize,
    /// DEJMPS rounds that heralded success.
    pub rounds_succeeded: usize,
    /// Pairs delivered at or above the target fidelity.
    pub delivered: usize,
    /// Delivered pairs per second.
    pub delivered_rate_hz: f64,
    /// Best pair fidelity ever produced by a successful round (delivered or
    /// staged) — the achievable EP quality even when the target was never
    /// met (used by the code-teleportation module).
    pub best_fidelity: f64,
    /// Fidelity trace (empty unless `trace_interval` was set).
    pub trace: Vec<TracePoint>,
}

impl DistillConfig {
    /// The paper's heterogeneous configuration: coherence-limited devices
    /// with `T_C = 0.5 ms`, per-mode storage coherence `ts`, two 3-mode
    /// input Registers, one 3-mode output Register, target fidelity 0.995.
    pub fn heterogeneous(ts: f64, rate_hz: f64, seed: u64) -> Self {
        use hetarch_cells::{CellLibrary, ParCheckCell, RegisterCell};
        use hetarch_devices::catalog::{coherence_limited_compute, coherence_limited_storage};
        let lib = CellLibrary::new();
        let compute = coherence_limited_compute(0.5e-3);
        let storage = coherence_limited_storage(ts);
        DistillConfig {
            source: EpSource::paper_default(rate_hz),
            target_fidelity: 0.995,
            input_capacity: 6,
            output_capacity: 3,
            register: (*lib.get::<RegisterCell>(&compute, &storage)).clone(),
            parcheck: (*lib.get::<ParCheckCell>(&compute, &compute)).clone(),
            policy: Policy::default(),
            consume_output: true,
            trace_interval: None,
            seed,
        }
    }

    /// The homogeneous sea-of-qubits baseline: pairs are stored on compute
    /// qubits (`T_S = T_C = 0.5 ms`) and moved with ordinary two-qubit
    /// gates.
    pub fn homogeneous(rate_hz: f64, seed: u64) -> Self {
        use hetarch_cells::{CellLibrary, ParCheckCell, RegisterCell};
        use hetarch_devices::catalog::{coherence_limited_compute, homogeneous_pseudo_storage};
        let lib = CellLibrary::new();
        let tc = 0.5e-3;
        let compute = coherence_limited_compute(tc);
        let storage = homogeneous_pseudo_storage(tc, 3);
        DistillConfig {
            source: EpSource::paper_default(rate_hz),
            target_fidelity: 0.995,
            input_capacity: 6,
            output_capacity: 3,
            register: (*lib.get::<RegisterCell>(&compute, &storage)).clone(),
            parcheck: (*lib.get::<ParCheckCell>(&compute, &compute)).clone(),
            policy: Policy::default(),
            consume_output: true,
            trace_interval: None,
            seed,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    Arrival,
    DistillDone,
    Sample,
}

/// The event-driven distillation module simulator.
#[derive(Clone, Debug)]
pub struct DistillModule {
    config: DistillConfig,
    table: DejmpsTable,
}

impl DistillModule {
    /// Builds the module, precomputing the DEJMPS bilinear table for the
    /// ParCheck cell's noise.
    ///
    /// The table build pushes all 16 pure-Bell input combinations through
    /// one batched density-matrix pass on the active
    /// [`DmBackend`](hetarch_qsim::backend::DmBackend); both backends yield
    /// bit-identical tables, so every downstream report is
    /// backend-independent.
    pub fn new(config: DistillConfig) -> Self {
        let table = DejmpsTable::new(&config.parcheck.distill_noise());
        DistillModule { config, table }
    }

    /// Duration of one DEJMPS round on the hardware: two loads through the
    /// register port, the protocol gates, and the heralding readout.
    pub fn round_duration(&self) -> f64 {
        let c = &self.config;
        2.0 * c.register.load.duration
            + c.parcheck.gate_1q.time
            + c.parcheck.gate_2q.time
            + c.parcheck.readout_time
    }

    /// Pauli noise applied to each half of a pair when it moves through the
    /// register port (derived from the characterized load fidelity).
    fn move_noise(&self) -> PauliProbs {
        let p = 1.5 * self.config.register.load.infidelity();
        let third = (p / 3.0).min(1.0 / 3.0);
        PauliProbs {
            px: third,
            py: third,
            pz: third,
        }
    }

    /// Runs the module for `duration` seconds.
    pub fn run(&self, duration: f64) -> DistillReport {
        let span = obs::span!(DISTILL_RUN_NS);
        let c = &self.config;
        let mut rng = StdRng::seed_from_u64(c.seed);
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut raw = PairMemory::new(c.input_capacity, c.register.storage_idle);
        let mut staged = PairMemory::new(c.input_capacity, c.register.storage_idle);
        let mut output = PairMemory::new(c.output_capacity, c.register.storage_idle);
        let move_noise = self.move_noise();
        let round_time = self.round_duration();
        // The kept pair decays on compute qubits during the loads and the
        // protocol gates. The heralding readout (paper: 1 µs, error-free)
        // happens through the sacrificed pair's readout resonator and is not
        // charged to the kept pair — matching the paper's model in which
        // homogeneous systems fail from *idling* (waiting) errors rather
        // than a fixed per-round overhead.
        let in_flight = round_time - c.parcheck.readout_time;
        let compute_round_twirl = c.parcheck.idle_a.twirl_probs(in_flight);

        let mut busy: Option<(StoredPair, StoredPair)> = None;
        let mut report = DistillReport {
            duration,
            arrivals: 0,
            rounds_attempted: 0,
            rounds_succeeded: 0,
            delivered: 0,
            delivered_rate_hz: 0.0,
            best_fidelity: 0.0,
            trace: Vec::new(),
        };

        queue.schedule(c.source.next_interarrival(&mut rng), Ev::Arrival);
        if let Some(dt) = c.trace_interval {
            queue.schedule(dt, Ev::Sample);
        }

        while let Some((t, ev)) = queue.pop() {
            if t > duration {
                break;
            }
            match ev {
                Ev::Arrival => {
                    report.arrivals += 1;
                    raw.decay_to(t);
                    let mut pair = StoredPair::new(c.source.sample_pair(&mut rng), t);
                    // Priority 4: store the incoming pair (load through the
                    // register port).
                    pair.pair.idle(move_noise, move_noise);
                    raw.insert(pair);
                    queue.schedule_in(c.source.next_interarrival(&mut rng), Ev::Arrival);
                }
                Ev::DistillDone => {
                    let (mut a, mut b) = busy.take().expect("distiller was busy");
                    // The halves sat on compute qubits during the round.
                    a.pair.idle(compute_round_twirl, compute_round_twirl);
                    b.pair.idle(compute_round_twirl, compute_round_twirl);
                    if let Some(out) = self.table.round(&a.pair, &b.pair) {
                        if rng.gen::<f64>() < out.success_prob {
                            report.rounds_succeeded += 1;
                            let mut kept = StoredPair::new(out.pair, t);
                            kept.rounds = a.rounds.max(b.rounds) + 1;
                            // Priority 2: move to the appropriate memory.
                            kept.pair.idle(move_noise, move_noise);
                            report.best_fidelity = report.best_fidelity.max(kept.pair.fidelity());
                            staged.decay_to(t);
                            output.decay_to(t);
                            if kept.pair.fidelity() >= c.target_fidelity {
                                report.delivered += 1;
                                if !c.consume_output {
                                    output.insert(kept);
                                }
                            } else {
                                staged.insert(kept);
                            }
                        }
                    }
                }
                Ev::Sample => {
                    let mem_best = {
                        let a = raw.best_fidelity(t);
                        let b = staged.best_fidelity(t);
                        match (a, b) {
                            (Some(x), Some(y)) => Some(x.max(y)),
                            (x, y) => x.or(y),
                        }
                    };
                    report.trace.push(TracePoint {
                        time: t,
                        memory_infidelity: mem_best.map(|f| 1.0 - f),
                        output_infidelity: output.best_fidelity(t).map(|f| 1.0 - f),
                    });
                    if let Some(dt) = c.trace_interval {
                        queue.schedule_in(dt, Ev::Sample);
                    }
                }
            }
            // Priorities 1 and 3: (re)start the distiller when idle.
            if busy.is_none() {
                raw.decay_to(t);
                staged.decay_to(t);
                let action = choose_action(&staged, &raw, &self.table, c.policy);
                let pool = match action {
                    Action::RedistillStaged => Some(&mut staged),
                    Action::DistillRaw => Some(&mut raw),
                    Action::Idle => None,
                };
                if let Some(pool) = pool {
                    let (mut a, mut b) = pool.take_best_two().expect("scheduler checked");
                    // Load both pairs onto the ParCheck cell.
                    a.pair.idle(move_noise, move_noise);
                    b.pair.idle(move_noise, move_noise);
                    busy = Some((a, b));
                    report.rounds_attempted += 1;
                    queue.schedule_in(round_time, Ev::DistillDone);
                }
            }
        }
        report.delivered_rate_hz = report.delivered as f64 / duration;
        drop(span);
        DISTILL_RUNS.inc();
        DISTILL_ROUNDS.add(report.rounds_attempted as u64);
        DISTILL_DELIVERED.add(report.delivered as u64);
        DISTILL_SIM_SECONDS.add(duration);
        report
    }

    /// Runs `trials` independent Monte-Carlo replicas of the module for
    /// `duration` seconds each on the global [`WorkerPool`], returning the
    /// reports in trial order.
    ///
    /// Trial `t` is seeded with `shard_seed(config.seed, t)` — one trial per
    /// shard — so the batch is bit-identical for every worker count and
    /// each trial can be reproduced in isolation.
    pub fn run_batch(&self, duration: f64, trials: usize) -> Vec<DistillReport> {
        self.run_batch_on(WorkerPool::global(), duration, trials)
    }

    /// As [`Self::run_batch`] with an explicit worker pool.
    ///
    /// Every shard shares (by clone) the module's batch-built
    /// [`DejmpsTable`], so the density-matrix work behind the pair states
    /// runs once through the batched backend rather than once per shard;
    /// the per-shard event loops then evaluate the bilinear form only.
    pub fn run_batch_on(
        &self,
        pool: &WorkerPool,
        duration: f64,
        trials: usize,
    ) -> Vec<DistillReport> {
        pool.map_indexed(trials, |t| {
            let mut config = self.config.clone();
            config.seed = shard_seed(self.config.seed, t as u64);
            DistillModule {
                config,
                table: self.table.clone(),
            }
            .run(duration)
        })
    }

    /// Mean delivered rate over `trials` independent replicas (the
    /// high-shot estimator behind the Fig. 4 sweeps).
    pub fn mean_delivered_rate_hz(&self, duration: f64, trials: usize) -> f64 {
        if trials == 0 {
            return 0.0;
        }
        let reports = self.run_batch(duration, trials);
        reports.iter().map(|r| r.delivered_rate_hz).sum::<f64>() / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(ts: f64, rate_hz: f64) -> DistillConfig {
        let mut c = DistillConfig::heterogeneous(ts, rate_hz, 7);
        c.seed = 7;
        c
    }

    #[test]
    fn module_distills_pairs_at_high_rate() {
        let module = DistillModule::new(config(12.5e-3, 10e6));
        let report = module.run(2e-3);
        assert!(report.arrivals > 1000);
        assert!(report.rounds_attempted > 100);
        assert!(report.delivered > 0, "no pairs delivered: {report:?}");
    }

    #[test]
    fn longer_storage_delivers_more() {
        let rate = 1e6;
        let short = DistillModule::new(config(0.5e-3, rate)).run(5e-3);
        let long = DistillModule::new(config(12.5e-3, rate)).run(5e-3);
        assert!(
            long.delivered > short.delivered,
            "Ts=12.5ms delivered {} vs Ts=0.5ms delivered {}",
            long.delivered,
            short.delivered
        );
    }

    #[test]
    fn trace_records_fidelity_evolution() {
        let mut cfg = config(12.5e-3, 2e6);
        cfg.consume_output = false;
        cfg.trace_interval = Some(1e-6);
        let module = DistillModule::new(cfg);
        let report = module.run(100e-6);
        assert!(report.trace.len() > 50);
        // Once pairs appear in the output, their infidelity stays below the
        // raw band's lower edge for a while.
        let outs: Vec<f64> = report
            .trace
            .iter()
            .filter_map(|p| p.output_infidelity)
            .collect();
        assert!(!outs.is_empty(), "no output pairs in trace");
        assert!(outs.iter().cloned().fold(f64::MAX, f64::min) < 0.01);
    }

    #[test]
    fn round_duration_is_physical() {
        let module = DistillModule::new(config(1e-3, 1e6));
        let d = module.round_duration();
        // 2 loads (100 ns each) + 40 ns + 100 ns + 1 µs readout.
        assert!((d - (200e-9 + 40e-9 + 100e-9 + 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a = DistillModule::new(config(2.5e-3, 1e6)).run(1e-3);
        let b = DistillModule::new(config(2.5e-3, 1e6)).run(1e-3);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.rounds_attempted, b.rounds_attempted);
    }

    #[test]
    fn batch_is_worker_count_invariant() {
        use hetarch_exec::WorkerPool;
        let module = DistillModule::new(config(2.5e-3, 1e6));
        let one = module.run_batch_on(&WorkerPool::new(1), 500e-6, 6);
        for workers in [2, 8] {
            let many = module.run_batch_on(&WorkerPool::new(workers), 500e-6, 6);
            assert_eq!(one.len(), many.len());
            for (a, b) in one.iter().zip(&many) {
                assert_eq!(a.delivered, b.delivered);
                assert_eq!(a.rounds_attempted, b.rounds_attempted);
            }
        }
        // Trials use distinct derived seeds, so they are not all identical.
        assert!(
            one.iter()
                .any(|r| r.rounds_attempted != one[0].rounds_attempted)
                || one.iter().any(|r| r.delivered != one[0].delivered)
                || one.len() <= 1
        );
    }
}
