//! Entanglement distillation (paper §4.1): pair memories, the greedy
//! scheduler, and the event-driven module simulator behind Figs. 3 and 4.

pub mod memory;
pub mod module;
pub mod scheduler;

pub use memory::{PairMemory, StoredPair};
pub use module::{DistillConfig, DistillModule, DistillReport, TracePoint};
pub use scheduler::{choose_action, Action, Policy};
