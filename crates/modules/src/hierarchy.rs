//! The hierarchical design tree (paper §2, Figs. 1, 2, 5, 8, 11).
//!
//! HetArch's framework connects high-level subroutines to physical layouts
//! through three coincident hierarchies — modules execute subroutines, cells
//! execute operations, devices hold qubits — with flexible nesting (modules
//! may contain sub-modules; cells, sub-cells). A [`DesignNode`] captures one
//! level of that tree: leaves carry symbolic device layouts, inner nodes
//! group children, and every node exposes the characterized operations it
//! offers upward. Control overhead and physical footprint are *inherited
//! from the layers below* — exactly the roll-up `footprint()` computes.

use serde::{Deserialize, Serialize};

use hetarch_cells::OpChannel;
use hetarch_devices::footprint::{layout_cost, LayoutCost};
use hetarch_devices::rules::{validate, Violation};
use hetarch_devices::topology::DeviceGraph;

/// The level a node sits at (a guide to how it is characterized, per §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Executes subroutines; characterized by execution time, logical error
    /// rate and concurrency.
    Module,
    /// Executes operations; characterized by detailed (density-matrix)
    /// simulation.
    Cell,
    /// Holds qubits; the atomic layer.
    Device,
}

/// One node of the design hierarchy.
#[derive(Clone, Debug)]
pub struct DesignNode {
    name: String,
    level: Level,
    children: Vec<DesignNode>,
    layout: Option<(DeviceGraph, usize)>, // (devices, required readouts)
    ops: Vec<OpChannel>,
}

impl DesignNode {
    /// Creates an inner node.
    pub fn new(name: impl Into<String>, level: Level) -> Self {
        DesignNode {
            name: name.into(),
            level,
            children: Vec::new(),
            layout: None,
            ops: Vec::new(),
        }
    }

    /// Creates a leaf cell carrying a symbolic layout (with the number of
    /// readout-equipped devices its operations require, for DR4).
    pub fn leaf_cell(
        name: impl Into<String>,
        layout: DeviceGraph,
        required_readouts: usize,
    ) -> Self {
        DesignNode {
            name: name.into(),
            level: Level::Cell,
            children: Vec::new(),
            layout: Some((layout, required_readouts)),
            ops: Vec::new(),
        }
    }

    /// Adds a child (builder style).
    pub fn with_child(mut self, child: DesignNode) -> Self {
        self.children.push(child);
        self
    }

    /// Registers a characterized operation this node offers upward.
    pub fn with_op(mut self, op: OpChannel) -> Self {
        self.ops.push(op);
        self
    }

    /// Node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Node level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Children.
    pub fn children(&self) -> &[DesignNode] {
        &self.children
    }

    /// Operations offered by this node.
    pub fn ops(&self) -> &[OpChannel] {
        &self.ops
    }

    /// Finds a descendant by `/`-separated path (e.g. `"distill/parcheck"`).
    pub fn find(&self, path: &str) -> Option<&DesignNode> {
        let mut node = self;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            node = node.children.iter().find(|c| c.name == part)?;
        }
        Some(node)
    }

    /// Rolls up the physical cost (area, volume, control I/O, capacity) of
    /// the whole subtree — the §2 "module inherits a control overhead and
    /// physical footprint from the layers below".
    pub fn footprint(&self) -> LayoutCost {
        let mut total = self
            .layout
            .as_ref()
            .map(|(g, _)| layout_cost(g))
            .unwrap_or_default();
        for child in &self.children {
            let c = child.footprint();
            total.area_mm2 += c.area_mm2;
            total.volume_mm3 += c.volume_mm3;
            total.control.charge_lines += c.control.charge_lines;
            total.control.flux_lines += c.control.flux_lines;
            total.control.readout_lines += c.control.readout_lines;
            total.three_d_devices += c.three_d_devices;
            total.capacity += c.capacity;
        }
        total
    }

    /// Number of physical devices in the subtree.
    pub fn num_devices(&self) -> usize {
        self.layout
            .as_ref()
            .map(|(g, _)| g.num_devices())
            .unwrap_or(0)
            + self
                .children
                .iter()
                .map(DesignNode::num_devices)
                .sum::<usize>()
    }

    /// Validates every layout in the subtree against the design rules.
    ///
    /// # Errors
    ///
    /// Returns all violations, tagged with the offending node's name.
    pub fn validate_tree(&self) -> Result<(), Vec<(String, Violation)>> {
        let mut bad = Vec::new();
        if let Some((g, readouts)) = &self.layout {
            if let Err(vs) = validate(g, *readouts) {
                bad.extend(vs.into_iter().map(|v| (self.name.clone(), v)));
            }
        }
        for child in &self.children {
            if let Err(vs) = child.validate_tree() {
                bad.extend(vs);
            }
        }
        if bad.is_empty() {
            Ok(())
        } else {
            Err(bad)
        }
    }

    /// Renders the tree as indented text (the Figs. 1/2/8/11 view).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let tag = match self.level {
            Level::Module => "module",
            Level::Cell => "cell",
            Level::Device => "device",
        };
        let _ = write!(out, "{}{} [{}]", "  ".repeat(depth), self.name, tag);
        if !self.ops.is_empty() {
            let ops: Vec<&str> = self.ops.iter().map(|o| o.op.as_str()).collect();
            let _ = write!(out, " ops: {}", ops.join(", "));
        }
        if self.num_devices() > 0 && self.children.is_empty() {
            let _ = write!(out, " ({} devices)", self.num_devices());
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

/// Builds the Fig. 1 entanglement-distillation hierarchy from a device pair:
/// input memory (two Register cells) → distillation (one ParCheck) → output
/// memory (one Register), all characterized through the cell library.
pub fn distillation_design(
    lib: &hetarch_cells::CellLibrary,
    compute: &hetarch_devices::DeviceSpec,
    storage: &hetarch_devices::DeviceSpec,
) -> DesignNode {
    distillation_design_with_calib(
        lib,
        compute,
        storage,
        &hetarch_devices::calib::CalibSnapshot::default(),
    )
}

/// [`distillation_design`] with per-slot calibration overrides: every cell
/// is built and characterized with the snapshot entries matching its layout
/// labels. An empty snapshot reproduces [`distillation_design`] exactly
/// (same cache keys, same channels).
pub fn distillation_design_with_calib(
    lib: &hetarch_cells::CellLibrary,
    compute: &hetarch_devices::DeviceSpec,
    storage: &hetarch_devices::DeviceSpec,
    calib: &hetarch_devices::calib::CalibSnapshot,
) -> DesignNode {
    use hetarch_cells::{Cell, ParCheckCell, RegisterCell};
    let reg_cell = |name: &str| {
        let cell = RegisterCell::build_with_calib(compute.clone(), storage.clone(), calib)
            .expect("register obeys the design rules");
        let ch = lib.get_with_calib::<RegisterCell>(compute, storage, calib);
        DesignNode::leaf_cell(name, cell.layout().clone(), cell.required_readouts())
            .with_op(ch.load.clone())
    };
    let parcheck = {
        let cell = ParCheckCell::build_with_calib(compute.clone(), compute.clone(), calib)
            .expect("parcheck obeys the design rules");
        let ch = lib.get_with_calib::<ParCheckCell>(compute, compute, calib);
        DesignNode::leaf_cell("parcheck", cell.layout().clone(), cell.required_readouts())
            .with_op(ch.parity.clone())
    };
    DesignNode::new("entanglement-distillation", Level::Module)
        .with_child(
            DesignNode::new("input-memory", Level::Module)
                .with_child(reg_cell("register-0"))
                .with_child(reg_cell("register-1")),
        )
        .with_child(DesignNode::new("distill", Level::Module).with_child(parcheck))
        .with_child(
            DesignNode::new("output-memory", Level::Module).with_child(reg_cell("register-out")),
        )
}

/// Builds the Fig. 8 universal-error-correction hierarchy: a USC (optionally
/// chained with USC-EXTs) under one module node.
pub fn uec_design(
    lib: &hetarch_cells::CellLibrary,
    compute: &hetarch_devices::DeviceSpec,
    storage: &hetarch_devices::DeviceSpec,
    n_ext: usize,
) -> DesignNode {
    uec_design_with_calib(
        lib,
        compute,
        storage,
        n_ext,
        &hetarch_devices::calib::CalibSnapshot::default(),
    )
}

/// [`uec_design`] with per-slot calibration overrides (see
/// [`distillation_design_with_calib`]).
pub fn uec_design_with_calib(
    lib: &hetarch_cells::CellLibrary,
    compute: &hetarch_devices::DeviceSpec,
    storage: &hetarch_devices::DeviceSpec,
    n_ext: usize,
    calib: &hetarch_devices::calib::CalibSnapshot,
) -> DesignNode {
    let chain =
        hetarch_cells::UscChain::new_with_calib(compute.clone(), storage.clone(), n_ext, calib)
            .expect("chain obeys the design rules");
    let ch = lib.get_with_calib::<hetarch_cells::UscCell>(compute, storage, calib);
    // The chain is a composite (base USC + n_ext extensions, one readout
    // ancilla each), not a single Cell, so its readout budget is counted
    // here rather than through `required_readouts`.
    let usc_leaf = DesignNode::leaf_cell("usc-chain", chain.layout().clone(), 1 + n_ext)
        .with_op(ch.check2.clone());
    DesignNode::new("universal-error-correction", Level::Module).with_child(usc_leaf)
}

/// Builds the Fig. 11 code-teleportation hierarchy: distillation + two CAT
/// generators (SeqOp) + two UEC modules.
pub fn ct_design(
    lib: &hetarch_cells::CellLibrary,
    compute: &hetarch_devices::DeviceSpec,
    storage: &hetarch_devices::DeviceSpec,
) -> DesignNode {
    use hetarch_cells::{Cell, SeqOpCell};
    let cat = |name: &str| {
        let cell = SeqOpCell::build(compute.clone(), storage.clone())
            .expect("seqop obeys the design rules");
        let ch = lib.get::<SeqOpCell>(compute, storage);
        DesignNode::leaf_cell(name, cell.layout().clone(), cell.required_readouts())
            .with_op(ch.seq_cnot.clone())
            .with_op(ch.parity.clone())
    };
    DesignNode::new("code-teleportation", Level::Module)
        .with_child(distillation_design(lib, compute, storage))
        .with_child(DesignNode::new("cat-generator-a", Level::Module).with_child(cat("seqop-a")))
        .with_child(DesignNode::new("cat-generator-b", Level::Module).with_child(cat("seqop-b")))
        .with_child(uec_design(lib, compute, storage, 0))
        .with_child(uec_design(lib, compute, storage, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_cells::CellLibrary;
    use hetarch_devices::catalog::{coherence_limited_compute, coherence_limited_storage};

    fn devices() -> (hetarch_devices::DeviceSpec, hetarch_devices::DeviceSpec) {
        (
            coherence_limited_compute(0.5e-3),
            coherence_limited_storage(12.5e-3),
        )
    }

    #[test]
    fn distillation_tree_structure() {
        let lib = CellLibrary::new();
        let (c, s) = devices();
        let tree = distillation_design(&lib, &c, &s);
        assert_eq!(tree.children().len(), 3);
        assert!(tree.find("input-memory/register-0").is_some());
        assert!(tree.find("distill/parcheck").is_some());
        assert!(tree.find("nonexistent").is_none());
        // 3 registers x 2 devices + 1 parcheck x 2 devices.
        assert_eq!(tree.num_devices(), 8);
        tree.validate_tree()
            .expect("rule-compliant by construction");
    }

    #[test]
    fn footprint_rolls_up_from_leaves() {
        let lib = CellLibrary::new();
        let (c, s) = devices();
        let tree = distillation_design(&lib, &c, &s);
        let total = tree.footprint();
        let sub: f64 = tree
            .children()
            .iter()
            .map(|ch| ch.footprint().area_mm2)
            .sum();
        assert!((total.area_mm2 - sub).abs() < 1e-9);
        assert_eq!(total.capacity, 3 * 10 + 3 + 2); // 3 resonators + 5 qubits
                                                    // Exactly one readout line (the ParCheck ancilla, DR4).
        assert_eq!(total.control.readout_lines, 1);
    }

    #[test]
    fn ct_tree_contains_five_submodules() {
        let lib = CellLibrary::new();
        let (c, s) = devices();
        let tree = ct_design(&lib, &c, &s);
        assert_eq!(tree.children().len(), 5);
        tree.validate_tree().expect("rule-compliant");
        // Ops bubble up: the SeqOp leaves expose seq_cnot + parity.
        let cat = tree.find("cat-generator-a/seqop-a").unwrap();
        assert_eq!(cat.ops().len(), 2);
    }

    #[test]
    fn render_shows_all_levels() {
        let lib = CellLibrary::new();
        let (c, s) = devices();
        let text = uec_design(&lib, &c, &s, 1).render();
        assert!(text.contains("universal-error-correction [module]"));
        assert!(text.contains("usc-chain [cell]"));
        assert!(text.contains("ops: z_check_w2"));
    }

    #[test]
    fn invalid_layout_is_reported_with_node_name() {
        let mut g = DeviceGraph::new();
        let s1 = g.add_device("s1", coherence_limited_storage(1e-3), false);
        let s2 = g.add_device("s2", coherence_limited_storage(1e-3), false);
        g.connect(s1, s2); // storage-storage: violates DR2
        let tree = DesignNode::new("root", Level::Module)
            .with_child(DesignNode::leaf_cell("bad-cell", g, 0));
        let errs = tree.validate_tree().unwrap_err();
        assert!(errs.iter().all(|(name, _)| name == "bad-cell"));
        assert!(!errs.is_empty());
    }
}
