//! The homogeneous "sea-of-qubits" baseline (paper §4 preamble, §4.2.2).
//!
//! A square lattice of identical compute qubits. Codes whose checks are
//! square-lattice-native (the surface codes) run with parallel extraction
//! and no routing; everything else pays SWAP-chain routing costs, which is
//! why the paper's non-planar codes lose badly here. The router substitutes
//! for the paper's Qiskit transpiler at its highest optimization level: a
//! greedy nearest-placement embedding plus shortest-path SWAP insertion,
//! which converges to the same first-order SWAP counts for these small
//! circuits.

use hetarch_exec::rare::{RareConfig, RareOutcome};
use hetarch_exec::{CancelToken, Cancelled, WorkerPool};
use hetarch_obs as obs;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use hetarch_qsim::channels::{IdleParams, PauliProbs};
use hetarch_stab::codes::StabilizerCode;
use hetarch_stab::decoder::LookupDecoder;
use hetarch_stab::pauli::PauliString;

use crate::faults::{stratified_rate, FaultDriver, RecordFaults, RngFaults};
use crate::uec::sim::{combine, first_order_table, pack_syndrome, UecNoise};

use std::collections::HashMap;

// Homogeneous-baseline Monte-Carlo metrics (no-ops unless the `obs` feature
// is on and `HETARCH_OBS=1`).
static HOM_SHOTS: obs::Counter = obs::Counter::new("modules.baseline.shots");
static HOM_FAILURES: obs::Counter = obs::Counter::new("modules.baseline.failures");
static HOM_RUN_NS: obs::Histogram = obs::Histogram::new("modules.baseline.run_ns");

/// A square-lattice embedding of a code: data coordinates plus one ancilla
/// coordinate per stabilizer, with per-qubit routing distances.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Embedding {
    /// Data-qubit coordinates.
    pub data: Vec<(i32, i32)>,
    /// Ancilla coordinates, one per stabilizer generator.
    pub ancillas: Vec<(i32, i32)>,
    /// For each stabilizer, for each support qubit: SWAPs needed to bring it
    /// adjacent to the ancilla (0 when already adjacent).
    pub route_swaps: Vec<Vec<usize>>,
    /// True when the embedding is check-native (no routing anywhere).
    pub native: bool,
}

impl Embedding {
    /// Total SWAP count of one full round of checks.
    pub fn total_swaps(&self) -> usize {
        self.route_swaps.iter().flatten().sum()
    }
}

/// Embeds `code` in the square lattice.
///
/// Surface codes are native by construction (each ancilla sits inside its
/// plaquette). Other codes get the greedy embedding: data qubits in a
/// near-square grid at even coordinates, each ancilla at the free lattice
/// site closest to the centroid of its support; each support qubit then
/// needs `manhattan distance − 1` SWAPs to reach the ancilla.
pub fn embed(code: &StabilizerCode) -> Embedding {
    let native = code.name().starts_with("SC");
    let n = code.num_qubits();
    let cols = (n as f64).sqrt().ceil() as i32;
    let data: Vec<(i32, i32)> = (0..n as i32)
        .map(|q| (2 * (q / cols), 2 * (q % cols)))
        .collect();
    let mut used: Vec<(i32, i32)> = data.clone();
    let mut ancillas = Vec::new();
    let mut route_swaps = Vec::new();
    for s in code.stabilizers() {
        let support: Vec<usize> = s.iter_support().map(|(q, _)| q).collect();
        let cx: f64 = support.iter().map(|&q| data[q].0 as f64).sum::<f64>() / support.len() as f64;
        let cy: f64 = support.iter().map(|&q| data[q].1 as f64).sum::<f64>() / support.len() as f64;
        // Nearest free site to the centroid.
        let mut best: Option<((i32, i32), i64)> = None;
        let (rx, ry) = (cx.round() as i32, cy.round() as i32);
        for dx in -3..=3 {
            for dy in -3..=3 {
                let p = (rx + dx, ry + dy);
                if used.contains(&p) {
                    continue;
                }
                let d = support
                    .iter()
                    .map(|&q| ((data[q].0 - p.0).abs() + (data[q].1 - p.1).abs()) as i64)
                    .sum::<i64>();
                if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                    best = Some((p, d));
                }
            }
        }
        let (pos, _) = best.expect("a free site exists within radius 3");
        used.push(pos);
        ancillas.push(pos);
        let swaps: Vec<usize> = support
            .iter()
            .map(|&q| {
                if native {
                    0
                } else {
                    let d = (data[q].0 - pos.0).abs() + (data[q].1 - pos.1).abs();
                    (d as usize).saturating_sub(1)
                }
            })
            .collect();
        route_swaps.push(swaps);
    }
    Embedding {
        data,
        ancillas,
        route_swaps,
        native,
    }
}

/// Greedy layer coloring: checks whose supports overlap go in different
/// layers; layers execute sequentially, checks within a layer in parallel.
pub fn layer_checks(code: &StabilizerCode) -> Vec<Vec<usize>> {
    let supports: Vec<Vec<usize>> = code
        .stabilizers()
        .iter()
        .map(|s| s.iter_support().map(|(q, _)| q).collect())
        .collect();
    let mut layers: Vec<Vec<usize>> = Vec::new();
    for (i, sup) in supports.iter().enumerate() {
        let slot = layers.iter_mut().find(|layer| {
            layer
                .iter()
                .all(|&j| supports[j].iter().all(|q| !sup.contains(q)))
        });
        match slot {
            Some(layer) => layer.push(i),
            None => layers.push(vec![i]),
        }
    }
    layers
}

/// The homogeneous baseline module: parallel (layered) checks on a square
/// lattice with routing overhead.
#[derive(Clone, Debug)]
pub struct HomModule {
    code: StabilizerCode,
    noise: UecNoise,
    idle: IdleParams,
    embedding: Embedding,
    layers: Vec<Vec<usize>>,
    decoder: LookupDecoder,
    fault_table: HashMap<u64, PauliString>,
    t_2q: f64,
    t_meas: f64,
}

/// Result of a homogeneous baseline run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HomResult {
    /// Logical error probability per QEC cycle.
    pub logical_error_rate: f64,
    /// Cycle duration (seconds).
    pub cycle_duration: f64,
    /// Total routing SWAPs per cycle.
    pub swaps_per_cycle: usize,
}

impl HomModule {
    /// Builds the baseline for `code` with compute coherence `tc`
    /// (`T1 = T2 = tc`), 100 ns two-qubit gates and 1 µs readout.
    pub fn new(code: StabilizerCode, tc: f64, noise: UecNoise) -> Self {
        let embedding = embed(&code);
        let layers = layer_checks(&code);
        let weight_cap = (code.distance().div_ceil(2)).clamp(1, 3);
        let decoder = LookupDecoder::new(&code, weight_cap);
        let fault_table = first_order_table(&code, &layers);
        HomModule {
            code,
            noise,
            idle: IdleParams::new(tc, tc).expect("physical coherence"),
            embedding,
            layers,
            decoder,
            fault_table,
            t_2q: 100e-9,
            t_meas: 1e-6,
        }
    }

    /// The embedding in use.
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// Duration of one extraction layer: routing CX-chains (2 extra CXs per
    /// lattice hop — parity is collected along a path and uncomputed, the
    /// cheapest pattern the transpiler finds), the check CXs, and the
    /// readout.
    fn layer_duration(&self, layer: &[usize]) -> f64 {
        let mut worst: f64 = 0.0;
        for &s in layer {
            let w = self.embedding.route_swaps[s].len();
            let max_hops = self.embedding.route_swaps[s]
                .iter()
                .copied()
                .max()
                .unwrap_or(0);
            let d = (w as f64 + 2.0 * max_hops as f64) * self.t_2q + self.t_meas;
            worst = worst.max(d);
        }
        worst
    }

    /// Total cycle duration.
    pub fn cycle_duration(&self) -> f64 {
        self.layers.iter().map(|l| self.layer_duration(l)).sum()
    }

    /// Runs `shots` Monte-Carlo cycles.
    ///
    /// Shots are sharded over the global [`WorkerPool`] with the same
    /// `(seed, shard)` contract as [`crate::uec::UecModule`]: the result is
    /// bit-identical for every worker count. `shots == 0` reports zero.
    pub fn logical_error_rate(&self, shots: usize, seed: u64) -> HomResult {
        self.logical_error_rate_on(WorkerPool::global(), shots, seed)
    }

    /// As [`Self::logical_error_rate`] with an explicit worker pool.
    pub fn logical_error_rate_on(&self, pool: &WorkerPool, shots: usize, seed: u64) -> HomResult {
        let plan = self.layer_noise();
        let cycle_duration = self.cycle_duration();
        let span = obs::span!(HOM_RUN_NS);
        let failures = pool.fold_shards(
            shots,
            crate::uec::sim::MC_SHARD_SHOTS,
            seed,
            |shard| {
                let mut rng = StdRng::seed_from_u64(shard.seed);
                (0..shard.len)
                    .filter(|_| self.run_shot(&plan, &mut RngFaults::new(&mut rng)))
                    .count()
            },
            0usize,
            |acc, f| acc + f,
        );
        drop(span);
        HOM_SHOTS.add(shots as u64);
        HOM_FAILURES.add(failures as u64);
        HomResult {
            logical_error_rate: if shots == 0 {
                0.0
            } else {
                failures as f64 / shots as f64
            },
            cycle_duration,
            swaps_per_cycle: self.embedding.total_swaps(),
        }
    }

    /// As [`Self::logical_error_rate_on`] with a cooperative
    /// [`CancelToken`] checked between shards; a fired token returns
    /// [`Cancelled`] instead of finishing the run. An uncancelled call is
    /// bit-identical to [`Self::logical_error_rate_on`].
    pub fn try_logical_error_rate_on(
        &self,
        pool: &WorkerPool,
        shots: usize,
        seed: u64,
        token: &CancelToken,
    ) -> Result<HomResult, Cancelled> {
        let plan = self.layer_noise();
        let cycle_duration = self.cycle_duration();
        let span = obs::span!(HOM_RUN_NS);
        let failures = pool.try_fold_shards(
            shots,
            crate::uec::sim::MC_SHARD_SHOTS,
            seed,
            token,
            |shard| {
                let mut rng = StdRng::seed_from_u64(shard.seed);
                (0..shard.len)
                    .filter(|_| self.run_shot(&plan, &mut RngFaults::new(&mut rng)))
                    .count()
            },
            0usize,
            |acc, f| acc + f,
        )?;
        drop(span);
        HOM_SHOTS.add(shots as u64);
        HOM_FAILURES.add(failures as u64);
        Ok(HomResult {
            logical_error_rate: if shots == 0 {
                0.0
            } else {
                failures as f64 / shots as f64
            },
            cycle_duration,
            swaps_per_cycle: self.embedding.total_swaps(),
        })
    }

    /// Estimates the per-cycle logical error rate with the weight-stratified
    /// rare-event estimator (see [`hetarch_exec::rare`]) on the global
    /// [`WorkerPool`]; resolves deep-subthreshold rates the plain estimator
    /// cannot, with an explicit sigma and truncation bound.
    pub fn logical_error_rate_rare(&self, config: RareConfig, seed: u64) -> RareOutcome {
        self.logical_error_rate_rare_on(WorkerPool::global(), config, seed)
    }

    /// As [`Self::logical_error_rate_rare`] with an explicit worker pool.
    pub fn logical_error_rate_rare_on(
        &self,
        pool: &WorkerPool,
        config: RareConfig,
        seed: u64,
    ) -> RareOutcome {
        let plan = self.layer_noise();
        let mut recorder = RecordFaults::new();
        self.run_shot(&plan, &mut recorder);
        let sites = recorder.into_sites();
        let span = obs::span!(HOM_RUN_NS);
        let outcome = stratified_rate(
            pool,
            &sites,
            config,
            seed,
            crate::uec::sim::MC_SHARD_SHOTS,
            |driver| self.run_shot(&plan, driver),
        );
        drop(span);
        HOM_SHOTS.add(outcome.report().total_shots as u64);
        outcome
    }

    /// Per-layer noise precomputation.
    fn layer_noise(&self) -> ShotPlan {
        ShotPlan {
            layers: self
                .layers
                .iter()
                .map(|layer| LayerNoise {
                    idle: self.idle.twirl_probs(self.layer_duration(layer)),
                    checks: layer.clone(),
                })
                .collect(),
            supports: self
                .code
                .stabilizers()
                .iter()
                .map(|s| s.iter_support().map(|(q, _)| q).collect())
                .collect(),
        }
    }

    /// One QEC cycle against an arbitrary [`FaultDriver`]; the site-visit
    /// order is static, exactly as in [`crate::uec::UecModule`].
    fn run_shot<D: FaultDriver>(&self, plan: &ShotPlan, driver: &mut D) -> bool {
        let n = self.code.num_qubits();
        let stabs = self.code.stabilizers();
        let mut error = PauliString::identity(n);
        let mut syndrome = 0u64;
        for layer in &plan.layers {
            for q in 0..n {
                driver.pauli_site(&mut error, q, layer.idle);
            }
            for &s in &layer.checks {
                // Per-qubit gate noise: the CX plus the routing chain
                // (2 extra CXs per lattice hop).
                let support = &plan.supports[s];
                for (&q, &swaps) in support.iter().zip(&self.embedding.route_swaps[s]) {
                    let p_cx = self.noise.p2q * 4.0 / 15.0;
                    let n_gates = 1 + 2 * swaps;
                    let p = 1.0 - (1.0 - 3.0 * p_cx).powi(n_gates as i32);
                    let third = p / 3.0;
                    driver.pauli_site(
                        &mut error,
                        q,
                        PauliProbs {
                            px: third,
                            py: third,
                            pz: third,
                        },
                    );
                }
                // Ancilla flip: its CXs plus idle plus readout.
                let w = support.len();
                let p_gate_anc = 1.0 - (1.0 - 8.0 / 15.0 * self.noise.p2q).powi(w as i32);
                let anc_idle = layer.idle;
                let p_flip = combine(
                    combine(p_gate_anc, anc_idle.px + anc_idle.py),
                    self.noise.meas_flip,
                );
                let mut bit = !stabs[s].commutes_with(&error);
                if driver.flip_site(p_flip) {
                    bit = !bit;
                }
                if bit {
                    syndrome |= 1 << s;
                }
            }
        }
        let correction = self
            .fault_table
            .get(&syndrome)
            .cloned()
            .unwrap_or_else(|| self.decoder.decode_bits(syndrome));
        let residual = error.xor(&correction);
        let true_syn = pack_syndrome(&self.code.syndrome_of(&residual));
        let final_error = residual.xor(&self.decoder.decode_bits(true_syn));
        !self.code.in_normalizer(&final_error) || self.code.is_logical_error(&final_error)
    }
}

/// Per-layer noise table of the homogeneous baseline.
struct LayerNoise {
    idle: PauliProbs,
    checks: Vec<usize>,
}

/// Precomputed per-cycle tables shared by every shot.
struct ShotPlan {
    layers: Vec<LayerNoise>,
    /// Support qubits of each stabilizer.
    supports: Vec<Vec<usize>>,
}

/// The homogeneous baseline for surface codes: the known-optimal square
/// lattice transpilation is the standard parallel extraction circuit, so the
/// paper evaluates those with the full circuit-level pipeline rather than the
/// generic router. Returns the logical error rate **per round**.
pub fn hom_surface_logical_error(
    d: usize,
    tc: f64,
    noise: UecNoise,
    shots: usize,
    seed: u64,
) -> f64 {
    use hetarch_stab::codes::{SurfaceMemory, SurfaceNoise};
    let sn = SurfaceNoise {
        t_data: tc,
        t_anc: tc,
        p1: 0.0,
        p2: noise.p2q,
        p_meas: noise.meas_flip,
        ..SurfaceNoise::default()
    };
    let (_, per_round) = SurfaceMemory::new(d, d, sn).logical_error_rate(shots, seed);
    per_round
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_stab::codes::{color_17, reed_muller_15, rotated_surface_code, steane};

    #[test]
    fn surface_codes_are_native() {
        for d in [3, 4] {
            let e = embed(&rotated_surface_code(d));
            assert!(e.native);
            assert_eq!(e.total_swaps(), 0);
        }
    }

    #[test]
    fn non_planar_codes_need_routing() {
        for code in [steane(), color_17(), reed_muller_15()] {
            let e = embed(&code);
            assert!(!e.native);
            assert!(
                e.total_swaps() > 0,
                "{} should need SWAPs on a square lattice",
                code.name()
            );
        }
    }

    #[test]
    fn reed_muller_routes_worst() {
        // The non-planar RM code has weight-8 checks: it should need more
        // routing than Steane's weight-4 planar-ish checks.
        let rm = embed(&reed_muller_15()).total_swaps();
        let st = embed(&steane()).total_swaps();
        assert!(rm > st, "RM swaps {rm} vs Steane swaps {st}");
    }

    #[test]
    fn layers_partition_all_checks() {
        for code in [steane(), rotated_surface_code(3)] {
            let layers = layer_checks(&code);
            let total: usize = layers.iter().map(|l| l.len()).sum();
            assert_eq!(total, code.stabilizers().len());
            // Within a layer, supports are disjoint.
            for layer in &layers {
                let mut seen = std::collections::HashSet::new();
                for &s in layer {
                    for (q, _) in code.stabilizers()[s].iter_support() {
                        assert!(seen.insert(q), "{}: overlapping layer", code.name());
                    }
                }
            }
        }
    }

    #[test]
    fn surface_code_beats_non_native_codes_homogeneously() {
        let noise = UecNoise::default();
        let shots = 4000;
        let sc =
            HomModule::new(rotated_surface_code(3), 0.5e-3, noise).logical_error_rate(shots, 5);
        let rm = HomModule::new(reed_muller_15(), 0.5e-3, noise).logical_error_rate(shots, 5);
        assert!(
            sc.logical_error_rate < rm.logical_error_rate,
            "native SC3 ({}) should beat routed RM ({})",
            sc.logical_error_rate,
            rm.logical_error_rate
        );
    }

    #[test]
    fn cycle_duration_accounts_for_routing() {
        let noise = UecNoise::default();
        let sc = HomModule::new(rotated_surface_code(3), 0.5e-3, noise);
        let rm = HomModule::new(reed_muller_15(), 0.5e-3, noise);
        assert!(rm.cycle_duration() > sc.cycle_duration());
    }

    #[test]
    fn rare_estimator_tracks_plain_baseline() {
        let m = HomModule::new(steane(), 0.5e-3, UecNoise::default());
        let shots = 20_000;
        let plain = m.logical_error_rate(shots, 29).logical_error_rate;
        let plain_sigma = (plain * (1.0 - plain) / shots as f64).sqrt();
        let config = RareConfig {
            max_strata: 24,
            rel_tol: 0.02,
            shots_per_stratum: 4_000,
            ..RareConfig::default()
        };
        let report = m.logical_error_rate_rare(config, 31).into_report();
        assert!(report.p_l > 0.0);
        let tolerance = 5.0 * (plain_sigma + report.sigma) + report.truncation_bound;
        assert!(
            (report.p_l - plain).abs() <= tolerance,
            "stratified {} vs plain {plain} (tolerance {tolerance})",
            report.p_l
        );
    }
}
