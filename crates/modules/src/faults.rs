//! Fault-site drivers: the seam between the module Monte-Carlo shot bodies
//! and the rare-event estimator.
//!
//! The UEC and baseline simulators visit their fault sites in a **static
//! order** — the sequence of [`FaultDriver`] calls a shot makes never
//! depends on sampled outcomes. That property turns one shot body into
//! three estimators:
//!
//! * [`RngFaults`] draws every site from an RNG — the legacy Monte-Carlo
//!   path, consuming the exact same variate stream as the original inlined
//!   sampling (one `f64` per Pauli site with positive total probability,
//!   one per ancilla-flip site unconditionally), so pre-existing seeds and
//!   goldens are preserved bit for bit.
//! * [`RecordFaults`] applies nothing and writes down each site's trigger
//!   probability — one "dry" shot yields the full site table from which the
//!   Poisson-binomial weight prior is built.
//! * [`ForcedFaults`] replays a fixed weight-`w` fault configuration — the
//!   conditioned shots of the stratified estimator.
//!
//! [`stratified_rate`] wires the three together under
//! [`hetarch_exec::rare::StratifiedEstimator`].

use hetarch_exec::rare::{
    enumerate_configs, ConditionalSampler, RareConfig, RareOutcome, StratifiedEstimator,
    StratumEval, WeightPrior,
};
use hetarch_exec::{shard_seed, CancelToken, Cancelled, WorkerPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hetarch_qsim::channels::PauliProbs;
use hetarch_stab::pauli::{Pauli, PauliString};

use crate::uec::sim::sample_pauli_into;

/// One shot's source of fault decisions.
///
/// A shot body calls [`FaultDriver::pauli_site`] once per potential Pauli
/// fault location and [`FaultDriver::flip_site`] once per potential
/// classical-flip location, always in the same order.
pub trait FaultDriver {
    /// Visits a Pauli fault site on qubit `q` with per-Pauli trigger
    /// probabilities `probs`; the driver may XOR a Pauli into `error`.
    fn pauli_site(&mut self, error: &mut PauliString, q: usize, probs: PauliProbs);

    /// Visits a classical bit-flip site of probability `p`; returns whether
    /// the flip fires.
    fn flip_site(&mut self, p: f64) -> bool;
}

/// The legacy Monte-Carlo driver: sample every site from `rng`.
///
/// Stream contract (matches the historical inlined code exactly): a Pauli
/// site consumes one variate iff its total probability is positive — the
/// same draw decides both whether the site triggers and which Pauli it
/// deposits — and a flip site always consumes exactly one variate.
pub struct RngFaults<'a, R: Rng + ?Sized> {
    rng: &'a mut R,
}

impl<'a, R: Rng + ?Sized> RngFaults<'a, R> {
    /// Wraps an RNG.
    pub fn new(rng: &'a mut R) -> Self {
        RngFaults { rng }
    }
}

impl<R: Rng + ?Sized> FaultDriver for RngFaults<'_, R> {
    fn pauli_site(&mut self, error: &mut PauliString, q: usize, probs: PauliProbs) {
        sample_pauli_into(error, q, probs, self.rng);
    }

    fn flip_site(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }
}

/// The probabilities of one recorded fault site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SiteProbs {
    /// A single-qubit Pauli channel site (3 variants: X, Y, Z).
    Pauli(PauliProbs),
    /// A classical readout/ancilla flip site (1 variant).
    Flip(f64),
}

impl SiteProbs {
    /// Probability that the site triggers at all.
    pub fn trigger(&self) -> f64 {
        match self {
            SiteProbs::Pauli(p) => p.total().min(1.0),
            SiteProbs::Flip(p) => p.min(1.0),
        }
    }

    /// Number of fault variants at this site.
    pub fn variant_count(&self) -> usize {
        match self {
            SiteProbs::Pauli(_) => 3,
            SiteProbs::Flip(_) => 1,
        }
    }

    /// Conditional probability of variant `v` given the site triggered
    /// (X, Y, Z in that order for Pauli sites).
    pub fn variant_weight(&self, v: usize) -> f64 {
        match self {
            SiteProbs::Pauli(p) => {
                let total = p.total();
                if total <= 0.0 {
                    return 0.0;
                }
                [p.px, p.py, p.pz][v] / total
            }
            SiteProbs::Flip(_) => 1.0,
        }
    }

    /// Draws a variant from the conditional distribution.
    pub fn sample_variant<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match self {
            SiteProbs::Pauli(p) => {
                let r: f64 = rng.gen::<f64>() * p.total();
                if r < p.px {
                    0
                } else if r < p.px + p.py {
                    1
                } else {
                    2
                }
            }
            SiteProbs::Flip(_) => 0,
        }
    }
}

/// A dry-run driver that records each visited site's probabilities without
/// injecting any fault.
#[derive(Clone, Debug, Default)]
pub struct RecordFaults {
    sites: Vec<SiteProbs>,
}

impl RecordFaults {
    /// An empty recorder.
    pub fn new() -> Self {
        RecordFaults::default()
    }

    /// The recorded site table, in visit order.
    pub fn into_sites(self) -> Vec<SiteProbs> {
        self.sites
    }
}

impl FaultDriver for RecordFaults {
    fn pauli_site(&mut self, _error: &mut PauliString, _q: usize, probs: PauliProbs) {
        self.sites.push(SiteProbs::Pauli(probs));
    }

    fn flip_site(&mut self, p: f64) -> bool {
        self.sites.push(SiteProbs::Flip(p));
        false
    }
}

/// A driver that replays a fixed fault configuration: site `i` fires with
/// its assigned variant; every other site stays idle.
#[derive(Clone, Debug)]
pub struct ForcedFaults {
    assigned: Vec<Option<u8>>,
    cursor: usize,
}

impl ForcedFaults {
    /// A configuration over `num_sites` sites firing the given
    /// `(site, variant)` pairs.
    pub fn new(num_sites: usize, hits: &[(usize, usize)]) -> Self {
        let mut f = ForcedFaults {
            assigned: vec![None; num_sites],
            cursor: 0,
        };
        f.reset(hits);
        f
    }

    /// Rewinds and reassigns the fired sites (reuses the allocation across
    /// shots).
    pub fn reset(&mut self, hits: &[(usize, usize)]) {
        self.assigned.fill(None);
        self.cursor = 0;
        for &(site, variant) in hits {
            self.assigned[site] = Some(variant as u8);
        }
    }

    /// Number of sites visited so far.
    pub fn sites_visited(&self) -> usize {
        self.cursor
    }

    fn next(&mut self) -> Option<u8> {
        let v = self.assigned[self.cursor];
        self.cursor += 1;
        v
    }
}

impl FaultDriver for ForcedFaults {
    fn pauli_site(&mut self, error: &mut PauliString, q: usize, _probs: PauliProbs) {
        if let Some(v) = self.next() {
            let p = match v {
                0 => Pauli::X,
                1 => Pauli::Y,
                _ => Pauli::Z,
            };
            let (cx, cz) = error.get(q).xz();
            let (nx, nz) = p.xz();
            error.set(q, Pauli::from_xz(cx ^ nx, cz ^ nz));
        }
    }

    fn flip_site(&mut self, _p: f64) -> bool {
        self.next().is_some()
    }
}

/// Runs the weight-stratified rare-event estimator over a recorded site
/// table.
///
/// `run_shot` executes one shot against a [`ForcedFaults`] driver and
/// returns whether it failed. Per stratum the driver either enumerates every
/// fault configuration (at most `config.enumerate_threshold` of them) or
/// draws `config.shots_per_stratum` conditioned samples, sharded over `pool`
/// at `shard_shots` shots per shard with the per-stratum seed
/// `shard_seed(seed, w)` — the result is bit-identical for every worker
/// count.
pub fn stratified_rate<F>(
    pool: &WorkerPool,
    sites: &[SiteProbs],
    config: RareConfig,
    seed: u64,
    shard_shots: usize,
    run_shot: F,
) -> RareOutcome
where
    F: Fn(&mut ForcedFaults) -> bool + Sync,
{
    match stratified_rate_inner(pool, sites, config, seed, shard_shots, None, run_shot) {
        Ok(outcome) => outcome,
        Err(Cancelled) => unreachable!("no token, no cancellation"),
    }
}

/// As [`stratified_rate`] with a cooperative [`CancelToken`]: the token is
/// checked between shards of each sampled stratum and periodically inside
/// enumerated strata, so cancelling a deep-subthreshold estimate releases
/// the pool promptly instead of finishing every stratum.
pub fn try_stratified_rate<F>(
    pool: &WorkerPool,
    sites: &[SiteProbs],
    config: RareConfig,
    seed: u64,
    shard_shots: usize,
    token: &CancelToken,
    run_shot: F,
) -> Result<RareOutcome, Cancelled>
where
    F: Fn(&mut ForcedFaults) -> bool + Sync,
{
    stratified_rate_inner(
        pool,
        sites,
        config,
        seed,
        shard_shots,
        Some(token),
        run_shot,
    )
}

fn stratified_rate_inner<F>(
    pool: &WorkerPool,
    sites: &[SiteProbs],
    config: RareConfig,
    seed: u64,
    shard_shots: usize,
    token: Option<&CancelToken>,
    run_shot: F,
) -> Result<RareOutcome, Cancelled>
where
    F: Fn(&mut ForcedFaults) -> bool + Sync,
{
    let cancelled = || token.is_some_and(CancelToken::is_cancelled);
    let trigger: Vec<f64> = sites.iter().map(|s| s.trigger()).collect();
    let prior = WeightPrior::poisson_binomial(&trigger);
    let outcome = StratifiedEstimator::new(&prior, config).run(|w| {
        // After cancellation every remaining stratum reports zero shots: the
        // estimator charges its prior mass to the truncation bound and its
        // convergence loop terminates quickly. The partial outcome is
        // discarded below.
        if cancelled() {
            return StratumEval::Sampled {
                failures: 0,
                shots: 0,
            };
        }
        let enumerated = enumerate_configs(
            &trigger,
            w,
            config.enumerate_threshold,
            &|i| sites[i].variant_count(),
            &|i, v| sites[i].variant_weight(v),
        );
        match enumerated {
            Some(configs) => {
                let count = configs.len() as u64;
                let mut driver = ForcedFaults::new(sites.len(), &[]);
                let mut failure_probability = 0.0;
                for (k, cfg) in configs.iter().enumerate() {
                    if k % 64 == 0 && cancelled() {
                        return StratumEval::Sampled {
                            failures: 0,
                            shots: 0,
                        };
                    }
                    driver.reset(&cfg.sites);
                    if run_shot(&mut driver) {
                        failure_probability += cfg.weight;
                    }
                }
                StratumEval::Enumerated {
                    failure_probability,
                    configs: count,
                }
            }
            None => {
                let sampler = ConditionalSampler::new(&trigger, w);
                let stratum_seed = shard_seed(seed, w as u64);
                let shard_body = |shard: &hetarch_exec::Shard| {
                    let mut rng = StdRng::seed_from_u64(shard.seed);
                    let mut subset = Vec::new();
                    let mut hits: Vec<(usize, usize)> = Vec::new();
                    let mut driver = ForcedFaults::new(sites.len(), &[]);
                    (0..shard.len)
                        .filter(|_| {
                            sampler.sample_into(&mut || rng.gen::<f64>(), &mut subset);
                            hits.clear();
                            for &i in &subset {
                                hits.push((i, sites[i].sample_variant(&mut rng)));
                            }
                            driver.reset(&hits);
                            run_shot(&mut driver)
                        })
                        .count() as u64
                };
                let failures = match token {
                    None => Some(pool.fold_shards(
                        config.shots_per_stratum,
                        shard_shots,
                        stratum_seed,
                        shard_body,
                        0u64,
                        |acc, f| acc + f,
                    )),
                    Some(t) => pool
                        .try_fold_shards(
                            config.shots_per_stratum,
                            shard_shots,
                            stratum_seed,
                            t,
                            shard_body,
                            0u64,
                            |acc, f| acc + f,
                        )
                        .ok(),
                };
                match failures {
                    Some(failures) => StratumEval::Sampled {
                        failures,
                        shots: config.shots_per_stratum,
                    },
                    // Cancelled mid-stratum: report zero shots (prior mass
                    // goes to truncation) and let the loop wind down.
                    None => StratumEval::Sampled {
                        failures: 0,
                        shots: 0,
                    },
                }
            }
        }
    });
    if cancelled() {
        return Err(Cancelled);
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn probs(px: f64, py: f64, pz: f64) -> PauliProbs {
        PauliProbs { px, py, pz }
    }

    /// A toy shot body with 3 Pauli sites on one qubit and one flip site;
    /// "failure" = final error anticommutes with Z (i.e. has X support) or
    /// the flip fired.
    fn toy_shot(driver: &mut impl FaultDriver) -> bool {
        let mut error = PauliString::identity(1);
        driver.pauli_site(&mut error, 0, probs(0.01, 0.0, 0.0));
        driver.pauli_site(&mut error, 0, probs(0.02, 0.0, 0.005));
        driver.pauli_site(&mut error, 0, probs(0.0, 0.0, 0.0));
        let flipped = driver.flip_site(0.03);
        let (x, _) = error.get(0).xz();
        x || flipped
    }

    #[test]
    fn rng_driver_matches_inlined_sampling() {
        // Same seed through the driver and through the historical inlined
        // code must produce identical outcomes.
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..2000 {
            let via_driver = toy_shot(&mut RngFaults::new(&mut a));
            let direct = {
                let mut error = PauliString::identity(1);
                sample_pauli_into(&mut error, 0, probs(0.01, 0.0, 0.0), &mut b);
                sample_pauli_into(&mut error, 0, probs(0.02, 0.0, 0.005), &mut b);
                sample_pauli_into(&mut error, 0, probs(0.0, 0.0, 0.0), &mut b);
                let flipped = b.gen::<f64>() < 0.03;
                let (x, _) = error.get(0).xz();
                x || flipped
            };
            assert_eq!(via_driver, direct);
        }
    }

    #[test]
    fn recorder_captures_static_site_table() {
        let mut rec = RecordFaults::new();
        let failed = toy_shot(&mut rec);
        assert!(!failed, "recorder must not inject faults");
        let sites = rec.into_sites();
        assert_eq!(sites.len(), 4);
        assert_eq!(sites[0].trigger(), 0.01);
        assert_eq!(sites[1].trigger(), 0.025);
        assert_eq!(sites[2].trigger(), 0.0);
        assert_eq!(sites[3], SiteProbs::Flip(0.03));
        // Variant weights are conditional on triggering.
        assert!((sites[1].variant_weight(0) - 0.02 / 0.025).abs() < 1e-15);
        assert!((sites[1].variant_weight(2) - 0.005 / 0.025).abs() < 1e-15);
        assert_eq!(sites[3].variant_weight(0), 1.0);
    }

    #[test]
    fn forced_driver_replays_exact_configuration() {
        // Fire site 1 with a Z (variant 2): no X support, no flip.
        let mut d = ForcedFaults::new(4, &[(1, 2)]);
        assert!(!toy_shot(&mut d));
        assert_eq!(d.sites_visited(), 4);
        // Fire site 0 with an X (variant 0): failure.
        let mut d = ForcedFaults::new(4, &[(0, 0)]);
        assert!(toy_shot(&mut d));
        // Fire only the flip site: failure.
        let mut d = ForcedFaults::new(4, &[(3, 0)]);
        assert!(toy_shot(&mut d));
    }

    #[test]
    fn stratified_rate_matches_analytic_toy_rate() {
        // Exact failure probability of `toy_shot` under independent sites:
        // fail unless (no X deposited net) and (no flip). Sites 0 and 1
        // deposit X with prob 0.01 and 0.02; two X's cancel.
        let sites = [
            SiteProbs::Pauli(probs(0.01, 0.0, 0.0)),
            SiteProbs::Pauli(probs(0.02, 0.0, 0.005)),
            SiteProbs::Pauli(probs(0.0, 0.0, 0.0)),
            SiteProbs::Flip(0.03),
        ];
        let p_no_x = 0.99 * 0.98 + 0.01 * 0.02;
        let expect = 1.0 - p_no_x * 0.97;
        let config = RareConfig {
            max_strata: 5,
            rel_tol: 0.0,
            abs_tol: 1e-16,
            enumerate_threshold: 1 << 20,
            ..RareConfig::default()
        };
        let pool = WorkerPool::new(2);
        let outcome = stratified_rate(&pool, &sites, config, 7, 64, toy_shot);
        assert!(outcome.is_converged());
        let report = outcome.report();
        assert!(
            (report.p_l - expect).abs() < 1e-12,
            "stratified {} vs analytic {expect}",
            report.p_l
        );
        assert_eq!(report.sigma, 0.0, "fully enumerated run has no variance");
    }

    #[test]
    fn sampled_strata_are_worker_count_invariant() {
        let sites = [
            SiteProbs::Pauli(probs(0.01, 0.0, 0.0)),
            SiteProbs::Pauli(probs(0.02, 0.0, 0.005)),
            SiteProbs::Pauli(probs(0.0, 0.0, 0.0)),
            SiteProbs::Flip(0.03),
        ];
        // Force the sampling path everywhere.
        let config = RareConfig {
            max_strata: 3,
            rel_tol: 0.5,
            shots_per_stratum: 500,
            enumerate_threshold: 0,
            ..RareConfig::default()
        };
        let runs: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&workers| {
                let pool = WorkerPool::new(workers);
                stratified_rate(&pool, &sites, config, 13, 64, toy_shot).into_report()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn uncancelled_try_stratified_rate_is_bit_identical() {
        let sites = [
            SiteProbs::Pauli(probs(0.01, 0.0, 0.0)),
            SiteProbs::Pauli(probs(0.02, 0.0, 0.005)),
            SiteProbs::Pauli(probs(0.0, 0.0, 0.0)),
            SiteProbs::Flip(0.03),
        ];
        let config = RareConfig {
            max_strata: 3,
            rel_tol: 0.5,
            shots_per_stratum: 500,
            enumerate_threshold: 0,
            ..RareConfig::default()
        };
        let pool = WorkerPool::new(2);
        let plain = stratified_rate(&pool, &sites, config, 13, 64, toy_shot).into_report();
        let token = CancelToken::new();
        let tried = try_stratified_rate(&pool, &sites, config, 13, 64, &token, toy_shot)
            .unwrap()
            .into_report();
        assert_eq!(plain, tried);
    }

    #[test]
    fn cancelled_stratified_rate_returns_err() {
        let sites = [
            SiteProbs::Pauli(probs(0.01, 0.0, 0.0)),
            SiteProbs::Flip(0.03),
        ];
        let pool = WorkerPool::new(2);
        let token = CancelToken::new();
        token.cancel();
        let out = try_stratified_rate(
            &pool,
            &sites,
            RareConfig::default(),
            13,
            64,
            &token,
            toy_shot,
        );
        assert_eq!(out.unwrap_err(), Cancelled);
    }
}
