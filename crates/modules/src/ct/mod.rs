//! Code teleportation (paper §4.3, Figs. 10–12, Table 4).
//!
//! A CT module prepares the resource state `Φ+_AB = (|0_A 0_B⟩ + |1_A 1_B⟩)/√2`
//! between two *logical* codes A and B, so that logical teleportation both
//! moves the state and switches the QEC code. Five sub-modules cooperate:
//! an entanglement-distillation module bridging the two sides, two CAT-state
//! generators (SeqOp cells), and two UEC modules holding the logical `|+⟩`
//! states.
//!
//! Following the paper, the module-level error model composes
//! *independently-evaluated* sub-module error rates (paper ref. 31): CAT pieces
//! compound multiplicatively, and the final CT error probability is the sum
//! (saturating composition) of independent fault rates.

pub mod cat;
pub mod teleport;

use serde::{Deserialize, Serialize};

use hetarch_cells::channel::sum_error_rates;
use hetarch_cells::{CellLibrary, SeqOpCell, UscCell};
use hetarch_devices::catalog::{
    coherence_limited_compute, coherence_limited_storage, homogeneous_pseudo_storage,
};
use hetarch_stab::codes::StabilizerCode;

use crate::baseline::{hom_surface_logical_error, HomModule};
use crate::ct::cat::{CatGenerator, CatParams};
use crate::distill::{DistillConfig, DistillModule};
use crate::uec::{UecModule, UecNoise};

/// Which architecture executes the CT module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Architecture {
    /// Heterogeneous: storage-backed distillation, SeqOp CAT generators and
    /// UEC plus-state preparation.
    Heterogeneous,
    /// Homogeneous sea-of-qubits baseline.
    Homogeneous,
}

/// Configuration of a code-teleportation evaluation.
#[derive(Clone, Debug)]
pub struct CtConfig {
    /// Code on side A.
    pub code_a: StabilizerCode,
    /// Code on side B.
    pub code_b: StabilizerCode,
    /// Architecture under test.
    pub arch: Architecture,
    /// Storage coherence `T_S` (ignored for the homogeneous baseline).
    pub ts: f64,
    /// Compute coherence `T_C`.
    pub tc: f64,
    /// EP generation rate (paper Fig. 12: 1000 kHz).
    pub ep_rate_hz: f64,
    /// Distillation target fidelity (paper: 0.995).
    pub ep_target: f64,
    /// Two-qubit gate error for stabilizer/logical operations (§4.2: 1%).
    pub p2q: f64,
    /// Monte-Carlo shots for the UEC sub-evaluations.
    pub shots: usize,
    /// RNG seed.
    pub seed: u64,
}

impl CtConfig {
    /// The paper's heterogeneous setting for a code pair at storage
    /// coherence `ts`.
    pub fn heterogeneous(code_a: StabilizerCode, code_b: StabilizerCode, ts: f64) -> Self {
        CtConfig {
            code_a,
            code_b,
            arch: Architecture::Heterogeneous,
            ts,
            tc: 0.5e-3,
            ep_rate_hz: 1e6,
            ep_target: 0.995,
            p2q: 1e-2,
            shots: 20_000,
            seed: 1,
        }
    }

    /// The homogeneous baseline for a code pair.
    pub fn homogeneous(code_a: StabilizerCode, code_b: StabilizerCode) -> Self {
        CtConfig {
            arch: Architecture::Homogeneous,
            ts: 0.5e-3,
            ..CtConfig::heterogeneous(code_a, code_b, 0.5e-3)
        }
    }
}

/// Per-source error breakdown of a CT state preparation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CtBreakdown {
    /// Residual infidelity of the EPs consumed by the remote gates (two
    /// pairs: entangle + verify).
    pub ep: f64,
    /// CAT-state generation error (both halves).
    pub cat: f64,
    /// Logical `|+⟩` preparation error in code A.
    pub plus_a: f64,
    /// Logical `|+⟩` preparation error in code B.
    pub plus_b: f64,
    /// Transversal CNOT layer between CAT and the logical `|+⟩` states.
    pub transversal: f64,
    /// Logical measurement + correction round.
    pub measurement: f64,
}

/// Result of evaluating one CT configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CtResult {
    /// Total logical error probability of the prepared CT state.
    pub logical_error_probability: f64,
    /// Error-source breakdown.
    pub breakdown: CtBreakdown,
    /// Fidelity the distillation sub-module actually achieved.
    pub ep_fidelity: f64,
    /// True when distillation failed to reach the target (the paper marks
    /// such homogeneous points as essentially mixed).
    pub ep_starved: bool,
}

/// The code-teleportation module evaluator.
#[derive(Clone, Debug)]
pub struct CtModule {
    config: CtConfig,
}

impl CtModule {
    /// Creates the evaluator.
    pub fn new(config: CtConfig) -> Self {
        CtModule { config }
    }

    /// Evaluates the CT state-preparation error probability by composing the
    /// five sub-modules (paper §4.3 simulation methodology).
    pub fn evaluate(&self) -> CtResult {
        let c = &self.config;
        let lib = CellLibrary::new();
        let het = c.arch == Architecture::Heterogeneous;

        // --- Sub-module 1: entanglement distillation across the link. ---
        let distill_cfg = match c.arch {
            Architecture::Heterogeneous => {
                let mut cfg = DistillConfig::heterogeneous(c.ts, c.ep_rate_hz, c.seed);
                cfg.target_fidelity = c.ep_target;
                cfg
            }
            Architecture::Homogeneous => {
                let mut cfg = DistillConfig::homogeneous(c.ep_rate_hz, c.seed);
                cfg.target_fidelity = c.ep_target;
                cfg
            }
        };
        let report = DistillModule::new(distill_cfg).run(5e-3);
        let ep_starved = report.delivered == 0;
        let ep_fidelity = if ep_starved {
            report.best_fidelity
        } else {
            c.ep_target
        };
        // Two remote gates (entangle + verify the CAT bridge) each consume
        // one EP; a fully starved link yields an essentially mixed CT state.
        let ep_err = if ep_fidelity <= 0.5 {
            0.5
        } else {
            sum_error_rates([1.0 - ep_fidelity, 1.0 - ep_fidelity])
        };

        // --- Sub-module 2+3: the two CAT generators. ---
        let cat_size = c.code_a.num_qubits() + c.code_b.num_qubits();
        let compute = coherence_limited_compute(c.tc);
        let storage = if het {
            coherence_limited_storage(c.ts)
        } else {
            homogeneous_pseudo_storage(c.tc, 10)
        };
        let seqop = lib.get::<SeqOpCell>(&compute, &storage);
        let cat = CatGenerator::new(CatParams {
            seqop: (*seqop).clone(),
            verify_checks: cat_size.div_ceil(4),
        });
        let cat_err = cat.infidelity(cat_size);

        // --- Sub-modules 4+5: logical |+> preparation in each code. ---
        let noise = UecNoise {
            p_swap: c.p2q / 2.0,
            p2q: c.p2q,
            ..UecNoise::default()
        };
        let plus_a = self.plus_state_error(&c.code_a, noise, c.seed + 11);
        let plus_b = self.plus_state_error(&c.code_b, noise, c.seed + 13);

        // --- Step 4: transversal CNOT layer between CAT and |+> states.
        // Physical faults here are subsequently error-corrected; only
        // patterns exceeding the weaker code's correction radius become
        // logical errors, so the contribution is the binomial tail beyond
        // t = ⌊(d_min − 1)/2⌋ errors across the layer. ---
        let p_cx_marginal = 12.0 / 15.0 * c.p2q;
        let d_min = c.code_a.distance().min(c.code_b.distance());
        let t = (d_min - 1) / 2;
        let transversal = binomial_tail_above(cat_size, p_cx_marginal, t);

        // --- Steps 5–6: logical measurement and correction: one more
        // stabilizer round on each side. ---
        let measurement = sum_error_rates([plus_a, plus_b]) / 2.0;

        let breakdown = CtBreakdown {
            ep: ep_err,
            cat: cat_err,
            plus_a,
            plus_b,
            transversal,
            measurement,
        };
        let total = sum_error_rates([
            breakdown.ep,
            breakdown.cat,
            breakdown.plus_a,
            breakdown.plus_b,
            breakdown.transversal,
            breakdown.measurement,
        ]);
        CtResult {
            logical_error_probability: total,
            breakdown,
            ep_fidelity,
            ep_starved,
        }
    }

    /// Logical `|+⟩` preparation error: one stabilizer-measurement cycle of
    /// the code on the architecture under test (the §4.2 methodology).
    fn plus_state_error(&self, code: &StabilizerCode, noise: UecNoise, seed: u64) -> f64 {
        let c = &self.config;
        match c.arch {
            Architecture::Heterogeneous => {
                let lib = CellLibrary::new();
                let usc = lib.get::<UscCell>(
                    &coherence_limited_compute(c.tc),
                    &coherence_limited_storage(c.ts),
                );
                UecModule::new(code.clone(), (*usc).clone(), noise)
                    .logical_error_rate(c.shots, seed)
                    .logical_error_rate
            }
            Architecture::Homogeneous => {
                if code.name().starts_with("SC") {
                    hom_surface_logical_error(code.distance(), c.tc, noise, c.shots, seed)
                } else {
                    HomModule::new(code.clone(), c.tc, noise)
                        .logical_error_rate(c.shots, seed)
                        .logical_error_rate
                }
            }
        }
    }
}

/// `P[X > t]` for `X ~ Binomial(n, p)`.
fn binomial_tail_above(n: usize, p: f64, t: usize) -> f64 {
    let mut cdf = 0.0;
    let mut pmf = (1.0 - p).powi(n as i32); // P[X = 0]
    for k in 0..=t.min(n) {
        if k > 0 {
            pmf *= (n - k + 1) as f64 / k as f64 * p / (1.0 - p);
        }
        cdf += pmf;
    }
    (1.0 - cdf).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_stab::codes::{reed_muller_15, rotated_surface_code};

    #[test]
    fn binomial_tail_sanity() {
        // P[X > 0] = 1 - (1-p)^n.
        let p = 0.01;
        let direct = 1.0 - (1.0f64 - p).powi(10);
        assert!((binomial_tail_above(10, p, 0) - direct).abs() < 1e-12);
        // Tail shrinks as the threshold grows.
        assert!(binomial_tail_above(24, 0.008, 1) < binomial_tail_above(24, 0.008, 0));
        assert_eq!(binomial_tail_above(5, 0.1, 5), 0.0);
    }

    fn quick(mut cfg: CtConfig) -> CtResult {
        cfg.shots = 3000;
        CtModule::new(cfg).evaluate()
    }

    #[test]
    fn heterogeneous_beats_homogeneous_for_nonplanar_pair() {
        let het = quick(CtConfig::heterogeneous(
            reed_muller_15(),
            rotated_surface_code(3),
            50e-3,
        ));
        let hom = quick(CtConfig::homogeneous(
            reed_muller_15(),
            rotated_surface_code(3),
        ));
        assert!(
            het.logical_error_probability < hom.logical_error_probability,
            "het {} vs hom {}",
            het.logical_error_probability,
            hom.logical_error_probability
        );
    }

    #[test]
    fn longer_storage_improves_ct() {
        let short = quick(CtConfig::heterogeneous(
            rotated_surface_code(3),
            rotated_surface_code(4),
            1e-3,
        ));
        let long = quick(CtConfig::heterogeneous(
            rotated_surface_code(3),
            rotated_surface_code(4),
            50e-3,
        ));
        assert!(
            long.logical_error_probability < short.logical_error_probability,
            "Ts=50ms {} vs Ts=1ms {}",
            long.logical_error_probability,
            short.logical_error_probability
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let r = quick(CtConfig::heterogeneous(
            rotated_surface_code(3),
            rotated_surface_code(4),
            12.5e-3,
        ));
        let b = r.breakdown;
        let manual = hetarch_cells::channel::sum_error_rates([
            b.ep,
            b.cat,
            b.plus_a,
            b.plus_b,
            b.transversal,
            b.measurement,
        ]);
        assert!((manual - r.logical_error_probability).abs() < 1e-12);
        assert!(r.logical_error_probability <= 1.0);
    }
}
