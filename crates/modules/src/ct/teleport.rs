//! Physical-level teleportation and remote gates on the density-matrix
//! simulator.
//!
//! The CT module (paper §4.3) abstracts its cross-link operations as
//! "remote gates (paper ref. 113) consuming EPs". This module implements those
//! primitives exactly — state teleportation and the EP-mediated remote CNOT
//! — so the abstraction's error model (one EP infidelity per remote gate)
//! is *validated* rather than assumed: see the tests pinning the measured
//! teleportation fidelity to the textbook `F = (2·F_EP + 1)/3` law.

use hetarch_qsim::bell::BellDiagonal;
use hetarch_qsim::complex::C64;
use hetarch_qsim::fidelity::fidelity_with_pure;
use hetarch_qsim::gates;
use hetarch_qsim::matrix::Mat;
use hetarch_qsim::measure::project_z;
use hetarch_qsim::state::DensityMatrix;

/// Teleports each of the six Pauli eigenstates through `pair` and returns
/// the average output fidelity.
///
/// Qubit layout: 0 = input state (Alice), 1 = Alice's EP half, 2 = Bob's EP
/// half. Alice applies `CNOT(0→1)`, `H(0)`, measures both; Bob applies the
/// X/Z corrections. All four outcome branches are summed exactly.
///
/// # Examples
///
/// ```
/// use hetarch_modules::ct::teleport::average_teleport_fidelity;
/// use hetarch_qsim::bell::BellDiagonal;
///
/// let f = average_teleport_fidelity(&BellDiagonal::perfect());
/// assert!((f - 1.0).abs() < 1e-9);
/// ```
pub fn average_teleport_fidelity(pair: &BellDiagonal) -> f64 {
    let probes = hetarch_cells::probe::pauli_eigenstate_probes();
    let mut total = 0.0;
    for (gates_in, psi) in probes {
        // Build |probe> ⊗ ρ_pair on qubits (0) and (1, 2).
        let mut probe = DensityMatrix::zero_state(1);
        for g in gates_in {
            probe.apply_1q(0, g);
        }
        let rho = probe.tensor(&pair.to_density_matrix());

        // Bell measurement on (0, 1), summing all four branches.
        let mut rho = rho;
        gates::cnot(&mut rho, 0, 1);
        gates::h(&mut rho, 0);
        let mut out_acc = DensityMatrix::zero_state(1);
        *out_acc.entry_mut(0, 0) = C64::ZERO;
        for m0 in [false, true] {
            for m1 in [false, true] {
                let mut branch = rho.clone();
                let p0 = project_z(&mut branch, 0, m0);
                if p0 <= 0.0 {
                    continue;
                }
                let p1 = project_z(&mut branch, 1, m1);
                if p1 <= 0.0 {
                    continue;
                }
                // Corrections: X^{m1} then Z^{m0} on Bob's qubit.
                if m1 {
                    branch.apply_1q(2, &Mat::pauli_x());
                }
                if m0 {
                    branch.apply_1q(2, &Mat::pauli_z());
                }
                let out = branch.partial_trace(&[2]);
                for r in 0..2 {
                    for c in 0..2 {
                        let v = out_acc.entry(r, c) + out.entry(r, c);
                        *out_acc.entry_mut(r, c) = v;
                    }
                }
            }
        }
        total += fidelity_with_pure(&out_acc, psi);
    }
    total / probes.len() as f64
}

/// Executes a remote CNOT between `control` (node A) and `target` (node B)
/// mediated by `pair`, returning the average fidelity against the ideal
/// CNOT over nine product probes.
///
/// Protocol (the standard EP-consuming gate teleportation of paper ref. 113):
/// `CNOT(control → e_A)`, measure `e_A` in Z (Bob applies X to both his EP
/// half and nothing else); `CNOT(e_B → target)`; measure `e_B` in X (Alice
/// applies Z to the control). One EP is consumed.
pub fn average_remote_cnot_fidelity(pair: &BellDiagonal) -> f64 {
    let mut total = 0.0;
    let mut count = 0;
    for a in 0..3usize {
        for b in 0..3usize {
            // Qubits: 0 = control, 1 = e_A, 2 = e_B, 3 = target.
            let mut probe_c = DensityMatrix::zero_state(1);
            prepare(&mut probe_c, 0, a);
            let mut probe_t = DensityMatrix::zero_state(1);
            prepare(&mut probe_t, 0, b);
            let rho = probe_c.tensor(&pair.to_density_matrix()).tensor(&probe_t);

            let mut rho = rho;
            gates::cnot(&mut rho, 0, 1);
            let mut out_acc = DensityMatrix::zero_state(2);
            *out_acc.entry_mut(0, 0) = C64::ZERO;
            for m1 in [false, true] {
                let mut b1 = rho.clone();
                let p = project_z(&mut b1, 1, m1);
                if p <= 0.0 {
                    continue;
                }
                if m1 {
                    b1.apply_1q(2, &Mat::pauli_x());
                }
                gates::cnot(&mut b1, 2, 3);
                // Measure e_B in X: rotate then project.
                gates::h(&mut b1, 2);
                for m2 in [false, true] {
                    let mut b2 = b1.clone();
                    let p2 = project_z(&mut b2, 2, m2);
                    if p2 <= 0.0 {
                        continue;
                    }
                    if m2 {
                        b2.apply_1q(0, &Mat::pauli_z());
                    }
                    let out = b2.partial_trace(&[0, 3]);
                    for r in 0..4 {
                        for c in 0..4 {
                            let v = out_acc.entry(r, c) + out.entry(r, c);
                            *out_acc.entry_mut(r, c) = v;
                        }
                    }
                }
            }
            total += fidelity_with_pure(&out_acc, &ideal_cnot_output(a, b));
            count += 1;
        }
    }
    total / count as f64
}

fn prepare(rho: &mut DensityMatrix, q: usize, which: usize) {
    match which {
        0 => {}
        1 => gates::x(rho, q),
        _ => gates::h(rho, q),
    }
}

/// Ideal `CNOT(control = qubit 0, target = qubit 1)` output for the probe
/// pair `(a, b)` with 0 → |0⟩, 1 → |1⟩, 2 → |+⟩.
fn ideal_cnot_output(a: usize, b: usize) -> Vec<C64> {
    let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
    let amp = |which: usize| -> Vec<C64> {
        match which {
            0 => vec![C64::ONE, C64::ZERO],
            1 => vec![C64::ZERO, C64::ONE],
            _ => vec![s, s],
        }
    };
    let va = amp(a);
    let vb = amp(b);
    let mut psi = vec![C64::ZERO; 4];
    for (ia, &xa) in va.iter().enumerate() {
        for (ib, &xb) in vb.iter().enumerate() {
            let out_b = ib ^ ia;
            psi[out_b * 2 + ia] += xa * xb;
        }
    }
    psi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_pair_teleports_perfectly() {
        let f = average_teleport_fidelity(&BellDiagonal::perfect());
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
    }

    #[test]
    fn werner_teleportation_matches_textbook_law() {
        // F_avg = (2 F_EP + 1) / 3 for a Werner-state channel.
        for f_ep in [0.6, 0.75, 0.9, 0.99] {
            let measured = average_teleport_fidelity(&BellDiagonal::werner(f_ep));
            let expected = (2.0 * f_ep + 1.0) / 3.0;
            assert!(
                (measured - expected).abs() < 1e-9,
                "F_EP = {f_ep}: measured {measured}, law {expected}"
            );
        }
    }

    #[test]
    fn remote_cnot_is_exact_with_perfect_pair() {
        let f = average_remote_cnot_fidelity(&BellDiagonal::perfect());
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
    }

    #[test]
    fn remote_cnot_degrades_linearly_in_ep_infidelity() {
        // Validates the CT module's "one EP infidelity per remote gate"
        // composition: d(1-F)/d(1-F_EP) ≈ O(1).
        let f0 = average_remote_cnot_fidelity(&BellDiagonal::werner(1.0));
        let f1 = average_remote_cnot_fidelity(&BellDiagonal::werner(0.98));
        let f2 = average_remote_cnot_fidelity(&BellDiagonal::werner(0.96));
        let slope1 = (f0 - f1) / 0.02;
        let slope2 = (f1 - f2) / 0.02;
        assert!(
            (slope1 - slope2).abs() < 0.05,
            "linearity: {slope1} vs {slope2}"
        );
        assert!(slope1 > 0.4 && slope1 < 1.5, "slope {slope1}");
    }

    #[test]
    fn bell_diagonal_channel_twirls_pauli_noise() {
        // Teleportation through a Phi- pair is a Z-error channel: Z-basis
        // probes survive, X-basis probes flip.
        let mut comps = [0.0; 4];
        comps[1] = 1.0; // Phi-
        let f = average_teleport_fidelity(&BellDiagonal::new(comps));
        // |0>,|1> unaffected (F = 1); |±>, |±i> flipped (F = 0): average 1/3.
        assert!((f - 1.0 / 3.0).abs() < 1e-9, "fidelity {f}");
    }
}
