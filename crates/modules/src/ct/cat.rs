//! CAT-state generation on SeqOp cells (paper §4.3).
//!
//! A size-`k` CAT state `(|0…0⟩ + |1…1⟩)/√2` is built by a chain of `k − 1`
//! sequential CNOTs between stored qubits, verified by ancilla parity
//! checks. Following the paper's methodology, large CATs are modeled from
//! smaller exactly-characterized pieces with **multiplicative compounding**
//! of fidelities, plus the storage decay the partially-built state suffers
//! while the chain is extended.

use serde::{Deserialize, Serialize};

use hetarch_cells::SeqOpChannel;

/// Parameters of a CAT generator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CatParams {
    /// The characterized SeqOp cell executing the CNOT chain.
    pub seqop: SeqOpChannel,
    /// Number of verification parity checks applied to the finished CAT.
    pub verify_checks: usize,
}

/// A CAT-state generator model.
#[derive(Clone, Debug)]
pub struct CatGenerator {
    params: CatParams,
}

impl CatGenerator {
    /// Creates the generator.
    pub fn new(params: CatParams) -> Self {
        CatGenerator { params }
    }

    /// Wall-clock duration to grow and verify a size-`k` CAT.
    pub fn duration(&self, k: usize) -> f64 {
        if k < 2 {
            return 0.0;
        }
        (k - 1) as f64 * self.params.seqop.seq_cnot.duration
            + self.params.verify_checks as f64 * self.params.seqop.parity.duration
    }

    /// Infidelity of a size-`k` CAT: multiplicative compounding of the
    /// `k − 1` chain CNOTs and the verification checks, plus idle decay —
    /// any single-qubit error breaks a CAT state, and qubit `i` idles in
    /// storage for the remainder of the chain after joining it.
    pub fn infidelity(&self, k: usize) -> f64 {
        if k < 2 {
            return 0.0;
        }
        let p = &self.params;
        let mut fidelity = p.seqop.seq_cnot.fidelity.powi((k - 1) as i32)
            * p.seqop.parity.fidelity.powi(p.verify_checks as i32);
        // Idle exposure: qubit joining at step i waits (k - 1 - i) CNOT slots.
        let t_cnot = p.seqop.seq_cnot.duration;
        for i in 0..k {
            let wait = (k - 1 - i.min(k - 1)) as f64 * t_cnot;
            let twirl = p.seqop.storage_idle.twirl_probs(wait);
            fidelity *= 1.0 - twirl.total();
        }
        (1.0 - fidelity).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetarch_cells::SeqOpCell;
    use hetarch_devices::catalog::{coherence_limited_compute, coherence_limited_storage};

    fn generator(ts: f64) -> CatGenerator {
        let ch = SeqOpCell::new(
            coherence_limited_compute(0.5e-3),
            coherence_limited_storage(ts),
        )
        .unwrap()
        .characterize();
        CatGenerator::new(CatParams {
            seqop: ch,
            verify_checks: 2,
        })
    }

    #[test]
    fn trivial_cats_are_free() {
        let g = generator(1e-3);
        assert_eq!(g.infidelity(0), 0.0);
        assert_eq!(g.infidelity(1), 0.0);
        assert_eq!(g.duration(1), 0.0);
    }

    #[test]
    fn infidelity_grows_with_size() {
        let g = generator(1e-3);
        let mut last = 0.0;
        for k in [2, 4, 8, 16, 24] {
            let e = g.infidelity(k);
            assert!(e > last, "size {k}: {e} vs {last}");
            last = e;
        }
        assert!(last < 1.0);
    }

    #[test]
    fn longer_storage_coherence_helps() {
        let short = generator(0.5e-3).infidelity(24);
        let long = generator(50e-3).infidelity(24);
        assert!(long < short, "Ts=50ms {long} vs Ts=0.5ms {short}");
    }

    #[test]
    fn duration_scales_linearly() {
        let g = generator(1e-3);
        let d8 = g.duration(8);
        let d16 = g.duration(16);
        assert!(d16 > d8);
        // 8 extra CNOT slots.
        let t_cnot = 8.0 * g.params.seqop.seq_cnot.duration;
        assert!((d16 - d8 - t_cnot).abs() < 1e-12);
    }
}
