//! # hetarch-modules
//!
//! HetArch application modules (paper §4): entanglement distillation,
//! error-corrected quantum memory (planar surface code + the universal
//! error correction module), and code teleportation, plus the homogeneous
//! sea-of-qubits baseline they are compared against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod ct;
pub mod distill;
pub mod epsource;
pub mod event;
pub mod faults;
pub mod hierarchy;
pub mod uec;

pub use epsource::EpSource;
