//! Stochastic entangled-pair (EP) generation.
//!
//! Substitutes for the paper's physical EP sources (on-chip microwave links
//! or microwave-to-optical conversion, §4.1): arrivals form a Poisson
//! process with a configurable rate, and each raw pair is a Werner state
//! with an infidelity sampled from a configurable band (the paper uses
//! 0.01–0.1 at rates 10–1000× slower than compute operations).

use rand::Rng;
use serde::{Deserialize, Serialize};

use hetarch_qsim::bell::BellDiagonal;

/// EP source configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpSource {
    /// Mean generation rate in Hz.
    pub rate_hz: f64,
    /// Lower bound of the raw-pair infidelity band.
    pub infidelity_min: f64,
    /// Upper bound of the raw-pair infidelity band.
    pub infidelity_max: f64,
}

impl EpSource {
    /// Creates a source with an infidelity band.
    ///
    /// # Panics
    ///
    /// Panics if the rate is non-positive or the band is not within
    /// `[0, 0.75]` (a Werner state below fidelity 0.25 is unphysical as an
    /// "entangled" resource) or inverted.
    pub fn new(rate_hz: f64, infidelity_min: f64, infidelity_max: f64) -> Self {
        assert!(
            rate_hz > 0.0 && rate_hz.is_finite(),
            "invalid rate {rate_hz}"
        );
        assert!(
            (0.0..=0.75).contains(&infidelity_min)
                && (0.0..=0.75).contains(&infidelity_max)
                && infidelity_min <= infidelity_max,
            "invalid infidelity band [{infidelity_min}, {infidelity_max}]"
        );
        EpSource {
            rate_hz,
            infidelity_min,
            infidelity_max,
        }
    }

    /// The paper's §4.1 setting at a given rate: infidelity 0.01–0.1.
    pub fn paper_default(rate_hz: f64) -> Self {
        EpSource::new(rate_hz, 0.01, 0.1)
    }

    /// Samples the next exponential inter-arrival delay (seconds).
    pub fn next_interarrival<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.rate_hz
    }

    /// Samples a raw pair (Werner state in the configured band).
    pub fn sample_pair<R: Rng + ?Sized>(&self, rng: &mut R) -> BellDiagonal {
        let infid = if self.infidelity_min == self.infidelity_max {
            self.infidelity_min
        } else {
            rng.gen_range(self.infidelity_min..self.infidelity_max)
        };
        BellDiagonal::werner(1.0 - infid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interarrival_mean_matches_rate() {
        let src = EpSource::paper_default(1e6);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| src.next_interarrival(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1e-6).abs() < 5e-8, "mean interarrival {mean}");
    }

    #[test]
    fn pairs_fall_in_the_infidelity_band() {
        let src = EpSource::paper_default(1e6);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let p = src.sample_pair(&mut rng);
            let infid = p.infidelity();
            assert!((0.01..=0.1).contains(&infid), "infidelity {infid}");
        }
    }

    #[test]
    fn degenerate_band_is_deterministic() {
        let src = EpSource::new(1e6, 0.05, 0.05);
        let mut rng = StdRng::seed_from_u64(5);
        let p = src.sample_pair(&mut rng);
        assert!((p.infidelity() - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid infidelity band")]
    fn inverted_band_rejected() {
        EpSource::new(1e6, 0.2, 0.1);
    }
}
