//! A minimal discrete-event simulation engine.
//!
//! The distillation module (paper §4.1) must react to stochastic EP
//! arrivals and asynchronous protocol completions; this queue keeps the
//! bookkeeping honest (monotone time, stable ordering of simultaneous
//! events).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event carrying a payload of type `E`.
#[derive(Clone, Debug)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; tie-break on insertion order.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue.
///
/// # Examples
///
/// ```
/// use hetarch_modules::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop(), Some((1.0, "sooner")));
/// assert_eq!(q.pop(), Some((2.0, "later")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past or not finite.
    pub fn schedule(&mut self, time: f64, payload: E) {
        assert!(
            time.is_finite() && time >= self.now,
            "cannot schedule event at {time} (now = {})",
            self.now
        );
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedules `payload` after a delay.
    pub fn schedule_in(&mut self, delay: f64, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_keep_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        assert_eq!(q.now(), 5.0);
        q.schedule_in(2.5, ());
        assert_eq!(q.pop().unwrap().0, 7.5);
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }
}
