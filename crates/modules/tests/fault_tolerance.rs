//! Exhaustive first-order fault coverage of the UEC decoding pipeline:
//! every single circuit fault — any Pauli on any data qubit at any point in
//! the serialized schedule, or any single measurement flip — must decode
//! without a logical error. This is the property that restores Stim-grade
//! circuit-level decoding on top of lookup tables.

use hetarch_cells::UscCell;
use hetarch_devices::catalog::{coherence_limited_compute, coherence_limited_storage};
use hetarch_modules::baseline::layer_checks;
use hetarch_modules::uec::sim::first_order_table;
use hetarch_modules::uec::{build_schedule, search_assignment};
use hetarch_stab::codes::{color_17, reed_muller_15, rotated_surface_code, steane, StabilizerCode};
use hetarch_stab::decoder::LookupDecoder;
use hetarch_stab::pauli::{Pauli, PauliString};

fn pack(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

/// Runs the full decode pipeline for a single injected fault and asserts it
/// never produces a logical error.
fn assert_single_faults_covered(code: &StabilizerCode, groups: &[Vec<usize>]) {
    let n = code.num_qubits();
    let stabs = code.stabilizers();
    let table = first_order_table(code, groups);
    let weight_cap = (code.distance().div_ceil(2)).clamp(1, 3);
    let lookup = LookupDecoder::new(code, weight_cap);

    let decode = |symptom: u64, error: &PauliString| {
        let correction = table
            .get(&symptom)
            .cloned()
            .unwrap_or_else(|| lookup.decode_bits(symptom));
        let residual = error.xor(&correction);
        let true_syn = pack(&code.syndrome_of(&residual));
        let final_error = residual.xor(&lookup.decode_bits(true_syn));
        assert!(
            code.in_normalizer(&final_error),
            "{}: residual syndrome survives",
            code.name()
        );
        assert!(
            !code.is_logical_error(&final_error),
            "{}: single fault caused a logical error (symptom {symptom:#x})",
            code.name()
        );
    };

    // Data faults at every temporal position.
    for k in 0..=groups.len() {
        for q in 0..n {
            for p in [Pauli::X, Pauli::Y, Pauli::Z] {
                let e = PauliString::from_sparse(n, &[(q, p)]);
                let mut symptom = 0u64;
                for group in &groups[k.min(groups.len())..] {
                    for &s in group {
                        if !stabs[s].commutes_with(&e) {
                            symptom |= 1 << s;
                        }
                    }
                }
                decode(symptom, &e);
            }
        }
    }
    // Single measurement flips (no data error).
    let identity = PauliString::identity(n);
    for s in 0..stabs.len() {
        decode(1u64 << s, &identity);
    }
}

#[test]
fn uec_serialized_schedules_cover_all_single_faults() {
    let usc = UscCell::new(
        coherence_limited_compute(0.5e-3),
        coherence_limited_storage(50e-3),
    )
    .unwrap()
    .characterize();
    for code in [
        steane(),
        color_17(),
        reed_muller_15(),
        rotated_surface_code(3),
        rotated_surface_code(4),
        rotated_surface_code(5),
    ] {
        let assignment = search_assignment(&code, usc.registers, usc.capacity / usc.registers);
        let schedule = build_schedule(&code, &assignment, &usc);
        let groups: Vec<Vec<usize>> = schedule.checks.iter().map(|c| vec![c.stabilizer]).collect();
        assert_single_faults_covered(&code, &groups);
    }
}

#[test]
fn homogeneous_layered_schedules_cover_all_single_faults() {
    for code in [steane(), color_17(), reed_muller_15()] {
        let layers = layer_checks(&code);
        assert_single_faults_covered(&code, &layers);
    }
}
