//! # hetarch-bench
//!
//! The benchmark harness regenerating every table and figure of the HetArch
//! paper's evaluation (see `DESIGN.md`'s experiment index):
//!
//! | target | artifact |
//! |--------|----------|
//! | `table1` | Table 1 — device properties |
//! | `table2` | Table 2 — standard-cell characterization |
//! | `fig3`   | Fig. 3 — distillation fidelity over time |
//! | `fig4`   | Fig. 4 — distilled-EP rate vs generation rate × T_S |
//! | `fig6`   | Fig. 6 — d=13 surface code vs data/ancilla coherence |
//! | `fig7`   | Fig. 7 — logical error vs distance for T_CD/T_CA ratios |
//! | `fig9`   | Fig. 9 — QEC codes on the UEC module vs T_S |
//! | `table3` | Table 3 — UEC vs homogeneous logical error rates |
//! | `fig12`  | Fig. 12 — code teleportation vs T_S |
//! | `table4` | Table 4 — CT logical error, all code pairs |
//! | `dse_cost` | §1/§2 — hierarchical-simulation burden reduction |
//! | `ablations` | design-choice ablations (DEJMPS fast path, scheduler policy, assignment search, SWAP-error sensitivity, chain parallelism) |
//!
//! Run e.g. `cargo run --release -p hetarch-bench --bin fig4`.
//! Environment knobs: `HETARCH_SHOTS` scales Monte-Carlo shot counts,
//! `HETARCH_DURATION_MS` scales event-simulation durations.

/// Monte-Carlo shots, honoring the `HETARCH_SHOTS` override.
pub fn shots(default: usize) -> usize {
    std::env::var("HETARCH_SHOTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Event-simulation duration in seconds, honoring `HETARCH_DURATION_MS`.
pub fn sim_duration(default_ms: f64) -> f64 {
    std::env::var("HETARCH_DURATION_MS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(default_ms)
        * 1e-3
}

/// Prints a figure/table header with provenance.
pub fn header(id: &str, caption: &str) {
    println!("== {id} ==");
    println!("{caption}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_without_env() {
        std::env::remove_var("HETARCH_SHOTS");
        assert_eq!(shots(123), 123);
        assert_eq!(sim_duration(2.0), 2e-3);
    }
}
