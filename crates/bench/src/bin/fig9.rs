//! Regenerates Fig. 9: logical error rate of selected QEC codes on the
//! universal error correction module as a function of storage coherence T_S.

use hetarch::prelude::*;
use hetarch_bench::{header, shots};

fn main() {
    header(
        "Figure 9",
        "Per-cycle logical error on the UEC module vs T_S (serialized checks,\n\
         Tc = 0.5 ms, CX error 1%, storage SWAP error 0.5%)",
    );
    let n = shots(20_000);
    let noise = UecNoise::default();
    let ts_ms = [0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0];
    let codes: Vec<StabilizerCode> = vec![
        reed_muller_15(),
        color_17(),
        rotated_surface_code(3),
        rotated_surface_code(4),
        steane(),
    ];

    print!("{:>9}", "Ts (ms)");
    for c in &codes {
        print!(" {:>9}", c.name());
    }
    println!();
    for &ts in &ts_ms {
        print!("{ts:>9.1}");
        for code in &codes {
            let usc = UscCell::new(
                catalog::coherence_limited_compute(0.5e-3),
                catalog::coherence_limited_storage(ts * 1e-3),
            )
            .expect("design rules hold")
            .characterize();
            let r = UecModule::new(code.clone(), usc, noise).logical_error_rate(n, 9);
            print!(" {:>9.4}", r.logical_error_rate);
        }
        println!();
    }
    println!();
    println!(
        "expected shape: every curve falls as T_S grows and flattens once gate\n\
         errors dominate; the Reed-Muller code sits highest, Steane and the\n\
         surface codes lowest."
    );
}
