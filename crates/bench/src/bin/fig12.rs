//! Regenerates Fig. 12: code-teleportation logical error probability vs
//! storage coherence for three code pairs (EP generation 1000 kHz,
//! distillation target 99.5%).

use hetarch::prelude::*;
use hetarch_bench::{header, shots};

fn main() {
    header(
        "Figure 12",
        "CT logical error probability vs T_S for three code pairs",
    );
    let n = shots(10_000);
    let pairs: Vec<(&str, StabilizerCode, StabilizerCode)> = vec![
        ("SC3&RM", rotated_surface_code(3), reed_muller_15()),
        ("SC3&SC4", rotated_surface_code(3), rotated_surface_code(4)),
        ("17QCC&SC4", color_17(), rotated_surface_code(4)),
    ];
    let ts_ms = [0.5, 1.0, 2.5, 5.0, 10.0, 20.0, 50.0];

    print!("{:>9}", "Ts (ms)");
    for (name, _, _) in &pairs {
        print!(" {:>11}", name);
    }
    println!();
    for &ts in &ts_ms {
        print!("{ts:>9.1}");
        for (_, a, b) in &pairs {
            let mut cfg = CtConfig::heterogeneous(a.clone(), b.clone(), ts * 1e-3);
            cfg.shots = n;
            let r = CtModule::new(cfg).evaluate();
            print!(" {:>11.3}", r.logical_error_probability);
        }
        println!();
    }
    println!();
    println!(
        "expected shape: error probability falls substantially with T_S; the\n\
         simpler surface-code pair saturates past ~10 ms while pairs involving\n\
         larger/non-planar codes keep improving toward 50 ms."
    );
}
