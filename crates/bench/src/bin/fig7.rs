//! Regenerates Fig. 7: surface-code logical error rate per cycle for code
//! distances d = 5…18 as a function of the T_CD/T_CA ratio. The homogeneous
//! system is the ratio-1 column.

use hetarch::prelude::*;
use hetarch_bench::{header, shots};

fn main() {
    header(
        "Figure 7",
        "Logical error per cycle vs distance for T_CD/T_CA ratios (T_CA = 0.1 ms)",
    );
    let n = shots(20_000);
    let ratios = [1.0, 2.0, 3.0, 4.0, 5.0, 8.0];
    let distances = [5usize, 7, 9, 11, 13, 15, 18];

    print!("{:>6}", "d");
    for r in ratios {
        print!(" {:>10}", format!("ratio={r}"));
    }
    println!();
    for &d in &distances {
        print!("{d:>6}");
        for &ratio in &ratios {
            let noise = SurfaceNoise {
                t_data: 0.1e-3 * ratio,
                ..SurfaceNoise::default()
            };
            let (_, p) = SurfaceMemory::new(d, d, noise).logical_error_rate(n, 8 + d as u64);
            print!(" {:>10.5}", p);
        }
        println!();
    }
    println!();
    println!(
        "expected shape: at ratio 1 the code sits near threshold (flat or rising\n\
         in d); larger ratios push it below threshold so the error falls with d;\n\
         gains saturate beyond ratio ~5 (two-qubit gate error becomes limiting)."
    );
}
