//! Regenerates Fig. 6: logical error rate per cycle of a distance-13 surface
//! code as data-qubit (T_CD) or ancilla-qubit (T_CA) coherence is scaled by
//! α from the Tc = 0.1 ms baseline.

use hetarch::prelude::*;
use hetarch_bench::{header, shots};

fn main() {
    header(
        "Figure 6",
        "d = 13 surface code, Tc baseline 0.1 ms, p2 = 1%, 1 us readout.\n\
         Column 2: T_CD = a x 0.1 ms (ancilla fixed). Column 3: T_CA scaled instead.",
    );
    let n = shots(20_000);
    let d = 13;
    let base = SurfaceNoise::default(); // Tc = 0.1 ms baseline per §4.2.1

    println!(
        "{:>6} {:>18} {:>18}",
        "alpha", "scale data (TCD)", "scale ancilla (TCA)"
    );
    let mut homogeneous = None;
    for alpha in [1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0] {
        let data_noise = SurfaceNoise {
            t_data: base.t_data * alpha,
            ..base
        };
        let anc_noise = SurfaceNoise {
            t_anc: base.t_anc * alpha,
            ..base
        };
        let (_, p_data) = SurfaceMemory::new(d, d, data_noise).logical_error_rate(n, 6);
        let (_, p_anc) = SurfaceMemory::new(d, d, anc_noise).logical_error_rate(n, 7);
        if alpha == 1.0 {
            homogeneous = Some(p_data);
        }
        println!("{alpha:>6.1} {p_data:>18.5} {p_anc:>18.5}");
    }
    if let Some(h) = homogeneous {
        println!("\nhomogeneous baseline (alpha = 1): {h:.5}");
    }
    println!(
        "expected shape: increasing T_CD reduces the logical error by ~2.5x by\n\
         T_CD ~ 0.5 ms (alpha = 5) with diminishing returns after; increasing\n\
         T_CA barely moves the curve (data idling during the 1 us readout\n\
         dominates)."
    );
}
