//! Interleaved A/B comparison of the `DmBackend` strategies.
//!
//! Single-shot workload timings on this class of container swing ±40%
//! between CPU-frequency bands, which drowns single-digit-percent effects
//! (see the PR 5 notes in CHANGES.md). This bin interleaves the two
//! backends trial by trial and reports medians, so band noise hits both
//! sides equally:
//!
//! * `kernel` rows — per-state loop vs `apply_batch` on a 16-state batch,
//!   the microbenchmark behind the criterion `superop_per_state` /
//!   `superop_batch` rows (1q idle and 2q depolarizing, n ∈ {2, 5}).
//! * `cell_characterization` row — the four standard-cell `characterize()`
//!   calls under `force_active(Scalar)` vs `force_active(Batched)`; the
//!   backends are bit-identical, so the ratio is pure speed.
//!
//! `HETARCH_AB_TRIALS` overrides the trial count (default 96).

use std::time::Instant;

use hetarch::prelude::*;
use hetarch::qsim::backend::{force_active, BackendChoice};

fn trials() -> usize {
    std::env::var("HETARCH_AB_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(96)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    v[v.len() / 2]
}

fn batch_of_states(n: usize, count: usize) -> Vec<DensityMatrix> {
    (0..count).map(|_| DensityMatrix::zero_state(n)).collect()
}

fn kernel_rows(trials: usize) {
    let idle = IdleParams::new(300e-6, 150e-6)
        .unwrap()
        .channel(1e-6)
        .unwrap();
    idle.kernel();
    let depol = Kraus2::depolarizing(0.01).unwrap();
    depol.kernel();
    const BATCH: usize = 16;
    for n in [2usize, 5] {
        // Scale inner repetitions so each timed window is a few hundred µs.
        let reps = if n == 2 { 200 } else { 8 };
        let mut states = batch_of_states(n, BATCH);
        let mut t_1q = (Vec::new(), Vec::new());
        let mut t_2q = (Vec::new(), Vec::new());
        for _ in 0..trials {
            let t = Instant::now();
            for _ in 0..reps {
                for rho in states.iter_mut() {
                    idle.apply(rho, 0);
                }
            }
            t_1q.0.push(t.elapsed().as_secs_f64());
            let t = Instant::now();
            for _ in 0..reps {
                idle.apply_batch(&mut states, 0);
            }
            t_1q.1.push(t.elapsed().as_secs_f64());
            let t = Instant::now();
            for _ in 0..reps {
                for rho in states.iter_mut() {
                    depol.apply(rho, 0, 1);
                }
            }
            t_2q.0.push(t.elapsed().as_secs_f64());
            let t = Instant::now();
            for _ in 0..reps {
                depol.apply_batch(&mut states, 0, 1);
            }
            t_2q.1.push(t.elapsed().as_secs_f64());
        }
        for (label, (per, bat)) in [("1q", t_1q), ("2q", t_2q)] {
            let (p, b) = (median(per), median(bat));
            println!(
                "kernel {label} n={n}: per_state {:>8.2} µs  batch {:>8.2} µs  speedup {:.2}x",
                p * 1e6,
                b * 1e6,
                p / b
            );
        }
    }
}

fn characterization_row(trials: usize) {
    let compute = catalog::coherence_limited_compute(0.5e-3);
    let storage = catalog::coherence_limited_storage(50e-3);
    let characterize_all = || {
        RegisterCell::new(compute.clone(), storage.clone())
            .unwrap()
            .characterize();
        ParCheckCell::new(compute.clone(), compute.clone())
            .unwrap()
            .characterize();
        SeqOpCell::new(compute.clone(), storage.clone())
            .unwrap()
            .characterize();
        UscCell::new(compute.clone(), storage.clone())
            .unwrap()
            .characterize();
    };
    characterize_all(); // warm kernel compiles and the probe-state cache
    let mut scalar = Vec::new();
    let mut batched = Vec::new();
    for _ in 0..trials {
        force_active(Some(BackendChoice::Scalar));
        let t = Instant::now();
        characterize_all();
        scalar.push(t.elapsed().as_secs_f64());
        force_active(Some(BackendChoice::Batched));
        let t = Instant::now();
        characterize_all();
        batched.push(t.elapsed().as_secs_f64());
    }
    force_active(None);
    let (s, b) = (median(scalar), median(batched));
    println!(
        "cell_characterization: scalar {:>8.3} ms  batched {:>8.3} ms  speedup {:.3}x",
        s * 1e3,
        b * 1e3,
        s / b
    );
}

fn main() {
    let trials = trials();
    hetarch_bench::header(
        "backend_ab",
        "interleaved scalar-vs-batched DmBackend medians (band-noise-immune)",
    );
    println!("trials per row: {trials}\n");
    kernel_rows(trials);
    characterization_row(trials);
}
