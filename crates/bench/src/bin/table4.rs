//! Regenerates Table 4: code-teleportation logical error probabilities for
//! every code pair — heterogeneous (upper-right triangle) vs homogeneous
//! (lower-left triangle).

use hetarch::prelude::*;
use hetarch_bench::{header, shots};

fn main() {
    header(
        "Table 4",
        "CT logical error probabilities: heterogeneous above the diagonal,\n\
         homogeneous below (T_S = 50 ms, EP generation 1000 kHz)",
    );
    let n = shots(8_000);
    let codes: Vec<StabilizerCode> = vec![
        reed_muller_15(),
        color_17(),
        steane(),
        rotated_surface_code(3),
        rotated_surface_code(4),
    ];
    let k = codes.len();
    let mut het = vec![vec![f64::NAN; k]; k];
    let mut hom = vec![vec![f64::NAN; k]; k];
    for i in 0..k {
        for j in (i + 1)..k {
            let mut cfg = CtConfig::heterogeneous(codes[i].clone(), codes[j].clone(), 50e-3);
            cfg.shots = n;
            het[i][j] = CtModule::new(cfg).evaluate().logical_error_probability;
            let mut cfg = CtConfig::homogeneous(codes[i].clone(), codes[j].clone());
            cfg.shots = n;
            hom[j][i] = CtModule::new(cfg).evaluate().logical_error_probability;
        }
    }

    print!("{:>8}", "");
    for c in &codes {
        print!(" {:>8}", c.name());
    }
    println!();
    for i in 0..k {
        print!("{:>8}", codes[i].name());
        for j in 0..k {
            if i == j {
                print!(" {:>8}", "-");
            } else if j > i {
                print!(" {:>8.3}", het[i][j]);
            } else {
                print!(" {:>8.3}", hom[i][j]);
            }
        }
        println!();
    }

    // Aggregate reductions.
    let mut reductions = Vec::new();
    for i in 0..k {
        for j in (i + 1)..k {
            reductions.push(hom[j][i] / het[i][j]);
        }
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    let min = reductions.iter().cloned().fold(f64::MAX, f64::min);
    let max = reductions.iter().cloned().fold(0.0f64, f64::max);
    println!();
    println!(
        "heterogeneous-over-homogeneous reduction: avg {avg:.2}x, min {min:.2}x, max {max:.2}x"
    );
    println!(
        "expected shape: heterogeneous beats homogeneous for every pair\n\
         (paper: avg 2.33x, min 1.60x, max 2.96x)."
    );
}
