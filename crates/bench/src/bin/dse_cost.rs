//! Regenerates the §1/§2 simulation-burden claim: the hierarchical
//! methodology (exact density-matrix simulation at the cell level,
//! phenomenological composition at the module level, with characterization
//! caching) reduces the simulation cost by 10^4 or more.

use hetarch::prelude::*;
use hetarch_bench::header;

fn main() {
    header(
        "DSE cost ablation",
        "Hierarchical vs flat simulation cost for the three §4 applications",
    );

    // Representative accounting for one full design-point evaluation of
    // each application, with cell characterizations measured by their
    // density-matrix system sizes.
    let apps: Vec<(&str, Vec<usize>, usize, u64)> = vec![
        // (name, cell sims (qubits), module span (qubits), module-level ops)
        ("distillation", vec![2, 2, 4], 16, 200_000),
        ("UEC memory (17QCC)", vec![2, 5], 17 + 4, 500_000),
        (
            "code teleportation",
            vec![2, 2, 4, 4, 5],
            24 + 16,
            1_000_000,
        ),
    ];
    println!(
        "{:<22} {:>16} {:>16} {:>12}",
        "application", "hierarchical", "flat", "reduction"
    );
    for (name, cells, span, ops) in apps {
        let mut ledger = CostLedger::new();
        for q in cells {
            ledger.record_cell_sim(q);
        }
        ledger.record_module(span, ops);
        println!(
            "{:<22} {:>16.3e} {:>16.3e} {:>11.1e}x",
            name,
            ledger.hierarchical_cost(),
            ledger.flat_cost(),
            ledger.reduction_factor()
        );
        assert!(
            ledger.reduction_factor() > 1e4,
            "{name}: reduction below the paper's 1e4 claim"
        );
    }

    // The cache multiplies the saving across a sweep: characterize once,
    // reuse at every sweep point (and single-flight admission keeps that
    // true for concurrent sweep workers).
    println!();
    let lib = CellLibrary::new();
    let c = catalog::coherence_limited_compute(0.5e-3);
    let sweep_points = 24;
    for _ in 0..sweep_points {
        for ts in [1e-3, 2.5e-3, 12.5e-3] {
            let storage = catalog::coherence_limited_storage(ts);
            lib.get::<RegisterCell>(&c, &storage);
            lib.get::<UscCell>(&c, &storage);
        }
        lib.get::<ParCheckCell>(&c, &c);
    }
    let stats = lib.stats();
    println!(
        "sweep of {} evaluations: {} cell simulations run, {} served from cache",
        sweep_points * 7,
        stats.misses,
        stats.hits
    );
    println!(
        "{:<10} {:>8} {:>8} {:>8}",
        "cell", "misses", "hits", "waits"
    );
    for kind in CellKind::ALL {
        let k = stats.kind(kind);
        println!(
            "{:<10} {:>8} {:>8} {:>8}",
            kind.name(),
            k.misses,
            k.hits,
            k.inflight_waits
        );
    }
    println!(
        "simulation time: {:.1} ms run, {:.1} ms avoided by caching",
        stats.sim_seconds_run * 1e3,
        stats.sim_seconds_saved * 1e3
    );
    assert_eq!(stats.misses, 7, "one simulation per distinct design point");
}
