//! Regenerates Fig. 4: distilled-EP rate (fidelity ≥ 0.995) as a function of
//! the raw EP generation rate and storage coherence T_S. The homogeneous
//! system is the Ts = Tc = 0.5 ms row.

use hetarch::prelude::*;
use hetarch_bench::{header, sim_duration};

fn main() {
    header(
        "Figure 4",
        "Distilled EP rate (kHz) vs generation rate (kHz) and storage coherence",
    );
    let duration = sim_duration(10.0);
    let gen_rates_khz = [
        100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 30_000.0, 100_000.0,
    ];
    let ts_ms = [0.5, 1.0, 2.5, 5.0, 12.5, 50.0];

    print!("{:>12}", "gen (kHz)");
    for ts in ts_ms {
        print!(" {:>9}", format!("Ts={ts}ms"));
    }
    println!(" {:>9}", "hom");
    for &g in &gen_rates_khz {
        let rate = g * 1e3;
        print!("{g:>12.0}");
        for &ts in &ts_ms {
            let r =
                DistillModule::new(DistillConfig::heterogeneous(ts * 1e-3, rate, 4)).run(duration);
            print!(" {:>9.1}", r.delivered_rate_hz / 1e3);
        }
        let hom = DistillModule::new(DistillConfig::homogeneous(rate, 4)).run(duration);
        println!(" {:>9.1}", hom.delivered_rate_hz / 1e3);
    }
    println!();
    println!(
        "expected shape: rates rise with generation rate; het with Ts >= 2.5 ms\n\
         beats the homogeneous column by >= 2x in the mid range; the homogeneous\n\
         system delivers essentially nothing below ~1000 kHz while het still\n\
         works at ~100 kHz."
    );
}
