//! Regenerates Fig. 3: entanglement-distillation fidelity over time for the
//! heterogeneous (Ts = 12.5 ms) and homogeneous (Ts = Tc = 0.5 ms) systems
//! with probabilistic EP generation.

use hetarch::prelude::*;
use hetarch_bench::header;

fn trace(config: DistillConfig, label: &str) {
    let mut config = config;
    config.consume_output = false;
    config.trace_interval = Some(2e-6);
    let report = DistillModule::new(config).run(100e-6);
    println!("-- {label} --");
    println!("{:>10} {:>16} {:>16}", "t (us)", "memory 1-F", "output 1-F");
    for p in &report.trace {
        println!(
            "{:>10.1} {:>16} {:>16}",
            p.time * 1e6,
            p.memory_infidelity
                .map(|x| format!("{x:.5}"))
                .unwrap_or_else(|| "-".into()),
            p.output_infidelity
                .map(|x| format!("{x:.5}"))
                .unwrap_or_else(|| "-".into())
        );
    }
    let best = report
        .trace
        .iter()
        .filter_map(|p| p.output_infidelity)
        .fold(f64::MAX, f64::min);
    if best < f64::MAX {
        println!("best output infidelity: {best:.5}");
    } else {
        println!("no pairs reached the output register");
    }
    println!();
}

fn main() {
    header(
        "Figure 3",
        "Best output-register EP infidelity over 100 us; EP generation 2 MHz,\n\
         raw infidelity 0.01-0.1, target 0.995",
    );
    let rate = 2e6;
    trace(
        DistillConfig::heterogeneous(12.5e-3, rate, 3),
        "heterogeneous, Ts = 12.5 ms/mode",
    );
    trace(
        DistillConfig::homogeneous(rate, 3),
        "homogeneous, Ts = Tc = 0.5 ms",
    );
    println!(
        "expected shape: the heterogeneous trace reaches lower infidelity minima\n\
         and decays more slowly between distillation events."
    );
}
