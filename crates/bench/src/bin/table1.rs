//! Regenerates Table 1: properties of near-term superconducting devices.

use hetarch::prelude::*;
use hetarch_bench::header;

fn main() {
    header(
        "Table 1",
        "Properties of near-term superconducting quantum devices",
    );
    println!(
        "{:<42} {:>14} {:>10} {:>18} {:>6} {:>9} {:>22}",
        "Device", "T1/T2 (ms)", "Readout", "Gate (err@time)", "Conn", "Ctrl I/O", "Footprint (mm)"
    );
    for d in catalog::catalog() {
        let readout = d
            .readout_time
            .map(|t| format!("{:.0} us", t * 1e6))
            .unwrap_or_else(|| "N/A".into());
        let gate = match (d.gate_2q, d.gate_set) {
            (Some(g), _) => format!("{:.0e}@{:.0}ns (arb)", g.error, g.time * 1e9),
            (None, _) => format!("{:.0e}@{:.0}ns (SWAP)", d.swap.error, d.swap.time * 1e9),
        };
        let fp = if d.footprint.z_mm > 0.0 {
            format!(
                "{} x {} x {}",
                d.footprint.x_mm, d.footprint.y_mm, d.footprint.z_mm
            )
        } else {
            format!("{} x {}", d.footprint.x_mm, d.footprint.y_mm)
        };
        println!(
            "{:<42} {:>6.1}/{:<7.1} {:>10} {:>18} {:>6} {:>9} {:>22}",
            d.name,
            d.t1 * 1e3,
            d.t2 * 1e3,
            readout,
            gate,
            d.max_connectivity,
            d.control.total(),
            fp
        );
    }
    println!();
    println!("Extended storage options (paper §3.1 discussion, beyond Table 1):");
    for d in hetarch::devices::catalog::extended_storage_options() {
        println!(
            "  {:<40} T1 = {:>8.1} ms   swap {:.0e}@{:.0}ns",
            d.name,
            d.t1 * 1e3,
            d.swap.error,
            d.swap.time * 1e9
        );
    }
    println!();
    println!("Control-overhead comparison (paper §3.1): storing 30 qubits");
    let (het, hom) = hetarch::devices::footprint::control_savings(30, 10);
    println!("  heterogeneous (3 resonators): {het} lines");
    println!("  homogeneous  (30 transmons):  {hom} lines");
}
