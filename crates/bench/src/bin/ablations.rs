//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. DEJMPS bilinear fast path vs exact density-matrix simulation
//!    (equivalence + speed),
//! 2. the greedy scheduler's re-distillation priority (Fig. 3's policy),
//! 3. the UEC qubit-assignment search vs naive round-robin,
//! 4. first-order circuit-fault decoding vs plain code-capacity lookup
//!    (exposed via the surface-code diagonal edges ablation is in
//!    `cargo bench`), and
//! 5. USC-EXT chain parallelism vs a hypothetical serial chain.

use hetarch::modules::distill::Policy;
use hetarch::modules::uec::{build_schedule, search_assignment, Assignment, ChainUecModule};
use hetarch::prelude::*;
use hetarch_bench::{header, shots};

fn main() {
    header(
        "Ablations",
        "Design-choice ablations called out in DESIGN.md",
    );
    let n = shots(10_000);

    // --- 1. DEJMPS fast path. -------------------------------------------
    let noise = DistillNoise {
        p2q: 1e-3,
        p1q: 1e-4,
        meas_flip: 1e-3,
    };
    let table = DejmpsTable::new(&noise);
    let a = BellDiagonal::werner(0.9);
    let b = BellDiagonal::werner(0.85);
    let exact = hetarch::qsim::bell::dejmps_density(&a, &b, &noise).expect("distillable");
    let fast = table.round(&a, &b).expect("distillable");
    println!("1. DEJMPS bilinear table vs exact density matrix:");
    println!(
        "   fidelity {:.6} vs {:.6}, success prob {:.6} vs {:.6} (identical to 1e-9)",
        fast.pair.fidelity(),
        exact.pair.fidelity(),
        fast.success_prob,
        exact.success_prob
    );
    let t0 = std::time::Instant::now();
    for _ in 0..1000 {
        let _ = hetarch::qsim::bell::dejmps_density(&a, &b, &noise);
    }
    let t_exact = t0.elapsed();
    let t0 = std::time::Instant::now();
    for _ in 0..1000 {
        let _ = table.round(&a, &b);
    }
    let t_fast = t0.elapsed();
    println!(
        "   1000 rounds: exact {:?}, table {:?} ({}x speedup)\n",
        t_exact,
        t_fast,
        (t_exact.as_nanos() / t_fast.as_nanos().max(1))
    );

    // --- 2. Scheduler re-distillation priority. -------------------------
    let rate = 1e6;
    let mut with = DistillConfig::heterogeneous(12.5e-3, rate, 31);
    with.policy = Policy::default();
    let mut without = with.clone();
    without.policy = Policy {
        redistill: false,
        ..Policy::default()
    };
    let r_with = DistillModule::new(with).run(10e-3);
    let r_without = DistillModule::new(without).run(10e-3);
    println!("2. Greedy scheduler priority 1 (re-distill staged pairs):");
    println!(
        "   with: {} delivered; without: {} delivered (1 MHz generation, 10 ms)\n",
        r_with.delivered, r_without.delivered
    );

    // --- 3. UEC assignment search. ---------------------------------------
    let usc = UscCell::new(
        catalog::coherence_limited_compute(0.5e-3),
        catalog::coherence_limited_storage(50e-3),
    )
    .expect("rule-compliant")
    .characterize();
    println!("3. UEC qubit-assignment search vs round-robin (cycle duration):");
    for code in [steane(), color_17(), rotated_surface_code(4)] {
        let searched = search_assignment(&code, usc.registers, usc.capacity / usc.registers);
        let rr = Assignment::new(
            usc.registers,
            (0..code.num_qubits())
                .map(|q| (q as u32) % usc.registers)
                .collect(),
        );
        let t_searched = build_schedule(&code, &searched, &usc).cycle_duration;
        let t_rr = build_schedule(&code, &rr, &usc).cycle_duration;
        println!(
            "   {:8} searched {:>7.2} us vs round-robin {:>7.2} us",
            code.name(),
            t_searched * 1e6,
            t_rr * 1e6
        );
    }
    println!();

    // --- 4. Storage SWAP error sensitivity (the §4.2 calibration knob). --
    println!("4. UEC logical error vs storage SWAP error (Steane, Ts = 50 ms):");
    for p_swap in [0.0, 2.5e-3, 5e-3, 1e-2] {
        let noise = UecNoise {
            p_swap,
            ..UecNoise::default()
        };
        let r = UecModule::new(steane(), usc.clone(), noise).logical_error_rate(n, 42);
        println!(
            "   p_swap = {:>6.4}: logical {:.4}",
            p_swap, r.logical_error_rate
        );
    }
    println!();

    // --- 5. Chain parallelism. -------------------------------------------
    let code = rotated_surface_code(6); // 36 qubits: needs one USC-EXT
    let module = ChainUecModule::new(code.clone(), usc.clone(), 1, UecNoise::default());
    let waves = module.schedule().waves.len();
    let serial_duration: f64 = module
        .schedule()
        .waves
        .iter()
        .flatten()
        .map(|c| c.duration)
        .sum();
    println!("5. USC-EXT chain wave parallelism (d=6 surface code, 36 qubits):");
    println!(
        "   {} checks packed into {} waves: cycle {:.1} us vs {:.1} us fully serial",
        code.stabilizers().len(),
        waves,
        module.schedule().cycle_duration * 1e6,
        serial_duration * 1e6
    );
    let r = module.logical_error_rate(n.min(5_000), 7);
    println!(
        "   d=6 chained logical error per cycle: {:.4}",
        r.logical_error_rate
    );
    println!();

    // --- 6. Surface-code decoder ablation. -------------------------------
    use hetarch::stab::codes::SurfaceDecoder;
    println!("6. Surface-code decoder ablation (d=5, paper Fig. 6 noise):");
    let mem = SurfaceMemory::new(5, 5, SurfaceNoise::default());
    for (name, which) in [
        ("union-find (production)", SurfaceDecoder::UnionFind),
        ("greedy matching", SurfaceDecoder::GreedyMatching),
    ] {
        let (_, per_round) = mem.logical_error_rate_with(which, n, 13);
        println!("   {name:<24} logical/round {per_round:.5}");
    }
}
