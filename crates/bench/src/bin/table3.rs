//! Regenerates Table 3: QEC code, pseudothreshold, heterogeneous and
//! homogeneous logical error rates, and the error reduction at T_S = 50 ms.

use hetarch::prelude::*;
use hetarch_bench::{header, shots};

fn uec_rate(code: &StabilizerCode, p2q: f64, tc: f64, ts: f64, n: usize, seed: u64) -> f64 {
    let usc = UscCell::new(
        catalog::coherence_limited_compute(tc),
        catalog::coherence_limited_storage(ts),
    )
    .expect("design rules hold")
    .characterize();
    let noise = UecNoise {
        p_swap: p2q / 2.0,
        p2q,
        ..UecNoise::default()
    };
    UecModule::new(code.clone(), usc, noise)
        .logical_error_rate(n, seed)
        .logical_error_rate
}

/// Pseudothreshold: the two-qubit gate error rate at which the per-cycle
/// logical error rate breaks even with it, found by scanning a log grid and
/// interpolating the crossing. Computed idle-free (gate errors only), the
/// code-intrinsic break-even the paper's PT column reports; the Het./Hom.
/// columns include the full idle model.
fn pseudothreshold(code: &StabilizerCode, n: usize) -> Option<f64> {
    let grid: Vec<f64> = (0..13).map(|i| 2.5e-4 * 2f64.powi(i)).collect(); // 2.5e-4 .. ~1
    let mut prev: Option<(f64, f64)> = None;
    for &p in &grid {
        if p > 0.6 {
            break;
        }
        let logical = uec_rate(code, p, 1e3, 1e3, n, 33);
        let margin = logical - p;
        if let Some((pp, pm)) = prev {
            if pm < 0.0 && margin >= 0.0 {
                // Linear interpolation of the crossing in log(p).
                let t = -pm / (margin - pm);
                let lp = pp.ln() + t * (p.ln() - pp.ln());
                return Some(lp.exp());
            }
        }
        prev = Some((p, margin));
    }
    // Below pseudothreshold everywhere scanned -> report the last safe point
    // as a lower bound only if the code was ever above; otherwise None.
    None
}

fn main() {
    header(
        "Table 3",
        "QEC code, pseudothreshold (PT), het/hom logical error rates and\n\
         reduction at T_S = 50 ms (CX error 1%)",
    );
    let n = shots(20_000);
    let pt_shots = (n / 4).max(2_000);
    let noise = UecNoise::default();

    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "Code", "PT", "Het.", "Hom.", "Red."
    );
    let codes: Vec<(StabilizerCode, bool)> = vec![
        (reed_muller_15(), true),
        (color_17(), true),
        (steane(), true),
        (rotated_surface_code(3), false),
        (rotated_surface_code(4), false),
    ];
    for (code, has_pt) in codes {
        let pt = if has_pt {
            pseudothreshold(&code, pt_shots)
                .map(|p| format!("{p:.4}"))
                .unwrap_or_else(|| "-".into())
        } else {
            "-".into() // thresholds, not pseudothresholds, apply
        };
        let het = uec_rate(&code, 1e-2, 0.5e-3, 50e-3, n, 42);
        let hom = if code.name().starts_with("SC") {
            hom_surface_logical_error(code.distance(), 0.5e-3, noise, n, 43)
        } else {
            HomModule::new(code.clone(), 0.5e-3, noise)
                .logical_error_rate(n, 43)
                .logical_error_rate
        };
        let red = if het < hom {
            format!("{:.1}x", hom / het)
        } else {
            format!("{:.1}x (hom)", het / hom)
        };
        println!(
            "{:<8} {:>10} {:>10.4} {:>10.4} {:>10}",
            code.name(),
            pt,
            het,
            hom,
            red
        );
    }
    println!();
    println!(
        "expected shape: RM / 17QCC / Steane improve by several-x on the UEC;\n\
         the square-lattice-native surface codes prefer the homogeneous system;\n\
         the Reed-Muller code has the lowest (worst) pseudothreshold.\n\
         PT is the idle-free gate-error break-even of the serialized module;\n\
         our two-phase lookup decode is stricter than the paper's Stim\n\
         pipeline, so absolute PTs sit well below the paper's."
    );
}
