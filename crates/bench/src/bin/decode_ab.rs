//! Interleaved A/B comparison of the union-find decode paths.
//!
//! Single-shot timings on this class of container swing ±40% between
//! CPU-frequency bands (see the PR 5/6 notes in CHANGES.md), which drowns
//! the effect a criterion run measures in separate blocks. This bin times
//! the three decode paths — pristine per-shot `decode_reference`, the
//! dense `decode_with` scratch path, and the bit-packed `count_failures`
//! batch path — over the **same** 256 surface-memory shots, alternated
//! trial by trial so band noise hits all sides equally, and reports
//! medians. The scratch and batch rows are the PR 10 acceptance numbers.
//!
//! `HETARCH_AB_TRIALS` overrides the trial count (default 96).

use std::time::Instant;

use hetarch::prelude::*;
use hetarch::stab::detector::sample_detectors;

const SHOTS: usize = 256;

fn trials() -> usize {
    std::env::var("HETARCH_AB_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(96)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    v[v.len() / 2]
}

fn main() {
    let trials = trials();
    hetarch_bench::header(
        "decode_ab",
        "interleaved reference-vs-scratch-vs-batch union-find decode medians",
    );
    println!("trials per row: {trials}, {SHOTS} shots per trial\n");

    for d in [5usize, 7, 11] {
        let mem = SurfaceMemory::new(d, d, SurfaceNoise::default());
        let circuit = mem.circuit();
        let decoder = UnionFindDecoder::new(&mem.matching_graph());
        let samples = sample_detectors(&circuit, SHOTS, 7);
        let n_det = circuit.num_detectors();
        let syndromes: Vec<Vec<bool>> = (0..SHOTS)
            .map(|shot| (0..n_det).map(|i| samples.detectors.get(i, shot)).collect())
            .collect();
        let mut scratch = decoder.new_scratch();

        // Warm pass: page in the tables, size the scratch arena.
        let mut check = 0u64;
        for syn in &syndromes {
            check ^= decoder.decode_reference(syn);
        }
        decoder.count_failures(
            &mut scratch,
            &samples.detectors,
            &samples.observables,
            0,
            0,
            SHOTS,
        );

        let mut t_ref = Vec::with_capacity(trials);
        let mut t_scratch = Vec::with_capacity(trials);
        let mut t_batch = Vec::with_capacity(trials);
        for _ in 0..trials {
            let t = Instant::now();
            let mut acc = 0u64;
            for syn in &syndromes {
                acc ^= decoder.decode_reference(syn);
            }
            t_ref.push(t.elapsed().as_secs_f64());
            assert_eq!(acc, check, "reference drifted");

            let t = Instant::now();
            acc = 0;
            for syn in &syndromes {
                acc ^= decoder.decode_with(&mut scratch, syn);
            }
            t_scratch.push(t.elapsed().as_secs_f64());
            assert_eq!(acc, check, "scratch path diverged");

            let t = Instant::now();
            decoder.count_failures(
                &mut scratch,
                &samples.detectors,
                &samples.observables,
                0,
                0,
                SHOTS,
            );
            t_batch.push(t.elapsed().as_secs_f64());
        }

        let (r, s, b) = (median(t_ref), median(t_scratch), median(t_batch));
        println!(
            "surface d={d:>2}: reference {:>9.1} µs  scratch {:>9.1} µs ({:.2}x)  batch {:>9.1} µs ({:.2}x)",
            r * 1e6,
            s * 1e6,
            r / s,
            b * 1e6,
            r / b
        );
    }
}
