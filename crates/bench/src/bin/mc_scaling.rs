//! Monte-Carlo scaling study for the sharded execution engine (`BENCH_pr2`),
//! plus the observability report mode (`BENCH_pr4`).
//!
//! Default mode runs the UEC d=5 rotated-surface-code memory at fixed seed
//! across worker counts, checks the logical error rate is bit-identical for
//! every worker count (the engine's worker-count-invariance contract), and
//! writes shots/sec per worker count to `BENCH_pr2.json`.
//!
//! `--report` mode arms the observability layer, runs the UEC,
//! surface-memory, distillation and cold-cache cell-characterization
//! workloads once each, and writes shots/sec, shard counts, superoperator
//! kernel counters and characterization-cache hit ratios — together with
//! the full metric report — to `BENCH_pr10.json`. The workloads shared
//! with the `BENCH_pr7.json` baseline are definition-identical so their
//! shots/sec are directly comparable across the two files; the
//! `surface_memory_d5` row is the headline number for the allocation-free
//! union-find decode path, the new `surface_memory_d11` row sizes the
//! same path at a distance the old decoder made expensive, and the
//! `decoder` block records the `stab.decoder.*` counters (decodes,
//! empty-syndrome fast-path hits, growth passes, unions, peel
//! discharges/leaks) for the whole report run. The `rare_event` workload
//! runs the weight-stratified estimator on a deep-subthreshold d=5
//! surface memory (a point the plain estimator cannot resolve at any
//! comparable budget) and reports its `exec.rare.strata` /
//! `exec.rare.shots` counters plus the full `(p_L, sigma,
//! truncation_bound)` error budget.
//!
//! `HETARCH_SHOTS` scales the shot count (default 4096);
//! `HETARCH_WORKER_COUNTS` is a comma-separated override of the swept
//! worker counts (default `1,2,4,8`).

use std::time::Instant;

use hetarch::exec::WorkerPool;
use hetarch::obs;
use hetarch::prelude::*;
use hetarch::stab::codes::SurfaceDecoder;

fn worker_counts() -> Vec<usize> {
    std::env::var("HETARCH_WORKER_COUNTS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|w| w.trim().parse().ok())
                .filter(|&w| w >= 1)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--calib") {
        let path = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--calib needs a snapshot file path");
            std::process::exit(2);
        });
        calib_mode(path);
    } else if args.iter().any(|a| a == "--report") {
        report_mode();
    } else {
        scaling_mode();
    }
}

fn uec_module() -> UecModule {
    let usc = UscCell::new(
        catalog::coherence_limited_compute(0.5e-3),
        catalog::coherence_limited_storage(50e-3),
    )
    .unwrap()
    .characterize();
    UecModule::new(rotated_surface_code(5), usc, UecNoise::default())
}

/// `--calib FILE`: evaluates the UEC design grid against a fleet
/// calibration snapshot and against the nominal catalog, side by side,
/// writing both sweeps to `BENCH_calib.json`. The snapshot is parsed
/// strictly (any malformed field aborts with its schema path), and the run
/// asserts the overrides actually reached characterization: a snapshot
/// with at least one effective override must move at least one p_L.
fn calib_mode(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read calibration snapshot {path}: {e}");
        std::process::exit(2);
    });
    let calib = hetarch::devices::calib::CalibSnapshot::parse(&text).unwrap_or_else(|e| {
        eprintln!("invalid calibration snapshot {path}: {e}");
        std::process::exit(2);
    });
    let shots = hetarch_bench::shots(4096);
    let seed = 2023;
    hetarch_bench::header(
        "BENCH_calib",
        "UEC design grid: fleet calibration snapshot vs nominal catalog",
    );
    println!(
        "snapshot: device \"{}\"{}, {} labelled slot(s)",
        calib.device,
        if calib.taken_at.is_empty() {
            String::new()
        } else {
            format!(" taken at {}", calib.taken_at)
        },
        calib.qubits.len()
    );

    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool = WorkerPool::new(hw);
    let lib = CellLibrary::new();
    let compute = catalog::coherence_limited_compute(0.5e-3);
    let distances = [3usize, 5];
    let ts_values = [5e-3, 50e-3];

    let mut rows = Vec::new();
    let mut moved = false;
    for &d in &distances {
        for &ts in &ts_values {
            let storage = catalog::coherence_limited_storage(ts);
            let nominal = lib.get::<UscCell>(&compute, &storage);
            let fleet = lib.get_with_calib::<UscCell>(&compute, &storage, &calib);
            let p_nominal = UecModule::new(
                rotated_surface_code(d),
                (*nominal).clone(),
                UecNoise::default(),
            )
            .logical_error_rate_on(&pool, shots, seed)
            .logical_error_rate;
            let p_fleet = UecModule::new(
                rotated_surface_code(d),
                (*fleet).clone(),
                UecNoise::default(),
            )
            .logical_error_rate_on(&pool, shots, seed)
            .logical_error_rate;
            moved |= p_fleet.to_bits() != p_nominal.to_bits();
            println!("d={d} ts={ts:>7.0e}: nominal p_L = {p_nominal:.6}, fleet p_L = {p_fleet:.6}");
            rows.push((d, ts, p_nominal, p_fleet));
        }
    }
    if !calib.is_empty() {
        assert!(
            moved,
            "the snapshot carries overrides but no design point moved — \
             calibration did not reach characterization"
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"mc_scaling_calib\",\n");
    json.push_str(&format!("  \"snapshot\": {},\n", calib.to_json().render()));
    json.push_str(&format!("  \"shots\": {shots},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str("  \"results\": [\n");
    for (i, (d, ts, p_nominal, p_fleet)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"d\": {d}, \"ts\": {ts:e}, \"p_l_nominal\": {p_nominal:e}, \
             \"p_l_fleet\": {p_fleet:e}}}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_calib.json", &json).expect("write BENCH_calib.json");
    println!("\nwrote BENCH_calib.json ({} design points)", rows.len());
}

/// `--report`: one pass per workload with the observability layer armed,
/// emitting `BENCH_pr10.json`.
fn report_mode() {
    obs::force_enabled(true);
    obs::reset();
    let shots = hetarch_bench::shots(4096);
    let seed = 2023;
    hetarch_bench::header(
        "BENCH_pr10",
        "observability report: shots/sec, decoder/kernel counters and cache-hit ratios per workload",
    );
    if !obs::enabled() {
        println!("note: built without the `obs` feature; all counters will be empty");
    }
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool = WorkerPool::new(hw);

    let uec = uec_module();
    let memory = SurfaceMemory::new(5, 5, SurfaceNoise::default());
    let memory_d11 = SurfaceMemory::new(11, 11, SurfaceNoise::default());
    let d11_shots = (shots / 4).max(256);
    let distill = DistillModule::new(DistillConfig::heterogeneous(12.5e-3, 1e6, seed));
    let trials = (shots / 512).max(4);
    let duration = hetarch_bench::sim_duration(2.0);

    // Warm-up outside the timed window (thread spawn, page faults, lazy
    // kernel compiles), then zero the counters so the report reflects only
    // the timed passes.
    uec.logical_error_rate_on(&pool, shots.min(512), seed);
    memory.logical_error_rate_on(&pool, SurfaceDecoder::UnionFind, shots.min(512), seed);
    memory_d11.logical_error_rate_on(&pool, SurfaceDecoder::UnionFind, 64, seed);
    distill.run_batch_on(&pool, duration, trials.min(2));
    obs::reset();

    // Exercise the characterization cache: repeated lookups through one
    // shared library (first pass misses, the rest hit).
    let lib = CellLibrary::new();
    let compute = catalog::coherence_limited_compute(0.5e-3);
    let storage = catalog::coherence_limited_storage(50e-3);
    for _ in 0..8 {
        lib.get::<RegisterCell>(&compute, &storage);
        lib.get::<ParCheckCell>(&compute, &compute);
    }

    let mut workloads: Vec<(&str, usize, f64)> = Vec::new();
    let mut timed = |name: &'static str, shots: usize, f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{name:>28}: {:>12.0} shots/s ({secs:.3} s)",
            shots as f64 / secs
        );
        workloads.push((name, shots, secs));
    };

    timed("uec_d5_rotated_surface_code", shots, &mut || {
        uec.logical_error_rate_on(&pool, shots, seed);
    });
    timed("surface_memory_d5", shots, &mut || {
        memory.logical_error_rate_on(&pool, SurfaceDecoder::UnionFind, shots, seed);
    });
    // Distance-11 memory: the projection workload the allocation-free
    // decoder makes affordable — same decode path as d=5, ~20x the
    // detectors per shot.
    timed("surface_memory_d11", d11_shots, &mut || {
        memory_d11.logical_error_rate_on(&pool, SurfaceDecoder::UnionFind, d11_shots, seed);
    });
    timed("distillation_batch", trials, &mut || {
        distill.run_batch_on(&pool, duration, trials);
    });
    // Cold-cache cell characterization: every standard cell characterized
    // from scratch (direct `characterize()`, no CellLibrary), the density-
    // matrix-heavy path the superoperator kernels accelerate.
    let cold_reps = 4usize;
    let mut characterize_all = || {
        for _ in 0..cold_reps {
            RegisterCell::new(compute.clone(), storage.clone())
                .unwrap()
                .characterize();
            ParCheckCell::new(compute.clone(), compute.clone())
                .unwrap()
                .characterize();
            SeqOpCell::new(compute.clone(), storage.clone())
                .unwrap()
                .characterize();
            UscCell::new(compute.clone(), storage.clone())
                .unwrap()
                .characterize();
        }
    };
    timed(
        "cell_characterization_cold",
        4 * cold_reps,
        &mut characterize_all,
    );
    // The same workload with the scalar reference backend forced: the two
    // rows differ only in `DmBackend` strategy (results are bit-identical),
    // so their ratio is the batched backend's cell-characterization speedup.
    hetarch::qsim::backend::force_active(Some(hetarch::qsim::backend::BackendChoice::Scalar));
    timed(
        "cell_characterization_scalar",
        4 * cold_reps,
        &mut characterize_all,
    );
    hetarch::qsim::backend::force_active(None);

    // Rare-event estimator on a deep-subthreshold d=5 surface memory: at
    // these noise figures the plain estimator returns 0 failures for any
    // comparable budget, so the row reports the stratified shot count the
    // run actually spent together with the full (p_L, sigma,
    // truncation_bound) error budget.
    let rare_memory = SurfaceMemory::new(
        5,
        2,
        SurfaceNoise {
            t_data: 10.0,
            t_anc: 10.0,
            p1: 2e-5,
            p2: 2e-4,
            p_meas: 1e-4,
            ..SurfaceNoise::default()
        },
    );
    let rare_config = hetarch::exec::rare::RareConfig {
        max_strata: 8,
        shots_per_stratum: 2048,
        ..Default::default()
    };
    let rare_start = Instant::now();
    let rare_outcome =
        rare_memory.logical_error_rate_rare_on(&pool, SurfaceDecoder::UnionFind, rare_config, seed);
    let rare_secs = rare_start.elapsed().as_secs_f64();
    let rare_converged = rare_outcome.is_converged();
    let rare = rare_outcome.into_report();
    println!(
        "{:>28}: {:>12.0} shots/s ({rare_secs:.3} s, p_L = {:.3e} ± {:.1e}, trunc {:.1e})",
        "rare_event",
        rare.total_shots as f64 / rare_secs,
        rare.p_l,
        rare.sigma,
        rare.truncation_bound
    );
    workloads.push(("rare_event", rare.total_shots, rare_secs));

    let report = obs::report();
    let counter = |name: &str| report.counters.get(name).copied().unwrap_or(0);

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"mc_scaling_report\",\n");
    json.push_str("  \"baseline\": \"BENCH_pr7.json\",\n");
    json.push_str(&format!("  \"hardware_threads\": {hw},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, (name, shots, secs)) in workloads.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"shots\": {shots}, \"elapsed_sec\": {secs:.4}, \
             \"shots_per_sec\": {:.1}}}{}\n",
            *shots as f64 / secs,
            if i + 1 == workloads.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"shards_executed\": {},\n",
        counter("exec.shards_executed")
    ));
    json.push_str("  \"cache\": {\n");
    let kinds = ["register", "parcheck", "seqop", "usc"];
    for (i, kind) in kinds.iter().enumerate() {
        let hits = counter(&format!("cells.{kind}.hits"));
        let misses = counter(&format!("cells.{kind}.misses"));
        let ratio = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        json.push_str(&format!(
            "    \"{kind}\": {{\"hits\": {hits}, \"misses\": {misses}, \
             \"hit_ratio\": {ratio:.4}}}{}\n",
            if i + 1 == kinds.len() { "" } else { "," }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"kernel\": {{\"compiles\": {}, \"applies\": {}}},\n",
        counter("qsim.kernel.compiles"),
        counter("qsim.kernel.applies")
    ));
    json.push_str(&format!(
        "  \"decoder\": {{\"decodes\": {}, \"empty_fast_path\": {}, \"growth_passes\": {}, \
         \"unions\": {}, \"peel_discharges\": {}, \"peel_leaks\": {}}},\n",
        counter("stab.decoder.decodes"),
        counter("stab.decoder.empty_fast_path"),
        counter("stab.decoder.growth_passes"),
        counter("stab.decoder.unions"),
        counter("stab.decoder.peel_discharges"),
        counter("stab.decoder.peel_leaks")
    ));
    json.push_str(&format!(
        "  \"rare\": {{\"strata\": {}, \"shots\": {}, \"p_l\": {:e}, \"sigma\": {:e}, \
         \"truncation_bound\": {:e}, \"converged\": {rare_converged}}},\n",
        counter("exec.rare.strata"),
        counter("exec.rare.shots"),
        rare.p_l,
        rare.sigma,
        rare.truncation_bound
    ));
    json.push_str(&format!("  \"obs_report\": {}\n", report.to_json()));
    json.push_str("}\n");
    std::fs::write("BENCH_pr10.json", &json).expect("write BENCH_pr10.json");
    println!("\nwrote BENCH_pr10.json ({} workloads)", workloads.len());
}

/// Default mode: the PR 2 worker-count scaling study (`BENCH_pr2.json`).
fn scaling_mode() {
    let shots = hetarch_bench::shots(4096);
    let seed = 2023;
    hetarch_bench::header(
        "BENCH_pr2",
        "sharded Monte-Carlo scaling: UEC d=5 surface code, shots/sec vs workers",
    );

    let module = uec_module();

    let counts = worker_counts();
    let mut rows = Vec::new();
    let mut reference: Option<u64> = None;
    for &workers in &counts {
        let pool = WorkerPool::new(workers);
        // Warm-up outside the timed window (thread spawn, page faults).
        module.logical_error_rate_on(&pool, shots.min(512), seed);
        let start = Instant::now();
        let result = module.logical_error_rate_on(&pool, shots, seed);
        let secs = start.elapsed().as_secs_f64();
        let rate_bits = result.logical_error_rate.to_bits();
        match reference {
            None => reference = Some(rate_bits),
            Some(r) => assert_eq!(
                rate_bits, r,
                "logical error rate must be bit-identical across worker counts \
                 ({workers} workers diverged)"
            ),
        }
        let throughput = shots as f64 / secs;
        println!(
            "workers {workers:>2}: {throughput:>12.0} shots/s  \
             (p_L = {:.6}, {secs:.3} s)",
            result.logical_error_rate
        );
        rows.push((workers, throughput, secs));
    }

    let base = rows[0].1;
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"mc_scaling\",\n");
    json.push_str("  \"workload\": \"uec_d5_rotated_surface_code\",\n");
    json.push_str(&format!("  \"shots\": {shots},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"hardware_threads\": {hw},\n"));
    json.push_str("  \"bit_identical_across_workers\": true,\n");
    json.push_str("  \"results\": [\n");
    for (i, (workers, throughput, secs)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {workers}, \"shots_per_sec\": {throughput:.1}, \
             \"elapsed_sec\": {secs:.4}, \"speedup\": {:.3}}}{}\n",
            throughput / base,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_pr2.json", &json).expect("write BENCH_pr2.json");
    println!("\nwrote BENCH_pr2.json ({} worker counts)", rows.len());
}
