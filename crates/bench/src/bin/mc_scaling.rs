//! Monte-Carlo scaling study for the sharded execution engine (`BENCH_pr2`).
//!
//! Runs the UEC d=5 rotated-surface-code memory at fixed seed across worker
//! counts, checks the logical error rate is bit-identical for every worker
//! count (the engine's worker-count-invariance contract), and writes
//! shots/sec per worker count to `BENCH_pr2.json`.
//!
//! `HETARCH_SHOTS` scales the shot count (default 4096);
//! `HETARCH_WORKER_COUNTS` is a comma-separated override of the swept
//! worker counts (default `1,2,4,8`).

use std::time::Instant;

use hetarch::exec::WorkerPool;
use hetarch::prelude::*;

fn worker_counts() -> Vec<usize> {
    std::env::var("HETARCH_WORKER_COUNTS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|w| w.trim().parse().ok())
                .filter(|&w| w >= 1)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

fn main() {
    let shots = hetarch_bench::shots(4096);
    let seed = 2023;
    hetarch_bench::header(
        "BENCH_pr2",
        "sharded Monte-Carlo scaling: UEC d=5 surface code, shots/sec vs workers",
    );

    let usc = UscCell::new(
        catalog::coherence_limited_compute(0.5e-3),
        catalog::coherence_limited_storage(50e-3),
    )
    .unwrap()
    .characterize();
    let module = UecModule::new(rotated_surface_code(5), usc, UecNoise::default());

    let counts = worker_counts();
    let mut rows = Vec::new();
    let mut reference: Option<u64> = None;
    for &workers in &counts {
        let pool = WorkerPool::new(workers);
        // Warm-up outside the timed window (thread spawn, page faults).
        module.logical_error_rate_on(&pool, shots.min(512), seed);
        let start = Instant::now();
        let result = module.logical_error_rate_on(&pool, shots, seed);
        let secs = start.elapsed().as_secs_f64();
        let rate_bits = result.logical_error_rate.to_bits();
        match reference {
            None => reference = Some(rate_bits),
            Some(r) => assert_eq!(
                rate_bits, r,
                "logical error rate must be bit-identical across worker counts \
                 ({workers} workers diverged)"
            ),
        }
        let throughput = shots as f64 / secs;
        println!(
            "workers {workers:>2}: {throughput:>12.0} shots/s  \
             (p_L = {:.6}, {secs:.3} s)",
            result.logical_error_rate
        );
        rows.push((workers, throughput, secs));
    }

    let base = rows[0].1;
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"mc_scaling\",\n");
    json.push_str("  \"workload\": \"uec_d5_rotated_surface_code\",\n");
    json.push_str(&format!("  \"shots\": {shots},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"hardware_threads\": {hw},\n"));
    json.push_str("  \"bit_identical_across_workers\": true,\n");
    json.push_str("  \"results\": [\n");
    for (i, (workers, throughput, secs)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {workers}, \"shots_per_sec\": {throughput:.1}, \
             \"elapsed_sec\": {secs:.4}, \"speedup\": {:.3}}}{}\n",
            throughput / base,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_pr2.json", &json).expect("write BENCH_pr2.json");
    println!("\nwrote BENCH_pr2.json ({} worker counts)", rows.len());
}
