//! Regenerates Table 2: the quantum standard cells, characterized by exact
//! density-matrix simulation.

use hetarch::prelude::*;
use hetarch_bench::header;

fn main() {
    header(
        "Table 2",
        "Quantum standard cells (density-matrix characterization; Table-1 devices)",
    );
    let lib = CellLibrary::new();
    let compute = catalog::fixed_frequency_qubit();
    let storage = catalog::multimode_resonator_3d();

    let reg = lib.get::<RegisterCell>(&compute, &storage);
    println!("Register  (1 storage + 1 compute, DR2/DR4 compliant)");
    println!(
        "  load/save: F = {:.5} in {:.0} ns; Ts = {:.1} ms over {} modes",
        reg.load.fidelity,
        reg.load.duration * 1e9,
        reg.storage_idle.t1 * 1e3,
        reg.modes
    );

    let pc = lib.get::<ParCheckCell>(&compute, &compute);
    println!("ParCheck  (2 compute, one with readout)");
    println!(
        "  parity check: F = {:.5} in {:.2} us (1q {:.0} ns / 2q {:.0} ns / readout {:.0} us)",
        pc.parity.fidelity,
        pc.parity.duration * 1e6,
        pc.gate_1q.time * 1e9,
        pc.gate_2q.time * 1e9,
        pc.readout_time * 1e6
    );

    let seq = lib.get::<SeqOpCell>(&compute, &storage);
    println!("SeqOp     (2 Registers + readout compute in a triangle)");
    println!(
        "  stored-qubit CNOT: F = {:.5} in {:.2} us; side parity check F = {:.5}",
        seq.seq_cnot.fidelity,
        seq.seq_cnot.duration * 1e6,
        seq.parity.fidelity
    );

    let usc = lib.get::<UscCell>(&compute, &storage);
    println!("USC       (3 Registers around a readout ancilla)");
    println!(
        "  weight-2 Z check: F = {:.5} in {:.2} us; capacity {} qubits",
        usc.check2.fidelity,
        usc.check2.duration * 1e6,
        usc.capacity
    );
    println!(
        "  serialized check durations: w=4 -> {:.2} us, w=8 -> {:.2} us",
        usc.check_duration(4) * 1e6,
        usc.check_duration(8) * 1e6
    );

    println!();
    println!("Swapping the storage unit (same cells, different device):");
    for s in [catalog::memory_3d(), catalog::on_chip_multimode_resonator()] {
        let reg = lib.get::<RegisterCell>(&compute, &s);
        println!(
            "  Register with {:<38} load F = {:.5}, Ts = {:>5.1} ms",
            s.name,
            reg.load.fidelity,
            reg.storage_idle.t1 * 1e3
        );
    }
}
