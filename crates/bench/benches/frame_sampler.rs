//! Criterion benches for the Pauli-frame sampler — the hot loop behind
//! Figs. 6, 7 and the homogeneous surface-code baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetarch::prelude::*;
use hetarch::stab::detector::sample_detectors;
use hetarch::stab::frame::FrameSampler;

fn bench_surface_shots(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_surface_memory");
    group.sample_size(10);
    for d in [5usize, 9, 13] {
        let mem = SurfaceMemory::new(d, d, SurfaceNoise::default());
        let circuit = mem.circuit();
        let shots = 4096;
        group.throughput(Throughput::Elements(shots as u64));
        group.bench_with_input(BenchmarkId::new("sample", d), &d, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut s = FrameSampler::new(circuit.num_qubits() as usize, shots, seed);
                s.run(&circuit)
            });
        });
    }
    group.finish();
}

fn bench_detector_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector_assembly");
    group.sample_size(10);
    let mem = SurfaceMemory::new(9, 9, SurfaceNoise::default());
    let circuit = mem.circuit();
    group.bench_function("d9_detectors_4096_shots", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sample_detectors(&circuit, 4096, seed)
        });
    });
    group.finish();
}

fn bench_tableau_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau_reference");
    group.sample_size(10);
    for d in [5usize, 9] {
        let mem = SurfaceMemory::new(d, d, SurfaceNoise::default());
        let circuit = mem.circuit();
        group.bench_with_input(BenchmarkId::new("reference_sample", d), &d, |b, _| {
            b.iter(|| hetarch::stab::detector::reference_sample(&circuit));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_surface_shots,
    bench_detector_assembly,
    bench_tableau_reference
);
criterion_main!(benches);
