//! Criterion benches for the UEC path (Fig. 9, Table 3): qubit-assignment
//! search, schedule construction, and Monte-Carlo cycles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetarch::modules::uec::{build_schedule, search_assignment};
use hetarch::prelude::*;

fn usc() -> UscChannel {
    // Shared library: the second bench asking for this channel gets the
    // cached characterization instead of re-simulating.
    static LIB: std::sync::OnceLock<CellLibrary> = std::sync::OnceLock::new();
    let lib = LIB.get_or_init(CellLibrary::new);
    (*lib.get::<UscCell>(
        &catalog::coherence_limited_compute(0.5e-3),
        &catalog::coherence_limited_storage(50e-3),
    ))
    .clone()
}

fn bench_assignment_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("uec_assignment");
    group.sample_size(10);
    for (name, code) in [
        ("steane_exhaustive", steane()),
        ("color17_hillclimb", color_17()),
        ("sc5_hillclimb", rotated_surface_code(5)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| search_assignment(&code, 3, 10));
        });
    }
    group.finish();
}

fn bench_schedule_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("uec_schedule");
    let ch = usc();
    let code = color_17();
    let assignment = search_assignment(&code, 3, 10);
    group.bench_function("color17", |b| {
        b.iter(|| build_schedule(&code, &assignment, &ch));
    });
    group.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("uec_monte_carlo");
    group.sample_size(10);
    let ch = usc();
    let noise = UecNoise::default();
    let shots = 2_000;
    group.throughput(Throughput::Elements(shots as u64));
    for code in [steane(), color_17(), reed_muller_15()] {
        let module = UecModule::new(code.clone(), ch.clone(), noise);
        group.bench_with_input(
            BenchmarkId::new("cycles", code.name()),
            &shots,
            |b, &shots| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    module.logical_error_rate(shots, seed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_assignment_search,
    bench_schedule_build,
    bench_monte_carlo
);
criterion_main!(benches);
