//! Criterion benches for decoding: union-find on surface-code space-time
//! graphs (Figs. 6–7) and lookup tables for the UEC codes (Fig. 9, Table 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetarch::prelude::*;
use hetarch::stab::decoder::GreedyMatchingDecoder;
use hetarch::stab::detector::sample_detectors;

fn bench_union_find(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_find_decode");
    group.sample_size(20);
    for d in [5usize, 9, 13] {
        let mem = SurfaceMemory::new(d, d, SurfaceNoise::default());
        let circuit = mem.circuit();
        let graph = mem.matching_graph();
        let decoder = UnionFindDecoder::new(&graph);
        let shots = 256;
        let samples = sample_detectors(&circuit, shots, 7);
        let n_det = circuit.num_detectors();
        group.bench_with_input(BenchmarkId::new("surface", d), &d, |b, _| {
            let mut shot = 0usize;
            let mut syndrome = vec![false; n_det];
            b.iter(|| {
                shot = (shot + 1) % shots;
                for (i, s) in syndrome.iter_mut().enumerate() {
                    *s = samples.detectors.get(i, shot);
                }
                decoder.decode(&syndrome)
            });
        });
    }
    group.finish();
}

fn bench_greedy_matching(c: &mut Criterion) {
    // Decoder ablation: the greedy matcher trades accuracy headroom for a
    // simpler algorithm; this measures its runtime gap against union-find.
    let mut group = c.benchmark_group("greedy_matching_decode");
    group.sample_size(20);
    for d in [5usize, 9] {
        let mem = SurfaceMemory::new(d, d, SurfaceNoise::default());
        let circuit = mem.circuit();
        let graph = mem.matching_graph();
        let decoder = GreedyMatchingDecoder::new(&graph);
        let shots = 128;
        let samples = sample_detectors(&circuit, shots, 7);
        let n_det = circuit.num_detectors();
        group.bench_with_input(BenchmarkId::new("surface", d), &d, |b, _| {
            let mut shot = 0usize;
            let mut syndrome = vec![false; n_det];
            b.iter(|| {
                shot = (shot + 1) % shots;
                for (i, s) in syndrome.iter_mut().enumerate() {
                    *s = samples.detectors.get(i, shot);
                }
                decoder.decode(&syndrome)
            });
        });
    }
    group.finish();
}

fn bench_lookup_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_table_build");
    group.sample_size(10);
    for (name, code, w) in [
        ("steane_w2", steane(), 2usize),
        ("color17_w2", color_17(), 2),
        ("rm15_w2", reed_muller_15(), 2),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| LookupDecoder::new(&code, w));
        });
    }
    group.finish();
}

fn bench_lookup_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_decode");
    let code = color_17();
    let dec = LookupDecoder::new(&code, 2);
    let syndromes: Vec<u64> = (0..64u64).map(|i| i * 37 % (1 << 16)).collect();
    group.bench_function("color17", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % syndromes.len();
            dec.decode_bits(syndromes[i])
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_union_find,
    bench_greedy_matching,
    bench_lookup_build,
    bench_lookup_decode
);
criterion_main!(benches);
