//! Criterion benches measuring one representative point of each paper
//! figure's regeneration pipeline, so a regression in any experiment path is
//! visible from `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use hetarch::prelude::*;

fn bench_fig4_point(c: &mut Criterion) {
    c.benchmark_group("figures")
        .sample_size(10)
        .bench_function("fig4_point_het_1MHz", |b| {
            let module = DistillModule::new(DistillConfig::heterogeneous(2.5e-3, 1e6, 4));
            b.iter(|| module.run(0.5e-3));
        });
}

fn bench_fig6_point(c: &mut Criterion) {
    c.benchmark_group("figures")
        .sample_size(10)
        .bench_function("fig6_point_d13_1k_shots", |b| {
            let noise = SurfaceNoise {
                t_data: 0.3e-3,
                ..SurfaceNoise::default()
            };
            let mem = SurfaceMemory::new(13, 13, noise);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                mem.logical_error_rate(1_000, seed)
            });
        });
}

fn bench_fig9_point(c: &mut Criterion) {
    c.benchmark_group("figures")
        .sample_size(10)
        .bench_function("fig9_point_17qcc_2k_shots", |b| {
            let usc = UscCell::new(
                catalog::coherence_limited_compute(0.5e-3),
                catalog::coherence_limited_storage(5e-3),
            )
            .unwrap()
            .characterize();
            let noise = UecNoise::default();
            let module = UecModule::new(color_17(), usc, noise);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                module.logical_error_rate(2_000, seed)
            });
        });
}

fn bench_table4_point(c: &mut Criterion) {
    c.benchmark_group("figures")
        .sample_size(10)
        .bench_function("table4_point_sc3_sc4", |b| {
            b.iter(|| {
                let mut cfg = CtConfig::heterogeneous(
                    rotated_surface_code(3),
                    rotated_surface_code(4),
                    50e-3,
                );
                cfg.shots = 1_000;
                CtModule::new(cfg).evaluate()
            });
        });
}

criterion_group!(
    benches,
    bench_fig4_point,
    bench_fig6_point,
    bench_fig9_point,
    bench_table4_point
);
criterion_main!(benches);
