//! Criterion benches for the distillation path (Figs. 3–4): DEJMPS rounds
//! (exact vs bilinear-table fast path — the ablation called out in
//! DESIGN.md) and full event-simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hetarch::prelude::*;
use hetarch::qsim::bell::dejmps_density;

fn bench_dejmps_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("dejmps_round");
    let noise = DistillNoise {
        p2q: 1e-3,
        p1q: 1e-4,
        meas_flip: 1e-3,
    };
    let a = BellDiagonal::werner(0.9);
    let b = BellDiagonal::werner(0.85);
    group.bench_function("exact_density_matrix", |bch| {
        bch.iter(|| dejmps_density(&a, &b, &noise));
    });
    let table = DejmpsTable::new(&noise);
    group.bench_function("bilinear_table", |bch| {
        bch.iter(|| table.round(&a, &b));
    });
    group.bench_function("table_construction", |bch| {
        bch.iter(|| DejmpsTable::new(&noise));
    });
    group.finish();
}

fn bench_event_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("distill_module");
    group.sample_size(10);
    let sim_time = 1e-3;
    group.throughput(Throughput::Elements((sim_time * 1e6) as u64)); // per µs
    group.bench_function("het_1MHz_1ms", |b| {
        let module = DistillModule::new(DistillConfig::heterogeneous(12.5e-3, 1e6, 3));
        b.iter(|| module.run(sim_time));
    });
    group.bench_function("hom_1MHz_1ms", |b| {
        let module = DistillModule::new(DistillConfig::homogeneous(1e6, 3));
        b.iter(|| module.run(sim_time));
    });
    group.finish();
}

criterion_group!(benches, bench_dejmps_paths, bench_event_simulation);
criterion_main!(benches);
