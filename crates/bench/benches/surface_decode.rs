//! Criterion benches for the allocation-free union-find decode paths.
//!
//! Three rows per distance, all decoding the **same** 256 sampled
//! surface-memory shots so times are directly comparable:
//!
//! * `reference` — the pristine per-shot decoder (`decode_reference`),
//!   allocating its state fresh every syndrome.
//! * `scratch` — the dense `decode_with` path through one reused arena.
//! * `batch` — `count_failures`: sparse bit-packed syndrome extraction
//!   plus the empty-syndrome fast path over the packed detector table.
//!
//! Absolute timings on shared containers swing between CPU-frequency
//! bands; for a band-noise-immune speedup number use the interleaved
//! `decode_ab` bin (same workload, alternated trial by trial).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetarch::prelude::*;
use hetarch::stab::detector::{sample_detectors, DetectorSamples};

const SHOTS: usize = 256;

fn setup(d: usize) -> (UnionFindDecoder, DetectorSamples, usize) {
    let mem = SurfaceMemory::new(d, d, SurfaceNoise::default());
    let circuit = mem.circuit();
    let decoder = UnionFindDecoder::new(&mem.matching_graph());
    let samples = sample_detectors(&circuit, SHOTS, 7);
    let n_det = circuit.num_detectors();
    (decoder, samples, n_det)
}

fn dense_syndromes(samples: &DetectorSamples, n_det: usize) -> Vec<Vec<bool>> {
    (0..SHOTS)
        .map(|shot| (0..n_det).map(|i| samples.detectors.get(i, shot)).collect())
        .collect()
}

fn bench_surface_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("surface_decode");
    group.sample_size(10);
    for d in [5usize, 7, 11] {
        let (decoder, samples, n_det) = setup(d);
        let syndromes = dense_syndromes(&samples, n_det);

        group.bench_with_input(BenchmarkId::new("reference", d), &d, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for syn in &syndromes {
                    acc ^= decoder.decode_reference(syn);
                }
                acc
            });
        });

        group.bench_with_input(BenchmarkId::new("scratch", d), &d, |b, _| {
            let mut scratch = decoder.new_scratch();
            b.iter(|| {
                let mut acc = 0u64;
                for syn in &syndromes {
                    acc ^= decoder.decode_with(&mut scratch, syn);
                }
                acc
            });
        });

        group.bench_with_input(BenchmarkId::new("batch", d), &d, |b, _| {
            let mut scratch = decoder.new_scratch();
            b.iter(|| {
                decoder.count_failures(
                    &mut scratch,
                    &samples.detectors,
                    &samples.observables,
                    0,
                    0,
                    SHOTS,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_surface_decode);
criterion_main!(benches);
