//! Naive Kraus-sum vs precompiled-superoperator channel application.
//!
//! The `naive` rows run `apply_reference` (clone + conjugation sweep per
//! Kraus operator); the `superop` rows run `apply` (the compiled
//! `ChannelKernel` one-pass path). The PR 5 acceptance target is ≥3× on the
//! 16-operator `Kraus2::depolarizing` at n = 5.
//!
//! The `superop_per_state` / `superop_batch` rows compare the two
//! `DmBackend` strategies on a 16-state batch: a per-state loop of `apply`
//! versus one `apply_batch` call that blocks lanes of states through the
//! kernel. The PR 6 acceptance target is ≥1.5× on the batched 2q rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetarch::prelude::*;

/// States per batch in the `superop_per_state`/`superop_batch` rows: a
/// multiple of the lane width, sized like a cell-characterization probe set.
const BATCH: usize = 16;

fn batch_of_states(n: usize) -> Vec<DensityMatrix> {
    (0..BATCH).map(|_| DensityMatrix::zero_state(n)).collect()
}

fn bench_kraus1(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_kernels_1q");
    // A T1/T2 idle channel: 4 Kraus operators, dense 4×4 superoperator.
    let idle = IdleParams::new(300e-6, 150e-6)
        .unwrap()
        .channel(1e-6)
        .unwrap();
    idle.kernel(); // compile outside the timing loop
    for n in [2usize, 5] {
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
            let mut rho = DensityMatrix::zero_state(n);
            b.iter(|| idle.apply_reference(&mut rho, 0));
        });
        group.bench_with_input(BenchmarkId::new("superop", n), &n, |b, &n| {
            let mut rho = DensityMatrix::zero_state(n);
            b.iter(|| idle.apply(&mut rho, 0));
        });
        group.bench_with_input(BenchmarkId::new("superop_per_state", n), &n, |b, &n| {
            let mut states = batch_of_states(n);
            b.iter(|| {
                for rho in states.iter_mut() {
                    idle.apply(rho, 0);
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("superop_batch", n), &n, |b, &n| {
            let mut states = batch_of_states(n);
            b.iter(|| idle.apply_batch(&mut states, 0));
        });
    }
    group.finish();
}

fn bench_kraus2(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_kernels_2q");
    // 16 Kraus operators; the superop path collapses them into one sparse
    // 16×16 matvec per block.
    let depol = Kraus2::depolarizing(0.01).unwrap();
    depol.kernel();
    for n in [2usize, 5] {
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
            let mut rho = DensityMatrix::zero_state(n);
            b.iter(|| depol.apply_reference(&mut rho, 0, 1));
        });
        group.bench_with_input(BenchmarkId::new("superop", n), &n, |b, &n| {
            let mut rho = DensityMatrix::zero_state(n);
            b.iter(|| depol.apply(&mut rho, 0, 1));
        });
        group.bench_with_input(BenchmarkId::new("superop_per_state", n), &n, |b, &n| {
            let mut states = batch_of_states(n);
            b.iter(|| {
                for rho in states.iter_mut() {
                    depol.apply(rho, 0, 1);
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("superop_batch", n), &n, |b, &n| {
            let mut states = batch_of_states(n);
            b.iter(|| depol.apply_batch(&mut states, 0, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kraus1, bench_kraus2);
criterion_main!(benches);
