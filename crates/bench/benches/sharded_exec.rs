//! Criterion benches for the sharded Monte-Carlo execution engine: the
//! worker-pool primitives themselves plus the sharded UEC and frame-sampler
//! paths they drive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetarch::exec::WorkerPool;
use hetarch::prelude::*;
use hetarch::stab::frame::FrameSampler;

fn usc() -> UscChannel {
    UscCell::new(
        catalog::coherence_limited_compute(0.5e-3),
        catalog::coherence_limited_storage(50e-3),
    )
    .unwrap()
    .characterize()
}

fn bench_pool_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_pool");
    group.sample_size(20);
    // Pure engine overhead: shard planning + dispatch of trivial work.
    for workers in [1usize, 4] {
        let pool = WorkerPool::new(workers);
        group.bench_with_input(
            BenchmarkId::new("dispatch_64_shards", workers),
            &workers,
            |b, _| {
                b.iter(|| pool.run_shards(64 * 256, 256, 1, |shard| shard.seed ^ shard.len as u64));
            },
        );
    }
    group.finish();
}

fn bench_sharded_uec(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_uec");
    group.sample_size(10);
    let shots = 2_048;
    group.throughput(Throughput::Elements(shots as u64));
    let module = UecModule::new(steane(), usc(), UecNoise::default());
    for workers in [1usize, 2, 4] {
        let pool = WorkerPool::new(workers);
        group.bench_with_input(
            BenchmarkId::new("steane_logical_error_rate", workers),
            &workers,
            |b, _| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    module.logical_error_rate_on(&pool, shots, seed)
                });
            },
        );
    }
    group.finish();
}

fn bench_sharded_frame_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_frame");
    group.sample_size(10);
    let shots = 4 * 4096;
    group.throughput(Throughput::Elements(shots as u64));
    let mem = SurfaceMemory::new(9, 9, SurfaceNoise::default());
    let circuit = mem.circuit();
    for workers in [1usize, 2, 4] {
        let pool = WorkerPool::new(workers);
        group.bench_with_input(BenchmarkId::new("d9_sample", workers), &workers, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                FrameSampler::sample(&circuit, shots, seed, &pool)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pool_overhead,
    bench_sharded_uec,
    bench_sharded_frame_sampler
);
criterion_main!(benches);
