//! Criterion benches for the density-matrix kernels behind Table 2's cell
//! characterizations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetarch::prelude::*;

fn bench_gate_application(c: &mut Criterion) {
    let mut group = c.benchmark_group("dm_gates");
    for n in [4usize, 6, 8] {
        group.bench_with_input(BenchmarkId::new("cnot", n), &n, |b, &n| {
            let mut rho = DensityMatrix::zero_state(n);
            gates::h(&mut rho, 0);
            b.iter(|| {
                gates::cnot(&mut rho, 0, n - 1);
            });
        });
        group.bench_with_input(BenchmarkId::new("h", n), &n, |b, &n| {
            let mut rho = DensityMatrix::zero_state(n);
            b.iter(|| {
                gates::h(&mut rho, n / 2);
            });
        });
    }
    group.finish();
}

fn bench_channels(c: &mut Criterion) {
    let mut group = c.benchmark_group("dm_channels");
    let depol1 = Kraus1::depolarizing(0.01).unwrap();
    let depol2 = Kraus2::depolarizing(0.01).unwrap();
    let idle = IdleParams::new(0.5e-3, 0.5e-3)
        .unwrap()
        .channel(1e-6)
        .unwrap();
    for n in [4usize, 6] {
        group.bench_with_input(BenchmarkId::new("depolarize1", n), &n, |b, &n| {
            let mut rho = DensityMatrix::zero_state(n);
            b.iter(|| depol1.apply(&mut rho, 0));
        });
        group.bench_with_input(BenchmarkId::new("depolarize2", n), &n, |b, &n| {
            let mut rho = DensityMatrix::zero_state(n);
            b.iter(|| depol2.apply(&mut rho, 0, 1));
        });
        group.bench_with_input(BenchmarkId::new("idle", n), &n, |b, &n| {
            let mut rho = DensityMatrix::zero_state(n);
            b.iter(|| idle.apply(&mut rho, 0));
        });
    }
    group.finish();
}

fn bench_cell_characterization(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_characterize");
    group.sample_size(20);
    let compute = catalog::fixed_frequency_qubit();
    let storage = catalog::multimode_resonator_3d();
    group.bench_function("register", |b| {
        let cell = RegisterCell::new(compute.clone(), storage.clone()).unwrap();
        b.iter(|| cell.characterize());
    });
    group.bench_function("usc_weight2_check", |b| {
        let cell = UscCell::new(compute.clone(), storage.clone()).unwrap();
        b.iter(|| cell.characterize());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gate_application,
    bench_channels,
    bench_cell_characterization
);
criterion_main!(benches);
