//! Property-based tests for the stabilizer substrate.

use hetarch_stab::circuit::Circuit;
use hetarch_stab::codes::{color_17, reed_muller_15, rotated_surface_code, steane};
use hetarch_stab::decoder::graph::MatchingGraph;
use hetarch_stab::decoder::unionfind::UnionFindDecoder;
use hetarch_stab::detector::{nondeterministic_detectors, sample_detectors};
use hetarch_stab::pauli::{Pauli, PauliString};
use hetarch_stab::tableau::Tableau;
use proptest::prelude::*;

fn arb_pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![
        Just(Pauli::I),
        Just(Pauli::X),
        Just(Pauli::Y),
        Just(Pauli::Z),
    ]
}

fn arb_pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    proptest::collection::vec(arb_pauli(), n).prop_map(|ps| PauliString::from_paulis(&ps))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pauli strings form a group (up to phase): closure, identity,
    /// self-inverse, and xor-commutativity.
    #[test]
    fn pauli_xor_group_laws(a in arb_pauli_string(9), b in arb_pauli_string(9)) {
        let id = PauliString::identity(9);
        prop_assert_eq!(a.xor(&id), a.clone());
        prop_assert!(a.xor(&a).is_identity());
        prop_assert_eq!(a.xor(&b), b.xor(&a));
        // Weight is subadditive under products.
        prop_assert!(a.xor(&b).weight() <= a.weight() + b.weight());
    }

    /// Commutation is symmetric and respects products:
    /// if a,b both commute with c, then a·b commutes with c.
    #[test]
    fn commutation_algebra(
        a in arb_pauli_string(8),
        b in arb_pauli_string(8),
        c in arb_pauli_string(8),
    ) {
        prop_assert_eq!(a.commutes_with(&b), b.commutes_with(&a));
        if a.commutes_with(&c) && b.commutes_with(&c) {
            prop_assert!(a.xor(&b).commutes_with(&c));
        }
        // Anticommuting pairs: product anticommutes iff exactly one factor does.
        let ac = !a.commutes_with(&c);
        let bc = !b.commutes_with(&c);
        prop_assert_eq!(!a.xor(&b).commutes_with(&c), ac ^ bc);
    }

    /// Random Clifford circuits on the tableau keep measurement results
    /// repeatable (projective collapse).
    #[test]
    fn tableau_measurements_are_repeatable(ops in proptest::collection::vec((0u8..4, 0usize..5, 1usize..5), 1..40)) {
        let mut t = Tableau::new(5);
        for (kind, a, d) in ops {
            let b = (a + d) % 5;
            match kind {
                0 => t.h(a),
                1 => t.s(a),
                2 => if a != b { t.cx(a, b) },
                _ => t.x(a),
            }
        }
        for q in 0..5 {
            let first = t.measure_forced(q, true);
            prop_assert_eq!(t.measure_forced(q, false), first);
            prop_assert_eq!(t.prob_one(q), if first { 1.0 } else { 0.0 });
        }
    }

    /// Syndromes are linear: syndrome(a·b) = syndrome(a) XOR syndrome(b).
    #[test]
    fn syndrome_linearity(a in arb_pauli_string(7), b in arb_pauli_string(7)) {
        let code = steane();
        let sa = code.syndrome_of(&a);
        let sb = code.syndrome_of(&b);
        let sab = code.syndrome_of(&a.xor(&b));
        for i in 0..sa.len() {
            prop_assert_eq!(sab[i], sa[i] ^ sb[i]);
        }
    }

    /// Stabilizer-group elements never register as logical errors.
    #[test]
    fn stabilizer_products_are_trivial(mask in 0u32..(1 << 16)) {
        let code = color_17();
        let mut op = PauliString::identity(17);
        for (i, s) in code.stabilizers().iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                op = op.xor(s);
            }
        }
        prop_assert!(code.in_normalizer(&op));
        prop_assert!(!code.is_logical_error(&op));
    }

    /// The union-find decoder corrects every error pattern of weight
    /// ≤ ⌊(d−1)/2⌋ on a repetition-code strip.
    #[test]
    fn union_find_corrects_below_half_distance(
        errs in proptest::collection::btree_set(0usize..11, 0..=5),
    ) {
        let d = 11;
        let mut g = MatchingGraph::new(d - 1);
        g.add_edge(0, None, 0.05, 1);
        for i in 0..d - 2 {
            g.add_edge(i as u32, Some(i as u32 + 1), 0.05, 0);
        }
        g.add_edge(d as u32 - 2, None, 0.05, 0);
        let dec = UnionFindDecoder::new(&g);
        // Apply errors on the strip's edges.
        let mut syn = vec![false; d - 1];
        let mut obs = 0u64;
        for &e in &errs {
            if e == 0 {
                syn[0] ^= true;
                obs ^= 1;
            } else if e == d - 1 {
                syn[d - 2] ^= true;
            } else {
                syn[e - 1] ^= true;
                syn[e] ^= true;
            }
        }
        let pred = dec.decode(&syn);
        prop_assert_eq!(pred, obs, "errors {:?}", errs);
    }
}

#[test]
fn surface_memory_detectors_deterministic_for_all_small_distances() {
    use hetarch_stab::codes::{SurfaceMemory, SurfaceNoise};
    for d in [2usize, 3, 4, 5] {
        let mem = SurfaceMemory::new(d, 2, SurfaceNoise::default());
        let c = mem.circuit();
        assert!(
            nondeterministic_detectors(&c).is_empty(),
            "d={d} has nondeterministic detectors"
        );
        assert_eq!(c.num_detectors(), mem.matching_graph().num_nodes(), "d={d}");
    }
}

#[test]
fn every_single_pauli_fault_fires_some_detector_or_is_harmless() {
    // In the d=3 memory circuit, inject a deterministic single X error on
    // each data qubit at the start and confirm the detectors see it.
    use hetarch_stab::circuit::PauliErr;
    use hetarch_stab::codes::{SurfaceLattice, SurfaceMemory, SurfaceNoise};
    let lat = SurfaceLattice::new(3);
    for q in 0..lat.num_data() as u32 {
        let mem = SurfaceMemory::new(
            3,
            2,
            SurfaceNoise {
                t_data: 1e6,
                t_anc: 1e6,
                p1: 0.0,
                p2: 0.0,
                p_meas: 0.0,
                ..SurfaceNoise::default()
            },
        );
        let mut c = Circuit::new(mem.circuit().num_qubits());
        c.pauli_noise(
            PauliErr {
                px: 1.0,
                py: 0.0,
                pz: 0.0,
            },
            &[q],
        );
        c.append(&mem.circuit());
        let s = sample_detectors(&c, 64, 1);
        let fired: usize = (0..c.num_detectors())
            .map(|d| usize::from(s.detectors.get(d, 0)))
            .sum();
        assert!(fired > 0, "X on data {q} fired no detectors");
        assert!(
            fired <= 2,
            "X on data {q} fired {fired} detectors (graphlike bound)"
        );
    }
}

#[test]
fn all_shipped_codes_have_declared_distance() {
    for code in [steane(), color_17(), reed_muller_15()] {
        assert_eq!(
            code.brute_force_distance(),
            code.distance(),
            "{}",
            code.name()
        );
    }
    for d in [2, 3, 4] {
        let code = rotated_surface_code(d);
        assert_eq!(code.brute_force_distance(), d);
    }
}
