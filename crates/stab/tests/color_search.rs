//! Dev harness: derive the [[17,1,5]] 4.8.8 triangular color code from the
//! square-octagon tiling by scanning triangular cuts.
//!
//! Run manually with:
//! `cargo test -p hetarch-stab --test color_search -- --ignored --nocapture`

use std::collections::BTreeMap;

type V = (i32, i32);

/// Faces of the square-octagon tiling with a 3-coloring:
/// color 0/1 = octagons by center parity, color 2 = squares.
fn tiling_faces(range: i32) -> Vec<(u8, Vec<V>)> {
    let mut faces = Vec::new();
    for i in -range..=range {
        for j in -range..=range {
            let (cx, cy) = (4 * i, 4 * j);
            faces.push((
                ((i + j).rem_euclid(2)) as u8,
                vec![
                    (cx + 1, cy + 2),
                    (cx + 2, cy + 1),
                    (cx + 2, cy - 1),
                    (cx + 1, cy - 2),
                    (cx - 1, cy - 2),
                    (cx - 2, cy - 1),
                    (cx - 2, cy + 1),
                    (cx - 1, cy + 2),
                ],
            ));
            faces.push((
                2,
                vec![
                    (cx + 1, cy + 2),
                    (cx + 2, cy + 1),
                    (cx + 3, cy + 2),
                    (cx + 2, cy + 3),
                ],
            ));
        }
    }
    faces
}

fn rank_gf2(rows: &[u32]) -> usize {
    let mut rows = rows.to_vec();
    let mut rank = 0;
    for bit in 0..32 {
        if let Some(pos) = (rank..rows.len()).find(|&r| rows[r] >> bit & 1 == 1) {
            rows.swap(rank, pos);
            for r in 0..rows.len() {
                if r != rank && rows[r] >> bit & 1 == 1 {
                    rows[r] ^= rows[rank];
                }
            }
            rank += 1;
        }
    }
    rank
}

/// Find a vector in ker(checks) \ rowspace(checks) (self-dual CSS logical).
fn find_logical(checks: &[u32], n: usize) -> Option<u32> {
    for cand in 1u32..(1 << n) {
        // Must commute with all checks: even overlap.
        if checks.iter().all(|&c| (c & cand).count_ones() % 2 == 0) {
            // Must not be in rowspace.
            let r0 = rank_gf2(checks);
            let mut with = checks.to_vec();
            with.push(cand);
            if rank_gf2(&with) > r0 {
                return Some(cand);
            }
        }
    }
    None
}

fn min_coset_weight(logical: u32, checks: &[u32]) -> u32 {
    let r = checks.len();
    let mut best = u32::MAX;
    for mask in 0u32..(1 << r) {
        let mut v = logical;
        for (i, &c) in checks.iter().enumerate() {
            if mask >> i & 1 == 1 {
                v ^= c;
            }
        }
        best = best.min(v.count_ones());
    }
    best
}

#[test]
#[ignore = "dev search harness; run manually"]
fn search_triangular_cuts() {
    let faces = tiling_faces(3);
    let mut found = 0;
    let color_assignments: Vec<[u8; 3]> = vec![
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    for y0 in -6i32..=2 {
        for b in -6i32..=2 {
            for a in 2i32..=14 {
                for colors in &color_assignments {
                    // Right triangle: keep (x, y) with y >= y0, x >= b, x + y <= a.
                    // Boundary 0 = bottom (y), 1 = hypotenuse (x+y), 2 = left (x),
                    // with colors[k] the face color *removed* at boundary k.
                    let keep = |&(x, y): &V| y >= y0 && x + y <= a && x >= b;
                    let mut kept_faces: Vec<Vec<V>> = faces
                        .iter()
                        .filter_map(|(color, f)| {
                            let kept: Vec<V> = f.iter().copied().filter(|v| keep(v)).collect();
                            if kept.is_empty() || kept.len() == f.len() {
                                return if kept.is_empty() { None } else { Some(kept) };
                            }
                            // Face is cut: identify which boundaries cut it.
                            let crosses = [
                                f.iter().any(|&(_, y)| y < y0),
                                f.iter().any(|&(x, y)| x + y > a),
                                f.iter().any(|&(x, _)| x < b),
                            ];
                            let dropped = (0..3).any(|k| crosses[k] && colors[k] == *color);
                            if dropped || kept.len() < 2 {
                                None
                            } else {
                                Some(kept)
                            }
                        })
                        .collect();
                    kept_faces.sort();
                    kept_faces.dedup();
                    let mut verts: Vec<V> = kept_faces.iter().flatten().copied().collect();
                    verts.sort();
                    verts.dedup();
                    if !(15..=19).contains(&verts.len()) {
                        continue;
                    }
                    let n = verts.len();
                    let index: BTreeMap<V, usize> =
                        verts.iter().enumerate().map(|(i, v)| (*v, i)).collect();
                    let masks: Vec<u32> = kept_faces
                        .iter()
                        .map(|f| f.iter().fold(0u32, |m, v| m | 1 << index[v]))
                        .collect();
                    // Pairwise even overlap (X_i vs Z_j commute).
                    let commuting = masks.iter().enumerate().all(|(i, &mi)| {
                        masks[i + 1..]
                            .iter()
                            .all(|&mj| (mi & mj).count_ones() % 2 == 0)
                    });
                    if !commuting {
                        continue;
                    }
                    let r = rank_gf2(&masks);
                    let k = n.checked_sub(2 * r);
                    println!(
                    "candidate n={n} faces={} rank={r} k={k:?} cut y0={y0} a={a} b={b} colors={colors:?}",
                    masks.len()
                );
                    if k != Some(1) || n != 17 {
                        continue;
                    }
                    if masks.len() > 12 {
                        continue; // too many generators for the coset sweep
                    }
                    let Some(logical) = find_logical(&masks, 17) else {
                        continue;
                    };
                    let d = min_coset_weight(logical, &masks);
                    println!("  -> distance {d}");
                    if d == 5 {
                        found += 1;
                        println!(
                            "== FOUND [[17,1,5]] cut y0={y0} a={a} b={b} colors={colors:?} =="
                        );
                        println!("faces ({}):", masks.len());
                        for f in &kept_faces {
                            let idxs: Vec<usize> = f.iter().map(|v| index[v]).collect();
                            println!("  {idxs:?}  coords {f:?}");
                        }
                        let lbits: Vec<usize> = (0..17).filter(|i| logical >> i & 1 == 1).collect();
                        println!("logical: {lbits:?}");
                        println!("vertices: {verts:?}");
                        if found >= 3 {
                            return;
                        }
                    }
                }
            }
        }
    }
    println!("total matches: {found}");
    assert!(found > 0, "no [[17,1,5]] cut found");
}
