//! Rotated planar surface code: lattice, memory circuits with HetArch's
//! heterogeneous noise model, and the matching graph used for decoding.
//!
//! This module reproduces the substrate behind the paper's planar surface
//! code study (§4.2.1, Figs. 6–7): a circuit-level Monte-Carlo memory
//! experiment in which **data** and **ancilla** qubits may have different
//! coherence times (`T_CD`, `T_CA`).

use serde::{Deserialize, Serialize};

use hetarch_exec::rare::{RareConfig, RareOutcome, StratifiedEstimator, StratumEval};
use hetarch_exec::{shard_seed, WorkerPool};
use hetarch_obs as obs;

use crate::circuit::{Circuit, PauliErr};
use crate::codes::code::{typed_string, StabilizerCode};
use crate::decoder::graph::MatchingGraph;
use crate::decoder::greedy::GreedyMatchingDecoder;
use crate::decoder::unionfind::UnionFindDecoder;
use crate::detector::{assemble_detectors, sample_detectors_on, DetectorSamples};
use crate::frame::{enumerate_at_weight, sample_at_weight, FaultModel};
use crate::pauli::Pauli;

/// Shots per decoding shard; fixed so shard boundaries never depend on the
/// worker count.
const DECODE_SHARD_SHOTS: usize = 1024;

// Surface-memory Monte-Carlo metrics (no-ops unless the `obs` feature is on
// and `HETARCH_OBS=1`).
static SURFACE_SHOTS: obs::Counter = obs::Counter::new("stab.surface.shots");
static SURFACE_FAILURES: obs::Counter = obs::Counter::new("stab.surface.failures");
static SURFACE_RUN_NS: obs::Histogram = obs::Histogram::new("stab.surface.run_ns");

/// One stabilizer plaquette of the rotated lattice.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Plaquette {
    /// Face row in `0..=d`.
    pub row: usize,
    /// Face column in `0..=d`.
    pub col: usize,
    /// True for a Z-type stabilizer (detects X errors).
    pub is_z: bool,
    /// Data-qubit indices (2 for boundary faces, 4 in the bulk).
    pub data: Vec<u32>,
}

/// The rotated surface-code lattice of distance `d`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SurfaceLattice {
    /// Code distance.
    pub d: usize,
    /// All stabilizer plaquettes, Z-type first.
    pub faces: Vec<Plaquette>,
    /// Number of Z-type faces (they are `faces[..num_z]`).
    pub num_z: usize,
}

impl SurfaceLattice {
    /// Builds the lattice for distance `d ≥ 2`.
    ///
    /// Data qubit `(r, c)` has index `r·d + c`. Bulk faces are checkerboard
    /// (`Z` when `row + col` is even); weight-2 boundary faces are X-type on
    /// the top/bottom edges and Z-type on the left/right edges, so the
    /// logical Z runs along row 0 and the logical X along column 0.
    ///
    /// # Panics
    ///
    /// Panics if `d < 2`.
    pub fn new(d: usize) -> Self {
        assert!(d >= 2, "surface code distance must be at least 2");
        let mut z_faces = Vec::new();
        let mut x_faces = Vec::new();
        for row in 0..=d {
            for col in 0..=d {
                let mut data = Vec::new();
                for (dr, dc) in [(-1i32, -1i32), (-1, 0), (0, -1), (0, 0)] {
                    let r = row as i32 + dr;
                    let c = col as i32 + dc;
                    if r >= 0 && r < d as i32 && c >= 0 && c < d as i32 {
                        data.push((r as usize * d + c as usize) as u32);
                    }
                }
                let is_z = (row + col) % 2 == 0;
                let keep = match data.len() {
                    4 => true,
                    2 => {
                        let top_bottom = row == 0 || row == d;
                        // Top/bottom boundary: X-type only; left/right: Z-type.
                        (top_bottom && !is_z) || (!top_bottom && is_z)
                    }
                    _ => false,
                };
                if keep {
                    if is_z {
                        z_faces.push(Plaquette {
                            row,
                            col,
                            is_z,
                            data,
                        });
                    } else {
                        x_faces.push(Plaquette {
                            row,
                            col,
                            is_z,
                            data,
                        });
                    }
                }
            }
        }
        let num_z = z_faces.len();
        z_faces.extend(x_faces);
        SurfaceLattice {
            d,
            faces: z_faces,
            num_z,
        }
    }

    /// Number of data qubits `d²`.
    pub fn num_data(&self) -> usize {
        self.d * self.d
    }

    /// Total qubits including one ancilla per face.
    pub fn num_qubits(&self) -> usize {
        self.num_data() + self.faces.len()
    }

    /// Ancilla qubit index of face `f`.
    pub fn ancilla(&self, f: usize) -> u32 {
        (self.num_data() + f) as u32
    }

    /// Data-qubit indices of the logical Z operator (row 0).
    pub fn logical_z_support(&self) -> Vec<u32> {
        (0..self.d as u32).collect()
    }

    /// Data-qubit indices of the logical X operator (column 0).
    pub fn logical_x_support(&self) -> Vec<u32> {
        (0..self.d as u32).map(|r| r * self.d as u32).collect()
    }

    /// For each data qubit, the Z-face indices adjacent to it (1 or 2).
    pub fn z_faces_of_data(&self) -> Vec<Vec<usize>> {
        self.faces_of_data(0..self.num_z)
    }

    /// For each data qubit, the X-face indices adjacent to it (1 or 2),
    /// reported as absolute face indices.
    pub fn x_faces_of_data(&self) -> Vec<Vec<usize>> {
        self.faces_of_data(self.num_z..self.faces.len())
    }

    fn faces_of_data(&self, range: std::ops::Range<usize>) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_data()];
        for f in range {
            for &q in &self.faces[f].data {
                out[q as usize].push(f);
            }
        }
        out
    }
}

/// Extracts the abstract [`StabilizerCode`] of the rotated surface code
/// (used by the UEC module, where checks are serialized).
///
/// # Examples
///
/// ```
/// use hetarch_stab::codes::surface::rotated_surface_code;
///
/// let c = rotated_surface_code(3);
/// assert_eq!(c.num_qubits(), 9);
/// assert_eq!(c.stabilizers().len(), 8);
/// assert_eq!(c.brute_force_distance(), 3);
/// ```
pub fn rotated_surface_code(d: usize) -> StabilizerCode {
    let lat = SurfaceLattice::new(d);
    let n = lat.num_data();
    let mut stabs = Vec::new();
    for face in &lat.faces {
        let support: Vec<usize> = face.data.iter().map(|&q| q as usize).collect();
        let pauli = if face.is_z { Pauli::Z } else { Pauli::X };
        stabs.push(typed_string(n, pauli, &support));
    }
    let logical_z: Vec<usize> = (0..d).collect(); // row 0
    let logical_x: Vec<usize> = (0..d).map(|r| r * d).collect(); // column 0
    StabilizerCode::new(
        format!("SC{d}"),
        n,
        d,
        stabs,
        vec![typed_string(n, Pauli::X, &logical_x)],
        vec![typed_string(n, Pauli::Z, &logical_z)],
    )
    .expect("rotated surface code is valid")
}

/// Circuit-level noise model with heterogeneous data/ancilla coherence
/// (times in seconds).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SurfaceNoise {
    /// Data-qubit coherence time (T1 = T2 = T_CD).
    pub t_data: f64,
    /// Ancilla-qubit coherence time (T1 = T2 = T_CA).
    pub t_anc: f64,
    /// Single-qubit gate duration.
    pub t_1q: f64,
    /// Two-qubit gate duration.
    pub t_2q: f64,
    /// Measurement (+reset) duration.
    pub t_meas: f64,
    /// Single-qubit gate depolarizing probability.
    pub p1: f64,
    /// Two-qubit gate depolarizing probability.
    pub p2: f64,
    /// Classical readout flip probability.
    pub p_meas: f64,
}

impl Default for SurfaceNoise {
    /// The paper's §4.2.1 settings: `T_C = 0.1 ms` baseline coherence,
    /// 40 ns single-qubit gates with coherence-limited error, 100 ns
    /// two-qubit gates at 1% error, 1 µs error-free readout.
    fn default() -> Self {
        SurfaceNoise {
            t_data: 0.1e-3,
            t_anc: 0.1e-3,
            t_1q: 40e-9,
            t_2q: 100e-9,
            t_meas: 1e-6,
            p1: 1e-3,
            p2: 1e-2,
            p_meas: 0.0,
        }
    }
}

impl SurfaceNoise {
    /// Idle Pauli-twirl probabilities for duration `t` and coherence `tc`
    /// (with T1 = T2 = tc, the standard assumption in §4).
    pub fn idle_twirl(t: f64, tc: f64) -> PauliErr {
        let pxy = (1.0 - (-t / tc).exp()) / 4.0;
        let pz = ((1.0 - (-t / tc).exp()) / 2.0 - pxy).max(0.0);
        PauliErr {
            px: pxy,
            py: pxy,
            pz,
        }
    }

    /// Duration of one full syndrome-extraction round.
    pub fn round_duration(&self) -> f64 {
        2.0 * self.t_1q + 4.0 * self.t_2q + self.t_meas
    }
}

/// Which logical observable a memory experiment protects.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryBasis {
    /// Protects logical Z: data start in `|0…0⟩`, Z-face detectors, X errors
    /// are harmful.
    #[default]
    Z,
    /// Protects logical X: data start in `|+…+⟩`, X-face detectors, Z errors
    /// are harmful.
    X,
}

/// A prebuilt decoder shared across decoding shards.
///
/// Union-find decodes straight from the packed [`crate::bits::BitTable`]
/// through a per-shard scratch arena (allocation-free across the shard's
/// shots, with the all-zero-syndrome fast path); greedy matching keeps the
/// dense per-shot path.
enum ShardDecoder {
    UnionFind(UnionFindDecoder),
    Greedy(GreedyMatchingDecoder),
}

impl ShardDecoder {
    /// Counts decoder-prediction/observable mismatches over shots
    /// `start..start + len`.
    fn count_failures(&self, samples: &DetectorSamples, start: usize, len: usize) -> u64 {
        match self {
            ShardDecoder::UnionFind(uf) => {
                let mut scratch = uf.new_scratch();
                uf.count_failures(
                    &mut scratch,
                    &samples.detectors,
                    &samples.observables,
                    0,
                    start,
                    len,
                )
            }
            ShardDecoder::Greedy(greedy) => {
                let n_det = samples.detectors.rows();
                let mut failures = 0u64;
                let mut syndrome = vec![false; n_det];
                for shot in start..start + len {
                    for (d, s) in syndrome.iter_mut().enumerate() {
                        *s = samples.detectors.get(d, shot);
                    }
                    let predicted = greedy.decode(&syndrome) & 1 == 1;
                    if predicted != samples.observables.get(0, shot) {
                        failures += 1;
                    }
                }
                failures
            }
        }
    }

    /// Reports every shot's failure bit to `on_shot(shot, failed)` — used
    /// where failures carry per-shot weights (enumerated rare strata).
    fn for_each_shot(
        &self,
        samples: &DetectorSamples,
        start: usize,
        len: usize,
        mut on_shot: impl FnMut(usize, bool),
    ) {
        match self {
            ShardDecoder::UnionFind(uf) => {
                let mut scratch = uf.new_scratch();
                uf.decode_shots(
                    &mut scratch,
                    &samples.detectors,
                    &samples.observables,
                    0,
                    start,
                    len,
                    on_shot,
                );
            }
            ShardDecoder::Greedy(greedy) => {
                let n_det = samples.detectors.rows();
                let mut syndrome = vec![false; n_det];
                for shot in start..start + len {
                    for (d, s) in syndrome.iter_mut().enumerate() {
                        *s = samples.detectors.get(d, shot);
                    }
                    let predicted = greedy.decode(&syndrome) & 1 == 1;
                    on_shot(shot, predicted != samples.observables.get(0, shot));
                }
            }
        }
    }
}

/// Decoder choice for the memory Monte Carlo.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SurfaceDecoder {
    /// Weighted union-find with peeling (the production decoder).
    #[default]
    UnionFind,
    /// Greedy shortest-path matching (ablation baseline).
    GreedyMatching,
}

/// A distance-`d`, `rounds`-round memory experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SurfaceMemory {
    /// Code distance.
    pub d: usize,
    /// Number of noisy syndrome-extraction rounds.
    pub rounds: usize,
    /// Noise model.
    pub noise: SurfaceNoise,
    /// Protected basis.
    pub basis: MemoryBasis,
}

impl SurfaceMemory {
    /// Creates a Z-basis memory experiment (typically `rounds = d`).
    pub fn new(d: usize, rounds: usize, noise: SurfaceNoise) -> Self {
        assert!(rounds >= 1, "at least one round required");
        SurfaceMemory {
            d,
            rounds,
            noise,
            basis: MemoryBasis::Z,
        }
    }

    /// Creates an X-basis memory experiment.
    pub fn new_x(d: usize, rounds: usize, noise: SurfaceNoise) -> Self {
        SurfaceMemory {
            basis: MemoryBasis::X,
            ..SurfaceMemory::new(d, rounds, noise)
        }
    }

    /// Indices of the faces whose detectors this experiment tracks.
    fn relevant_faces(&self, lat: &SurfaceLattice) -> std::ops::Range<usize> {
        match self.basis {
            MemoryBasis::Z => 0..lat.num_z,
            MemoryBasis::X => lat.num_z..lat.faces.len(),
        }
    }

    /// Generates the noisy memory circuit with Z-type detectors and the
    /// logical-Z observable.
    pub fn circuit(&self) -> Circuit {
        let lat = SurfaceLattice::new(self.d);
        let noise = &self.noise;
        let mut c = Circuit::new(lat.num_qubits() as u32);
        let data: Vec<u32> = (0..lat.num_data() as u32).collect();
        let all_anc: Vec<u32> = (0..lat.faces.len()).map(|f| lat.ancilla(f)).collect();
        let x_anc: Vec<u32> = (lat.num_z..lat.faces.len())
            .map(|f| lat.ancilla(f))
            .collect();
        let relevant = self.relevant_faces(&lat);

        // CX layer schedule: the two face types use transposed corner orders
        // so that hook errors do not reduce the code distance.
        let order_x = [(-1i32, -1i32), (-1, 0), (0, -1), (0, 0)];
        let order_z = [(-1i32, -1i32), (0, -1), (-1, 0), (0, 0)];

        let idle_data = |c: &mut Circuit, t: f64| {
            c.pauli_noise(SurfaceNoise::idle_twirl(t, noise.t_data), &data);
        };
        let idle_anc_subset = |c: &mut Circuit, t: f64, qs: &[u32]| {
            c.pauli_noise(SurfaceNoise::idle_twirl(t, noise.t_anc), qs);
        };

        // X-basis memories start from |+...+>.
        if self.basis == MemoryBasis::X {
            c.h(&data);
            c.depolarize1(noise.p1, &data);
            c.tick();
        }
        let mut prev_round_meas: Option<Vec<usize>> = None;
        for round in 0..self.rounds {
            // Hadamards on X ancillas.
            c.h(&x_anc);
            c.depolarize1(noise.p1, &x_anc);
            idle_data(&mut c, noise.t_1q);
            c.tick();
            // Four CX layers.
            for layer in 0..4 {
                let mut pairs = Vec::new();
                let mut busy = vec![false; lat.num_qubits()];
                for (f, face) in lat.faces.iter().enumerate() {
                    let (dr, dc) = if face.is_z {
                        order_z[layer]
                    } else {
                        order_x[layer]
                    };
                    let r = face.row as i32 + dr;
                    let cc = face.col as i32 + dc;
                    if r < 0 || r >= self.d as i32 || cc < 0 || cc >= self.d as i32 {
                        continue;
                    }
                    let dq = (r as usize * self.d + cc as usize) as u32;
                    let anc = lat.ancilla(f);
                    let pair = if face.is_z { (dq, anc) } else { (anc, dq) };
                    busy[pair.0 as usize] = true;
                    busy[pair.1 as usize] = true;
                    pairs.push(pair);
                }
                c.cx(&pairs);
                c.depolarize2(noise.p2, &pairs);
                let idle_d: Vec<u32> = data
                    .iter()
                    .copied()
                    .filter(|&q| !busy[q as usize])
                    .collect();
                c.pauli_noise(SurfaceNoise::idle_twirl(noise.t_2q, noise.t_data), &idle_d);
                let idle_a: Vec<u32> = all_anc
                    .iter()
                    .copied()
                    .filter(|&q| !busy[q as usize])
                    .collect();
                idle_anc_subset(&mut c, noise.t_2q, &idle_a);
                c.tick();
            }
            // Hadamards back.
            c.h(&x_anc);
            c.depolarize1(noise.p1, &x_anc);
            idle_data(&mut c, noise.t_1q);
            c.tick();
            // Measure + reset all ancillas; data idles for the readout.
            let meas = c.measure_reset(&all_anc, noise.p_meas);
            idle_data(&mut c, noise.t_meas);
            c.tick();
            // Detectors on the protected basis' faces.
            for f in relevant.clone() {
                match &prev_round_meas {
                    None => {
                        c.detector(&[meas[f]]);
                    }
                    Some(prev) => {
                        c.detector(&[prev[f], meas[f]]);
                    }
                }
            }
            let _ = round;
            prev_round_meas = Some(meas);
        }
        // Final transversal data measurement (X basis rotates first).
        if self.basis == MemoryBasis::X {
            c.h(&data);
            c.depolarize1(noise.p1, &data);
            c.tick();
        }
        let fin = c.measure(&data, 0.0);
        let prev = prev_round_meas.expect("at least one round");
        for f in relevant.clone() {
            let face = &lat.faces[f];
            let mut refs: Vec<usize> = face.data.iter().map(|&q| fin[q as usize]).collect();
            refs.push(prev[f]);
            c.detector(&refs);
        }
        let support = match self.basis {
            MemoryBasis::Z => lat.logical_z_support(),
            MemoryBasis::X => lat.logical_x_support(),
        };
        let obs: Vec<usize> = support.iter().map(|&q| fin[q as usize]).collect();
        c.observable(0, &obs);
        c
    }

    /// Builds the space-time matching graph matching [`Self::circuit`]'s
    /// detector ordering (round-major, Z faces in lattice order).
    pub fn matching_graph(&self) -> MatchingGraph {
        let lat = SurfaceLattice::new(self.d);
        let noise = &self.noise;
        let relevant = self.relevant_faces(&lat);
        let face_offset = relevant.start;
        let n_rel = relevant.len();
        let det_rounds = self.rounds + 1; // rounds of ancilla + final data round
        let mut g = MatchingGraph::new(det_rounds * n_rel);
        let rel_of_data: Vec<Vec<usize>> = match self.basis {
            MemoryBasis::Z => lat.z_faces_of_data(),
            MemoryBasis::X => lat.x_faces_of_data(),
        };
        let support = match self.basis {
            MemoryBasis::Z => lat.logical_z_support(),
            MemoryBasis::X => lat.logical_x_support(),
        };
        let logical: Vec<bool> = {
            let mut v = vec![false; lat.num_data()];
            for q in support {
                v[q as usize] = true;
            }
            v
        };

        let combine = |a: f64, b: f64| a * (1.0 - b) + b * (1.0 - a);
        let round_t = noise.round_duration();
        // Probability that a data qubit suffers an X-component error per
        // round: idling plus the marginal of its CX depolarizing events.
        let idle = SurfaceNoise::idle_twirl(round_t, noise.t_data);
        let p_idle_x = idle.px + idle.py;
        // Probability that an ancilla measurement outcome is flipped.
        let anc_idle = SurfaceNoise::idle_twirl(round_t, noise.t_anc);
        let p_gate_anc = 1.0 - (1.0 - 8.0 / 15.0 * noise.p2).powi(4);
        let p_time = combine(noise.p_meas, combine(anc_idle.px + anc_idle.py, p_gate_anc));

        // Detector index: face indices are rebased to the relevant range.
        let det = |t: usize, f: usize| (t * n_rel + (f - face_offset)) as u32;
        // CX layer in which a face collects data qubit `q` (the schedule of
        // `circuit()`), used to orient space-time diagonals.
        let order_z = [(-1i32, -1i32), (0, -1), (-1, 0), (0, 0)];
        let order_x = [(-1i32, -1i32), (-1, 0), (0, -1), (0, 0)];
        let collect_layer = |f: usize, q: usize| -> usize {
            let face = &lat.faces[f];
            let order = if face.is_z { &order_z } else { &order_x };
            for (layer, (dr, dc)) in order.iter().enumerate() {
                let r = face.row as i32 + dr;
                let c = face.col as i32 + dc;
                if r >= 0
                    && c >= 0
                    && (r as usize) < self.d
                    && (c as usize) < self.d
                    && (r as usize * self.d + c as usize) == q
                {
                    return layer;
                }
            }
            usize::MAX
        };
        for (q, zfaces) in rel_of_data.iter().enumerate() {
            let n_cx = lat
                .faces
                .iter()
                .filter(|f| f.data.contains(&(q as u32)))
                .count();
            let p_gate = 1.0 - (1.0 - 8.0 / 15.0 * noise.p2).powi(n_cx as i32);
            let p_space = combine(p_idle_x, p_gate);
            let obs_mask = if logical[q] { 1 } else { 0 };
            for t in 0..det_rounds {
                match zfaces.as_slice() {
                    [a] => g.add_edge(det(t, *a), None, p_space, obs_mask),
                    [a, b] => g.add_edge(det(t, *a), Some(det(t, *b)), p_space, obs_mask),
                    other => panic!("data qubit adjacent to {} relevant faces", other.len()),
                }
            }
            // Space-time diagonals: an X landing between the two faces'
            // CX layers is seen by the later face this round and by the
            // earlier face only next round.
            if let [a, b] = zfaces.as_slice() {
                let (early, late) = if collect_layer(*a, q) <= collect_layer(*b, q) {
                    (*a, *b)
                } else {
                    (*b, *a)
                };
                let p_diag = p_gate / 2.0;
                for t in 0..self.rounds {
                    g.add_edge(det(t, late), Some(det(t + 1, early)), p_diag, obs_mask);
                }
            }
        }
        for f in relevant {
            for t in 0..self.rounds {
                g.add_edge(det(t, f), Some(det(t + 1, f)), p_time, 0);
            }
        }
        g
    }

    /// Runs the full Monte-Carlo memory experiment: sample detectors, decode
    /// each shot with union-find, and compare against the true observable.
    ///
    /// Returns `(logical_error_rate_per_shot, logical_error_rate_per_round)`.
    ///
    /// Sampling and decoding are sharded over the global
    /// [`WorkerPool`]; shard boundaries and RNG streams depend only on
    /// `(shots, seed)`, so the result is **bit-identical for every worker
    /// count**. `shots == 0` reports a rate of zero.
    pub fn logical_error_rate(&self, shots: usize, seed: u64) -> (f64, f64) {
        self.logical_error_rate_with(SurfaceDecoder::UnionFind, shots, seed)
    }

    /// As [`Self::logical_error_rate`] with an explicit decoder choice (the
    /// decoder ablation knob).
    pub fn logical_error_rate_with(
        &self,
        which: SurfaceDecoder,
        shots: usize,
        seed: u64,
    ) -> (f64, f64) {
        self.logical_error_rate_on(WorkerPool::global(), which, shots, seed)
    }

    /// As [`Self::logical_error_rate_with`] with an explicit worker pool.
    pub fn logical_error_rate_on(
        &self,
        pool: &WorkerPool,
        which: SurfaceDecoder,
        shots: usize,
        seed: u64,
    ) -> (f64, f64) {
        let circuit = self.circuit();
        let decoder = self.build_decoder(&circuit, which);
        let span = obs::span!(SURFACE_RUN_NS);
        let samples = sample_detectors_on(pool, &circuit, shots, seed);
        // Decoding is deterministic per shot, so sharding it only splits the
        // work; shot order inside the count is irrelevant to the sum. Each
        // shard owns one scratch arena, reused across its shots.
        let errors: u64 = pool
            .run_shards(shots, DECODE_SHARD_SHOTS, seed, |shard| {
                decoder.count_failures(&samples, shard.start, shard.len)
            })
            .into_iter()
            .sum();
        let errors = errors as usize;
        drop(span);
        SURFACE_SHOTS.add(shots as u64);
        SURFACE_FAILURES.add(errors as u64);
        if shots == 0 {
            return (0.0, 0.0);
        }
        let per_shot = errors as f64 / shots as f64;
        // Convert to a per-round rate: p_shot = 1 - (1-p_round)^rounds.
        let per_round = if per_shot >= 1.0 {
            1.0
        } else {
            1.0 - (1.0 - per_shot).powf(1.0 / self.rounds as f64)
        };
        (per_shot, per_round)
    }

    /// Instantiates the shared decoder for this memory's matching graph.
    fn build_decoder(&self, circuit: &Circuit, which: SurfaceDecoder) -> ShardDecoder {
        let graph = self.matching_graph();
        debug_assert_eq!(graph.num_nodes(), circuit.num_detectors());
        match which {
            SurfaceDecoder::UnionFind => ShardDecoder::UnionFind(UnionFindDecoder::new(&graph)),
            SurfaceDecoder::GreedyMatching => {
                ShardDecoder::Greedy(GreedyMatchingDecoder::new(&graph))
            }
        }
    }

    /// Rare-event logical error rate via weight-stratified importance
    /// sampling, on the global [`WorkerPool`].
    ///
    /// Where the plain [`Self::logical_error_rate`] returns `0/N` for any
    /// deep-subthreshold point, this estimator resolves per-shot rates far
    /// below `1/shots` and reports an explicit error budget: the
    /// [`hetarch_exec::rare::RareReport`] carries `(p_L, sigma,
    /// truncation_bound)`. Strata with at most
    /// [`RareConfig::enumerate_threshold`] fault configurations are
    /// enumerated exactly (zero variance); larger strata draw
    /// [`RareConfig::shots_per_stratum`] conditioned shots. The walk stops
    /// once the exact prior tail is below `abs_tol.max(rel_tol · p̂_L)`, or
    /// returns [`RareOutcome::Unconverged`] when `max_strata` runs out
    /// first.
    pub fn logical_error_rate_rare(
        &self,
        which: SurfaceDecoder,
        config: RareConfig,
        seed: u64,
    ) -> RareOutcome {
        self.logical_error_rate_rare_on(WorkerPool::global(), which, config, seed)
    }

    /// As [`Self::logical_error_rate_rare`] with an explicit worker pool.
    ///
    /// Stratum `w` derives its sampling seed as `shard_seed(seed, w)`, and
    /// all conditioned sampling and decoding run through the sharded
    /// engine, so the full report is **bit-identical for every worker
    /// count**.
    pub fn logical_error_rate_rare_on(
        &self,
        pool: &WorkerPool,
        which: SurfaceDecoder,
        config: RareConfig,
        seed: u64,
    ) -> RareOutcome {
        let circuit = self.circuit();
        let decoder = self.build_decoder(&circuit, which);
        let model = FaultModel::from_circuit(&circuit);
        let prior = model.prior();
        let span = obs::span!(SURFACE_RUN_NS);

        let outcome = StratifiedEstimator::new(&prior, config).run(|w| {
            match enumerate_at_weight(&circuit, &model, w, config.enumerate_threshold) {
                Some((configs, frames)) => {
                    let samples = assemble_detectors(&circuit, &frames.meas_flips, configs.len());
                    let mut failure_probability = 0.0;
                    decoder.for_each_shot(&samples, 0, configs.len(), |shot, failed| {
                        if failed {
                            failure_probability += configs[shot].weight;
                        }
                    });
                    StratumEval::Enumerated {
                        failure_probability,
                        configs: configs.len() as u64,
                    }
                }
                None => {
                    let shots = config.shots_per_stratum;
                    let stratum_seed = shard_seed(seed, w as u64);
                    let frames = sample_at_weight(&circuit, &model, w, shots, stratum_seed, pool);
                    let samples = assemble_detectors(&circuit, &frames.meas_flips, shots);
                    let failures: u64 = pool
                        .run_shards(shots, DECODE_SHARD_SHOTS, stratum_seed, |shard| {
                            decoder.count_failures(&samples, shard.start, shard.len)
                        })
                        .into_iter()
                        .sum();
                    StratumEval::Sampled { failures, shots }
                }
            }
        });
        drop(span);
        let report = outcome.report();
        SURFACE_SHOTS.add(report.total_shots as u64);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::nondeterministic_detectors;

    #[test]
    fn lattice_counts() {
        for d in [2, 3, 4, 5, 7] {
            let lat = SurfaceLattice::new(d);
            assert_eq!(lat.faces.len(), d * d - 1, "d={d}");
            assert_eq!(lat.num_z, (d * d - 1) / 2, "d={d}");
            // Every data qubit touches 1 or 2 Z faces.
            for z in lat.z_faces_of_data() {
                assert!(!z.is_empty() && z.len() <= 2);
            }
        }
    }

    #[test]
    fn surface_code_parameters() {
        for d in [2, 3, 4] {
            let code = rotated_surface_code(d);
            assert_eq!(code.num_qubits(), d * d);
            assert_eq!(code.stabilizers().len(), d * d - 1);
            assert!(code.is_css());
            assert_eq!(code.brute_force_distance(), d, "distance for d={d}");
        }
    }

    #[test]
    fn memory_circuit_detectors_are_deterministic() {
        let mem = SurfaceMemory::new(3, 2, SurfaceNoise::default());
        let c = mem.circuit();
        assert!(nondeterministic_detectors(&c).is_empty());
        // Detector count: (rounds + 1) * num_z.
        let lat = SurfaceLattice::new(3);
        assert_eq!(c.num_detectors(), 3 * lat.num_z);
        assert_eq!(c.num_detectors(), mem.matching_graph().num_nodes());
    }

    #[test]
    fn noiseless_memory_never_errs() {
        let noise = SurfaceNoise {
            t_data: 1e6,
            t_anc: 1e6,
            p1: 0.0,
            p2: 0.0,
            p_meas: 0.0,
            ..SurfaceNoise::default()
        };
        let mem = SurfaceMemory::new(3, 3, noise);
        let (per_shot, _) = mem.logical_error_rate(200, 5);
        assert_eq!(per_shot, 0.0);
    }

    #[test]
    fn low_noise_is_handled_well() {
        let noise = SurfaceNoise {
            t_data: 1.0, // essentially no idle noise
            t_anc: 1.0,
            p1: 1e-4,
            p2: 1e-3,
            p_meas: 1e-3,
            ..SurfaceNoise::default()
        };
        let mem = SurfaceMemory::new(3, 3, noise);
        let (per_shot, _) = mem.logical_error_rate(2000, 7);
        assert!(per_shot < 0.05, "low-noise d=3 logical rate {per_shot}");
    }

    #[test]
    fn distance_five_beats_distance_three_below_threshold() {
        let noise = SurfaceNoise {
            t_data: 2e-3,
            t_anc: 2e-3,
            p1: 2e-4,
            p2: 2e-3,
            p_meas: 2e-3,
            ..SurfaceNoise::default()
        };
        let shots = 20_000;
        let (p3, _) = SurfaceMemory::new(3, 3, noise).logical_error_rate(shots, 11);
        let (p5, _) = SurfaceMemory::new(5, 5, noise).logical_error_rate(shots, 13);
        assert!(p5 < p3, "below threshold d=5 ({p5}) should beat d=3 ({p3})");
    }

    #[test]
    fn rare_estimator_tracks_plain_estimator_at_high_noise() {
        // High enough noise for the plain estimator to be an oracle.
        let noise = SurfaceNoise {
            t_data: 2e-3,
            t_anc: 2e-3,
            p1: 2e-4,
            p2: 4e-3,
            p_meas: 2e-3,
            ..SurfaceNoise::default()
        };
        let mem = SurfaceMemory::new(3, 2, noise);
        let shots = 40_000;
        let (plain, _) = mem.logical_error_rate(shots, 31);
        let config = RareConfig {
            max_strata: 40,
            rel_tol: 0.02,
            shots_per_stratum: 6_000,
            ..RareConfig::default()
        };
        let outcome = mem.logical_error_rate_rare(SurfaceDecoder::UnionFind, config, 33);
        assert!(outcome.is_converged(), "{:?}", outcome.report());
        let report = outcome.report();
        assert!(report.p_l > 0.0);
        // Combined tolerance: plain sampling noise + stratified sigma +
        // truncation, at 5 sigma.
        let plain_sigma = (plain * (1.0 - plain) / shots as f64).sqrt();
        let tol = 5.0 * (plain_sigma + report.sigma) + report.truncation_bound;
        assert!(
            (report.p_l - plain).abs() <= tol,
            "stratified {} vs plain {plain} (tol {tol})",
            report.p_l
        );
    }

    #[test]
    fn rare_estimator_report_is_reproducible() {
        let mem = SurfaceMemory::new(3, 2, SurfaceNoise::default());
        let config = RareConfig {
            max_strata: 6,
            rel_tol: 0.5,
            shots_per_stratum: 1_500,
            enumerate_threshold: 256,
            ..RareConfig::default()
        };
        let pool = WorkerPool::new(2);
        let a = mem.logical_error_rate_rare_on(&pool, SurfaceDecoder::UnionFind, config, 9);
        let b = mem.logical_error_rate_rare_on(&pool, SurfaceDecoder::UnionFind, config, 9);
        assert_eq!(a, b, "same pool, same seed must reproduce bit-identically");
    }

    #[test]
    fn better_data_coherence_reduces_logical_error() {
        let base = SurfaceNoise::default();
        let better = SurfaceNoise {
            t_data: 0.5e-3,
            ..base
        };
        let shots = 8_000;
        let (p_base, _) = SurfaceMemory::new(3, 3, base).logical_error_rate(shots, 17);
        let (p_better, _) = SurfaceMemory::new(3, 3, better).logical_error_rate(shots, 17);
        assert!(
            p_better < p_base,
            "5x data coherence should help: {p_better} vs {p_base}"
        );
    }
}

#[cfg(test)]
mod xbasis_tests {
    use super::*;
    use crate::detector::nondeterministic_detectors;

    #[test]
    fn x_memory_detectors_are_deterministic() {
        for d in [3usize, 5] {
            let mem = SurfaceMemory::new_x(d, 2, SurfaceNoise::default());
            let c = mem.circuit();
            assert!(
                nondeterministic_detectors(&c).is_empty(),
                "d={d} X-memory has nondeterministic detectors"
            );
            assert_eq!(c.num_detectors(), mem.matching_graph().num_nodes());
        }
    }

    #[test]
    fn x_memory_noiseless_never_errs() {
        let noise = SurfaceNoise {
            t_data: 1e6,
            t_anc: 1e6,
            p1: 0.0,
            p2: 0.0,
            p_meas: 0.0,
            ..SurfaceNoise::default()
        };
        let mem = SurfaceMemory::new_x(3, 3, noise);
        let (per_shot, _) = mem.logical_error_rate(200, 5);
        assert_eq!(per_shot, 0.0);
    }

    #[test]
    fn x_and_z_memories_agree_under_symmetric_noise() {
        // With T1 = T2 (px = py = pz after twirling) and depolarizing gates,
        // the two bases should have statistically similar logical rates.
        let noise = SurfaceNoise::default();
        let shots = 8_000;
        let (_, pz) = SurfaceMemory::new(5, 5, noise).logical_error_rate(shots, 21);
        let (_, px) = SurfaceMemory::new_x(5, 5, noise).logical_error_rate(shots, 22);
        assert!(
            (px - pz).abs() < 0.5 * (px + pz),
            "X-memory {px} vs Z-memory {pz} should be within 50%"
        );
    }

    #[test]
    fn x_memory_detector_count_uses_x_faces() {
        let d = 4; // asymmetric counts: 7 Z faces vs 8 X faces
        let lat = SurfaceLattice::new(d);
        let zc = SurfaceMemory::new(d, 2, SurfaceNoise::default())
            .circuit()
            .num_detectors();
        let xc = SurfaceMemory::new_x(d, 2, SurfaceNoise::default())
            .circuit()
            .num_detectors();
        assert_eq!(zc, 3 * lat.num_z);
        assert_eq!(xc, 3 * (lat.faces.len() - lat.num_z));
        assert_ne!(zc, xc);
    }
}
