//! QEC code definitions: the generic [`StabilizerCode`] type, the small
//! codes evaluated on the UEC module, and the rotated surface code family.

pub mod code;
pub mod repetition;
pub mod small;
pub mod surface;

pub use code::{typed_string, CodeError, StabilizerCode};
pub use repetition::repetition_code;
pub use small::{color_17, reed_muller_15, steane};
pub use surface::{
    rotated_surface_code, MemoryBasis, SurfaceDecoder, SurfaceLattice, SurfaceMemory, SurfaceNoise,
};
