//! Generic stabilizer code definitions.
//!
//! A [`StabilizerCode`] carries explicit generator and logical-operator
//! Pauli strings. The UEC module (paper §4.2.2) consumes codes through this
//! interface, which is what makes the architecture *code-agnostic*.

use serde::{Deserialize, Serialize};

use crate::pauli::{Pauli, PauliString};

/// Error produced when a code definition is inconsistent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodeError {
    /// Two stabilizer generators anticommute.
    AnticommutingStabilizers(usize, usize),
    /// A logical operator anticommutes with a stabilizer.
    LogicalVsStabilizer(usize, usize),
    /// Logical X_i and Z_j have the wrong commutation relation.
    LogicalPairing(usize, usize),
    /// Operator length does not match the qubit count.
    LengthMismatch,
}

impl std::fmt::Display for CodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeError::AnticommutingStabilizers(i, j) => {
                write!(f, "stabilizer generators {i} and {j} anticommute")
            }
            CodeError::LogicalVsStabilizer(l, s) => {
                write!(f, "logical operator {l} anticommutes with stabilizer {s}")
            }
            CodeError::LogicalPairing(i, j) => {
                write!(f, "logical X_{i} and Z_{j} have wrong commutation relation")
            }
            CodeError::LengthMismatch => write!(f, "operator length does not match qubit count"),
        }
    }
}

impl std::error::Error for CodeError {}

/// An `[[n, k, d]]` stabilizer code given by explicit generators.
///
/// # Examples
///
/// ```
/// use hetarch_stab::codes::steane;
///
/// let code = steane();
/// assert_eq!(code.num_qubits(), 7);
/// assert_eq!(code.num_logical(), 1);
/// assert_eq!(code.distance(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StabilizerCode {
    name: String,
    n: usize,
    distance: usize,
    stabilizers: Vec<PauliString>,
    logical_x: Vec<PauliString>,
    logical_z: Vec<PauliString>,
}

impl StabilizerCode {
    /// Creates and validates a code.
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] if generators do not commute, logicals do not
    /// commute with the group, or logical pairs are not conjugate.
    pub fn new(
        name: impl Into<String>,
        n: usize,
        distance: usize,
        stabilizers: Vec<PauliString>,
        logical_x: Vec<PauliString>,
        logical_z: Vec<PauliString>,
    ) -> Result<Self, CodeError> {
        for p in stabilizers
            .iter()
            .chain(logical_x.iter())
            .chain(logical_z.iter())
        {
            if p.num_qubits() != n {
                return Err(CodeError::LengthMismatch);
            }
        }
        for i in 0..stabilizers.len() {
            for j in (i + 1)..stabilizers.len() {
                if !stabilizers[i].commutes_with(&stabilizers[j]) {
                    return Err(CodeError::AnticommutingStabilizers(i, j));
                }
            }
        }
        for (l, log) in logical_x.iter().chain(logical_z.iter()).enumerate() {
            for (s, stab) in stabilizers.iter().enumerate() {
                if !log.commutes_with(stab) {
                    return Err(CodeError::LogicalVsStabilizer(l, s));
                }
            }
        }
        for (i, lx) in logical_x.iter().enumerate() {
            for (j, lz) in logical_z.iter().enumerate() {
                let commute = lx.commutes_with(lz);
                if (i == j) == commute {
                    return Err(CodeError::LogicalPairing(i, j));
                }
            }
        }
        Ok(StabilizerCode {
            name: name.into(),
            n,
            distance,
            stabilizers,
            logical_x,
            logical_z,
        })
    }

    /// Human-readable code name (e.g. `"Steane"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits `n`.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of logical qubits `k = n − rank`.
    pub fn num_logical(&self) -> usize {
        self.logical_x.len()
    }

    /// Code distance `d` (as declared; verified by tests for shipped codes).
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// Stabilizer generators.
    pub fn stabilizers(&self) -> &[PauliString] {
        &self.stabilizers
    }

    /// Logical X operators.
    pub fn logical_x(&self) -> &[PauliString] {
        &self.logical_x
    }

    /// Logical Z operators.
    pub fn logical_z(&self) -> &[PauliString] {
        &self.logical_z
    }

    /// The syndrome of a Pauli error: bit `i` is set when the error
    /// anticommutes with stabilizer `i`.
    pub fn syndrome_of(&self, error: &PauliString) -> Vec<bool> {
        self.stabilizers
            .iter()
            .map(|s| !s.commutes_with(error))
            .collect()
    }

    /// True when `error` has trivial syndrome (commutes with every
    /// stabilizer generator).
    pub fn in_normalizer(&self, error: &PauliString) -> bool {
        self.syndrome_of(error).iter().all(|&b| !b)
    }

    /// For a residual error with trivial syndrome, reports which logical
    /// qubits are X-flipped / Z-flipped: `(x_flips, z_flips)` where bit `i`
    /// of `x_flips` means logical qubit `i` suffered a logical X (it
    /// anticommutes with `logical_z[i]`).
    pub fn logical_action(&self, residual: &PauliString) -> (u64, u64) {
        debug_assert!(self.in_normalizer(residual));
        let mut x_flips = 0u64;
        let mut z_flips = 0u64;
        for i in 0..self.num_logical() {
            if !residual.commutes_with(&self.logical_z[i]) {
                x_flips |= 1 << i;
            }
            if !residual.commutes_with(&self.logical_x[i]) {
                z_flips |= 1 << i;
            }
        }
        (x_flips, z_flips)
    }

    /// True when `residual` (trivial syndrome) acts non-trivially on any
    /// logical qubit.
    pub fn is_logical_error(&self, residual: &PauliString) -> bool {
        let (x, z) = self.logical_action(residual);
        x != 0 || z != 0
    }

    /// True when every stabilizer generator is X-only or Z-only (a CSS code).
    pub fn is_css(&self) -> bool {
        self.stabilizers.iter().all(|s| {
            let mut has_x = false;
            let mut has_z = false;
            for (_, p) in s.iter_support() {
                match p {
                    Pauli::X => has_x = true,
                    Pauli::Z => has_z = true,
                    Pauli::Y => {
                        has_x = true;
                        has_z = true;
                    }
                    Pauli::I => {}
                }
            }
            !(has_x && has_z)
        })
    }

    /// Computes the exact code distance by exhausting products of logical
    /// representatives with all stabilizer-group elements. Exponential in the
    /// number of generators; intended for validating shipped codes (≤ ~20
    /// generators).
    pub fn brute_force_distance(&self) -> usize {
        let r = self.stabilizers.len();
        assert!(r <= 24, "brute-force distance limited to 24 generators");
        let mut best = usize::MAX;
        for log in self.logical_x.iter().chain(self.logical_z.iter()) {
            for mask in 0u64..(1u64 << r) {
                let mut op = log.clone();
                for (i, s) in self.stabilizers.iter().enumerate() {
                    if (mask >> i) & 1 == 1 {
                        op.mul_assign(s);
                    }
                }
                best = best.min(op.weight());
            }
        }
        best
    }
}

/// Builds a Pauli string of a single type over the given support.
pub fn typed_string(n: usize, pauli: Pauli, support: &[usize]) -> PauliString {
    let pairs: Vec<(usize, Pauli)> = support.iter().map(|&q| (q, pauli)).collect();
    PauliString::from_sparse(n, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bit_flip_code() -> StabilizerCode {
        // [[3,1,1]] bit-flip repetition code (distance 1 against Z).
        StabilizerCode::new(
            "rep3",
            3,
            1,
            vec!["ZZI".parse().unwrap(), "IZZ".parse().unwrap()],
            vec!["XXX".parse().unwrap()],
            vec!["ZII".parse().unwrap()],
        )
        .unwrap()
    }

    #[test]
    fn syndrome_identifies_error_location() {
        let code = bit_flip_code();
        let e0: PauliString = "XII".parse().unwrap();
        let e1: PauliString = "IXI".parse().unwrap();
        let e2: PauliString = "IIX".parse().unwrap();
        assert_eq!(code.syndrome_of(&e0), vec![true, false]);
        assert_eq!(code.syndrome_of(&e1), vec![true, true]);
        assert_eq!(code.syndrome_of(&e2), vec![false, true]);
    }

    #[test]
    fn logical_action_detects_flips() {
        let code = bit_flip_code();
        let lx: PauliString = "XXX".parse().unwrap();
        assert!(code.in_normalizer(&lx));
        let (x, z) = code.logical_action(&lx);
        assert_eq!(x, 1);
        assert_eq!(z, 0);
        let stab: PauliString = "ZZI".parse().unwrap();
        assert!(!code.is_logical_error(&stab));
    }

    #[test]
    fn invalid_codes_rejected() {
        // Anticommuting "stabilizers".
        let bad = StabilizerCode::new(
            "bad",
            2,
            1,
            vec!["XI".parse().unwrap(), "ZI".parse().unwrap()],
            vec![],
            vec![],
        );
        assert_eq!(bad.unwrap_err(), CodeError::AnticommutingStabilizers(0, 1));

        // Logical that anticommutes with a stabilizer.
        let bad = StabilizerCode::new(
            "bad",
            2,
            1,
            vec!["ZZ".parse().unwrap()],
            vec!["XI".parse().unwrap()],
            vec!["ZI".parse().unwrap()],
        );
        assert!(matches!(
            bad.unwrap_err(),
            CodeError::LogicalVsStabilizer(..)
        ));
    }

    #[test]
    fn css_detection() {
        let code = bit_flip_code();
        assert!(code.is_css());
        let non_css =
            StabilizerCode::new("xz", 2, 1, vec!["XZ".parse().unwrap()], vec![], vec![]).unwrap();
        assert!(!non_css.is_css());
    }

    #[test]
    fn brute_force_distance_of_rep_code() {
        // Distance against X errors: logical Z = ZII has weight-1
        // representative, so full distance is 1.
        let code = bit_flip_code();
        assert_eq!(code.brute_force_distance(), 1);
    }
}
