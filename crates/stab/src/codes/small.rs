//! Small QEC codes evaluated on the UEC module (paper §4.2.2, Fig. 9,
//! Table 3): Steane, the 17-qubit color code, and the 15-qubit Reed–Muller
//! code. Surface codes come from [`crate::codes::surface`].

use crate::codes::code::{typed_string, StabilizerCode};
use crate::pauli::Pauli;

/// The Steane `[[7,1,3]]` code (CSS, self-dual, from the classical Hamming
/// code).
///
/// # Examples
///
/// ```
/// use hetarch_stab::codes::steane;
/// assert_eq!(steane().brute_force_distance(), 3);
/// ```
pub fn steane() -> StabilizerCode {
    let supports: [&[usize]; 3] = [&[3, 4, 5, 6], &[1, 2, 5, 6], &[0, 2, 4, 6]];
    let mut stabs = Vec::new();
    for s in supports {
        stabs.push(typed_string(7, Pauli::X, s));
    }
    for s in supports {
        stabs.push(typed_string(7, Pauli::Z, s));
    }
    let all: Vec<usize> = (0..7).collect();
    StabilizerCode::new(
        "Steane",
        7,
        3,
        stabs,
        vec![typed_string(7, Pauli::X, &all)],
        vec![typed_string(7, Pauli::Z, &all)],
    )
    .expect("steane code is valid")
}

/// The `[[17,1,5]]` distance-5 triangular color code on the 4.8.8
/// (square-octagon) lattice.
///
/// The face set was derived geometrically from a triangular cut of the
/// square-octagon tiling with one boundary per color (the derivation harness
/// lives in `tests/color_search.rs`), yielding the standard structure of
/// seven weight-4 checks plus one weight-8 octagon check. Being a color
/// code, it is self-dual CSS: each face carries both an X-type and a Z-type
/// generator.
///
/// # Examples
///
/// ```
/// use hetarch_stab::codes::color_17;
/// let c = color_17();
/// assert_eq!(c.num_qubits(), 17);
/// assert_eq!(c.distance(), 5);
/// ```
pub fn color_17() -> StabilizerCode {
    let faces: [&[usize]; 8] = [
        &[0, 3, 8, 4],
        &[1, 5, 9, 6],
        &[2, 7, 6, 1],
        &[10, 12, 3, 8],
        &[10, 12, 15, 13],
        &[11, 9, 6, 7],
        &[11, 14, 13, 10, 8, 4, 5, 9], // the central octagon
        &[16, 15, 13, 14],
    ];
    let mut stabs = Vec::new();
    for f in faces {
        stabs.push(typed_string(17, Pauli::X, f));
    }
    for f in faces {
        stabs.push(typed_string(17, Pauli::Z, f));
    }
    let logical: &[usize] = &[0, 1, 2, 4, 5];
    StabilizerCode::new(
        "17QCC",
        17,
        5,
        stabs,
        vec![typed_string(17, Pauli::X, logical)],
        vec![typed_string(17, Pauli::Z, logical)],
    )
    .expect("17-qubit color code is valid")
}

/// The `[[15,1,3]]` punctured Reed–Muller code (the magic-state-distillation
/// code with transversal T; non-planar check topology).
///
/// Qubits are labelled by the nonzero vectors of `GF(2)⁴` (qubit `q`
/// corresponds to the vector `q + 1`). X generators are the four weight-8
/// coordinate hyperplanes; Z generators are those hyperplanes again plus the
/// six weight-4 pairwise intersections.
///
/// # Examples
///
/// ```
/// use hetarch_stab::codes::reed_muller_15;
/// let c = reed_muller_15();
/// assert_eq!(c.num_qubits(), 15);
/// assert_eq!(c.stabilizers().len(), 14);
/// ```
pub fn reed_muller_15() -> StabilizerCode {
    let n = 15;
    let vec_of = |q: usize| q + 1; // qubit q <-> nonzero vector in GF(2)^4
    let mut stabs = Vec::new();
    // X-type: bit i set (4 generators, weight 8).
    for i in 0..4 {
        let support: Vec<usize> = (0..n).filter(|&q| (vec_of(q) >> i) & 1 == 1).collect();
        stabs.push(typed_string(n, Pauli::X, &support));
    }
    // Z-type (10 generators spanning the even subcode of punctured RM(2,4)):
    // the four coordinate hyperplanes again, as Z (weight 8), plus the six
    // pairwise intersections (weight 4).
    for i in 0..4 {
        let support: Vec<usize> = (0..n).filter(|&q| (vec_of(q) >> i) & 1 == 1).collect();
        stabs.push(typed_string(n, Pauli::Z, &support));
    }
    for i in 0..4 {
        for j in (i + 1)..4 {
            let support: Vec<usize> = (0..n)
                .filter(|&q| (vec_of(q) >> i) & 1 == 1 && (vec_of(q) >> j) & 1 == 1)
                .collect();
            stabs.push(typed_string(n, Pauli::Z, &support));
        }
    }
    let all: Vec<usize> = (0..n).collect();
    StabilizerCode::new(
        "RM15",
        n,
        3,
        stabs,
        vec![typed_string(n, Pauli::X, &all)],
        vec![typed_string(n, Pauli::Z, &all)],
    )
    .expect("reed-muller code is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steane_parameters() {
        let c = steane();
        assert_eq!(c.num_qubits(), 7);
        assert_eq!(c.stabilizers().len(), 6);
        assert!(c.is_css());
        assert_eq!(c.brute_force_distance(), 3);
    }

    #[test]
    fn color17_parameters() {
        let c = color_17();
        assert_eq!(c.num_qubits(), 17);
        assert_eq!(c.stabilizers().len(), 16);
        assert!(c.is_css());
        assert_eq!(c.brute_force_distance(), 5);
    }

    #[test]
    fn color17_face_weights_are_448() {
        let c = color_17();
        let mut weights: Vec<usize> = c.stabilizers().iter().map(|s| s.weight()).collect();
        weights.sort_unstable();
        // 7 squares + 1 octagon per Pauli type.
        assert_eq!(
            weights,
            vec![4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 8, 8]
        );
    }

    #[test]
    fn reed_muller_parameters() {
        let c = reed_muller_15();
        assert_eq!(c.num_qubits(), 15);
        assert_eq!(c.stabilizers().len(), 14);
        assert!(c.is_css());
        // Distance: min(d_X, d_Z) = min(7, 3) = 3.
        assert_eq!(c.brute_force_distance(), 3);
    }

    #[test]
    fn reed_muller_x_distance_is_seven() {
        // The Z-logical coset (flipped by X errors) has min weight 7:
        // check by sweeping only Z-type stabilizers against logical Z... the
        // full brute force handles signs; here verify the X-side logical has
        // a weight-3 representative while the all-X logical does not drop
        // below 7 when multiplied by X-type stabilizers only.
        let c = reed_muller_15();
        let x_stabs: Vec<_> = c
            .stabilizers()
            .iter()
            .filter(|s| s.iter_support().all(|(_, p)| p == crate::pauli::Pauli::X))
            .cloned()
            .collect();
        assert_eq!(x_stabs.len(), 4);
        let mut best = usize::MAX;
        for mask in 0u32..(1 << x_stabs.len()) {
            let mut op = c.logical_x()[0].clone();
            for (i, s) in x_stabs.iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    op.mul_assign(s);
                }
            }
            best = best.min(op.weight());
        }
        assert_eq!(best, 7, "X-logical min weight over X-stabilizer coset");
    }

    #[test]
    fn syndromes_distinguish_single_errors_up_to_distance() {
        use crate::pauli::PauliString;
        use std::collections::HashMap;
        // For each distance-3+ code, all weight-1 errors have distinct,
        // nonzero syndromes within their equivalence class.
        for code in [steane(), color_17(), reed_muller_15()] {
            let mut seen: HashMap<Vec<bool>, PauliString> = HashMap::new();
            for q in 0..code.num_qubits() {
                for p in [Pauli::X, Pauli::Y, Pauli::Z] {
                    let e = PauliString::from_sparse(code.num_qubits(), &[(q, p)]);
                    let syn = code.syndrome_of(&e);
                    assert!(
                        syn.iter().any(|&b| b),
                        "{}: weight-1 error {e} is undetected",
                        code.name()
                    );
                    if let Some(prev) = seen.get(&syn) {
                        // Same syndrome: difference must not be a logical.
                        let diff = prev.xor(&e);
                        assert!(
                            !code.is_logical_error(&diff),
                            "{}: errors {prev} and {e} are confusable",
                            code.name()
                        );
                    } else {
                        seen.insert(syn, e);
                    }
                }
            }
        }
    }
}
