//! The distance-`d` bit-flip repetition code.
//!
//! Not part of the paper's evaluation, but the canonical warm-up substrate:
//! its memory circuit and strip-shaped matching graph exercise the full
//! sampler → detector → decoder pipeline in a setting where exact answers
//! are computable by hand, which is how the decoder test-suites anchor
//! themselves.

use crate::circuit::Circuit;
use crate::codes::code::{typed_string, StabilizerCode};
use crate::decoder::graph::MatchingGraph;
use crate::pauli::Pauli;

/// The `[[d, 1, d]]`-against-X (distance 1 against Z) repetition code.
///
/// # Examples
///
/// ```
/// use hetarch_stab::codes::repetition_code;
/// let c = repetition_code(5);
/// assert_eq!(c.num_qubits(), 5);
/// assert_eq!(c.stabilizers().len(), 4);
/// ```
pub fn repetition_code(d: usize) -> StabilizerCode {
    assert!(d >= 2, "repetition code needs d >= 2");
    let mut stabs = Vec::new();
    for i in 0..d - 1 {
        stabs.push(typed_string(d, Pauli::Z, &[i, i + 1]));
    }
    let all: Vec<usize> = (0..d).collect();
    StabilizerCode::new(
        format!("Rep{d}"),
        d,
        1, // true distance against arbitrary noise (a single Z is logical)
        stabs,
        vec![typed_string(d, Pauli::X, &all)],
        vec![typed_string(d, Pauli::Z, &[0])],
    )
    .expect("repetition code is valid")
}

/// A `rounds`-round repetition-code memory circuit under bit-flip (`px`) and
/// measurement-flip noise, with detectors and the logical observable wired
/// like the surface-code memory.
///
/// Qubits `0..d` are data; `d..2d-1` are ancillas.
pub fn repetition_memory_circuit(d: usize, rounds: usize, px: f64, p_meas: f64) -> Circuit {
    assert!(d >= 2 && rounds >= 1);
    let n_anc = d - 1;
    let mut c = Circuit::new((d + n_anc) as u32);
    let data: Vec<u32> = (0..d as u32).collect();
    let anc: Vec<u32> = (d as u32..(d + n_anc) as u32).collect();
    let mut prev: Option<Vec<usize>> = None;
    for _ in 0..rounds {
        c.pauli_noise(
            crate::circuit::PauliErr {
                px,
                py: 0.0,
                pz: 0.0,
            },
            &data,
        );
        let left: Vec<(u32, u32)> = (0..n_anc).map(|i| (data[i], anc[i])).collect();
        let right: Vec<(u32, u32)> = (0..n_anc).map(|i| (data[i + 1], anc[i])).collect();
        c.cx(&left);
        c.cx(&right);
        let m = c.measure_reset(&anc, p_meas);
        for i in 0..n_anc {
            match &prev {
                None => {
                    c.detector(&[m[i]]);
                }
                Some(p) => {
                    c.detector(&[p[i], m[i]]);
                }
            }
        }
        prev = Some(m);
    }
    let fin = c.measure(&data, 0.0);
    let prev = prev.expect("at least one round");
    for i in 0..n_anc {
        c.detector(&[fin[i], fin[i + 1], prev[i]]);
    }
    c.observable(0, &[fin[0]]);
    c
}

/// The space-time matching graph for [`repetition_memory_circuit`].
pub fn repetition_matching_graph(d: usize, rounds: usize, px: f64, p_meas: f64) -> MatchingGraph {
    let n_anc = d - 1;
    let det_rounds = rounds + 1;
    let mut g = MatchingGraph::new(det_rounds * n_anc);
    let det = |t: usize, a: usize| (t * n_anc + a) as u32;
    for t in 0..det_rounds {
        // Space edges: data qubit i sits between ancillas i-1 and i.
        g.add_edge(det(t, 0), None, px, 1); // data 0: boundary, crosses obs
        for i in 1..d - 1 {
            g.add_edge(det(t, i - 1), Some(det(t, i)), px, 0);
        }
        g.add_edge(det(t, n_anc - 1), None, px, 0); // data d-1: boundary
    }
    for a in 0..n_anc {
        for t in 0..rounds {
            g.add_edge(det(t, a), Some(det(t + 1, a)), p_meas, 0);
        }
    }
    g
}

/// Monte-Carlo logical error rate of the repetition memory (per shot).
pub fn repetition_logical_error_rate(
    d: usize,
    rounds: usize,
    px: f64,
    p_meas: f64,
    shots: usize,
    seed: u64,
) -> f64 {
    use crate::decoder::unionfind::UnionFindDecoder;
    use crate::detector::sample_detectors;
    let circuit = repetition_memory_circuit(d, rounds, px, p_meas);
    let graph = repetition_matching_graph(d, rounds, px, p_meas);
    debug_assert_eq!(graph.num_nodes(), circuit.num_detectors());
    let decoder = UnionFindDecoder::new(&graph);
    let samples = sample_detectors(&circuit, shots, seed);
    let n_det = circuit.num_detectors();
    let mut failures = 0;
    let mut syn = vec![false; n_det];
    for shot in 0..shots {
        for (i, s) in syn.iter_mut().enumerate() {
            *s = samples.detectors.get(i, shot);
        }
        if (decoder.decode(&syn) & 1 == 1) != samples.observables.get(0, shot) {
            failures += 1;
        }
    }
    failures as f64 / shots as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::nondeterministic_detectors;

    #[test]
    fn code_parameters() {
        let c = repetition_code(7);
        assert!(c.is_css());
        // Distance against X errors is 7 (brute force over the Z-logical
        // coset is the X-side distance; overall distance is 1 via single Z).
        assert_eq!(c.brute_force_distance(), 1);
    }

    #[test]
    fn memory_circuit_is_well_formed() {
        let c = repetition_memory_circuit(5, 3, 0.01, 0.01);
        assert!(nondeterministic_detectors(&c).is_empty());
        assert_eq!(c.num_detectors(), 4 * (3 + 1));
        assert_eq!(
            repetition_matching_graph(5, 3, 0.01, 0.01).num_nodes(),
            c.num_detectors()
        );
    }

    #[test]
    fn below_threshold_scaling() {
        // The repetition code's threshold (with measurement noise) is ~10%;
        // at 2% the logical rate must fall sharply with d.
        let shots = 20_000;
        let p3 = repetition_logical_error_rate(3, 3, 0.02, 0.02, shots, 1);
        let p7 = repetition_logical_error_rate(7, 7, 0.02, 0.02, shots, 2);
        assert!(p7 < p3 / 2.0, "d=7 ({p7}) should be well below d=3 ({p3})");
    }

    #[test]
    fn noiseless_memory_is_perfect() {
        assert_eq!(repetition_logical_error_rate(5, 5, 0.0, 0.0, 500, 3), 0.0);
    }

    #[test]
    fn saturated_noise_randomizes() {
        let p = repetition_logical_error_rate(3, 2, 0.5, 0.0, 20_000, 4);
        assert!((p - 0.5).abs() < 0.05, "rate {p}");
    }
}
