//! Pauli operators and bit-packed Pauli strings.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A single-qubit Pauli operator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pauli {
    /// Identity.
    #[default]
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// (x, z) bit representation: X=(1,0), Z=(0,1), Y=(1,1).
    pub fn xz(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Inverse of [`Pauli::xz`].
    pub fn from_xz(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// True when the two single-qubit Paulis commute.
    pub fn commutes_with(self, other: Pauli) -> bool {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        // Symplectic product even <=> commute.
        !((x1 & z2) ^ (z1 & x2))
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// Error returned when parsing a Pauli string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePauliError {
    offending: char,
}

impl fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid pauli character '{}', expected one of I, X, Y, Z, +, -",
            self.offending
        )
    }
}

impl std::error::Error for ParsePauliError {}

/// A bit-packed n-qubit Pauli string with a ±1 sign.
///
/// Qubit `q` lives in bit `q % 64` of word `q / 64`. The imaginary phases
/// arising from products are tracked to the extent needed for sign-correct
/// stabilizer arithmetic (the product of two Hermitian Pauli strings that
/// commute is Hermitian; anticommuting products pick up `±i`, which this type
/// reports separately).
///
/// # Examples
///
/// ```
/// use hetarch_stab::pauli::PauliString;
///
/// let xx: PauliString = "XX".parse().unwrap();
/// let zz: PauliString = "ZZ".parse().unwrap();
/// assert!(xx.commutes_with(&zz));
/// assert_eq!(xx.weight(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PauliString {
    n: usize,
    x: Vec<u64>,
    z: Vec<u64>,
    /// True for an overall −1 sign.
    neg: bool,
}

impl PauliString {
    /// The identity on `n` qubits.
    pub fn identity(n: usize) -> Self {
        let words = n.div_ceil(64);
        PauliString {
            n,
            x: vec![0; words],
            z: vec![0; words],
            neg: false,
        }
    }

    /// Builds a string from per-qubit Paulis.
    pub fn from_paulis(paulis: &[Pauli]) -> Self {
        let mut s = PauliString::identity(paulis.len());
        for (q, p) in paulis.iter().enumerate() {
            s.set(q, *p);
        }
        s
    }

    /// Builds an n-qubit string with the given Pauli on a sparse support.
    pub fn from_sparse(n: usize, support: &[(usize, Pauli)]) -> Self {
        let mut s = PauliString::identity(n);
        for &(q, p) in support {
            assert!(q < n, "qubit {q} out of range for {n} qubits");
            s.set(q, p);
        }
        s
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The Pauli at qubit `q`.
    pub fn get(&self, q: usize) -> Pauli {
        assert!(q < self.n, "qubit {q} out of range");
        let (w, b) = (q / 64, q % 64);
        Pauli::from_xz((self.x[w] >> b) & 1 == 1, (self.z[w] >> b) & 1 == 1)
    }

    /// Sets the Pauli at qubit `q`.
    pub fn set(&mut self, q: usize, p: Pauli) {
        assert!(q < self.n, "qubit {q} out of range");
        let (w, b) = (q / 64, q % 64);
        let (x, z) = p.xz();
        self.x[w] = (self.x[w] & !(1 << b)) | ((x as u64) << b);
        self.z[w] = (self.z[w] & !(1 << b)) | ((z as u64) << b);
    }

    /// True when the sign is −1.
    pub fn is_negative(&self) -> bool {
        self.neg
    }

    /// Flips the overall sign.
    pub fn negate(&mut self) {
        self.neg = !self.neg;
    }

    /// Number of non-identity sites.
    pub fn weight(&self) -> usize {
        self.x
            .iter()
            .zip(&self.z)
            .map(|(&x, &z)| (x | z).count_ones() as usize)
            .sum()
    }

    /// True when the string is the (possibly signed) identity.
    pub fn is_identity(&self) -> bool {
        self.weight() == 0
    }

    /// True when `self` and `other` commute.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        assert_eq!(self.n, other.n, "pauli string length mismatch");
        let mut parity = 0u32;
        for w in 0..self.x.len() {
            parity ^= (self.x[w] & other.z[w]).count_ones() & 1;
            parity ^= (self.z[w] & other.x[w]).count_ones() & 1;
        }
        parity == 0
    }

    /// Multiplies `self` by `other` in place (`self ← self · other`),
    /// tracking the resulting sign.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, or if the product is non-Hermitian (the two
    /// strings anticommute), since stabilizer arithmetic never needs that
    /// case — use [`PauliString::commutes_with`] first.
    pub fn mul_assign(&mut self, other: &PauliString) {
        assert!(
            self.commutes_with(other),
            "product of anticommuting pauli strings is non-hermitian"
        );
        // Count i-phases from per-site products: each site contributes
        // i^{f(p1,p2)}; total must be 0 or 2 mod 4 (commuting case).
        let mut iphase = 0u32;
        for q in 0..self.n {
            let a = self.get(q);
            let b = other.get(q);
            iphase = (iphase + site_iphase(a, b)) % 4;
        }
        debug_assert!(
            iphase.is_multiple_of(2),
            "commuting product must have real phase"
        );
        if iphase == 2 {
            self.neg = !self.neg;
        }
        if other.neg {
            self.neg = !self.neg;
        }
        for w in 0..self.x.len() {
            self.x[w] ^= other.x[w];
            self.z[w] ^= other.z[w];
        }
    }

    /// Returns the product `self · other`.
    pub fn mul(&self, other: &PauliString) -> PauliString {
        let mut out = self.clone();
        out.mul_assign(other);
        out
    }

    /// Phase-free product (bitwise XOR of supports). Unlike
    /// [`PauliString::mul`] this never panics; use it for error/correction
    /// arithmetic where the global phase is irrelevant.
    pub fn xor(&self, other: &PauliString) -> PauliString {
        assert_eq!(self.n, other.n, "pauli string length mismatch");
        let mut out = self.clone();
        out.neg = false;
        for w in 0..out.x.len() {
            out.x[w] ^= other.x[w];
            out.z[w] ^= other.z[w];
        }
        out
    }

    /// Iterates over the non-identity support as `(qubit, Pauli)` pairs.
    pub fn iter_support(&self) -> impl Iterator<Item = (usize, Pauli)> + '_ {
        (0..self.n)
            .map(|q| (q, self.get(q)))
            .filter(|(_, p)| *p != Pauli::I)
    }

    /// X mask restricted to word `w` (for the frame simulator).
    pub fn x_word(&self, w: usize) -> u64 {
        self.x[w]
    }

    /// Z mask restricted to word `w`.
    pub fn z_word(&self, w: usize) -> u64 {
        self.z[w]
    }
}

/// i-exponent of the single-site product `a·b = i^k (a XOR b)`.
fn site_iphase(a: Pauli, b: Pauli) -> u32 {
    use Pauli::*;
    match (a, b) {
        (I, _) | (_, I) => 0,
        (X, X) | (Y, Y) | (Z, Z) => 0,
        (X, Y) | (Y, Z) | (Z, X) => 1, // XY = iZ, YZ = iX, ZX = iY
        (Y, X) | (Z, Y) | (X, Z) => 3,
    }
}

impl FromStr for PauliString {
    type Err = ParsePauliError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut neg = false;
        let mut paulis = Vec::with_capacity(s.len());
        for (i, c) in s.chars().enumerate() {
            match c {
                '+' if i == 0 => {}
                '-' if i == 0 => neg = true,
                'I' | 'i' | '_' => paulis.push(Pauli::I),
                'X' | 'x' => paulis.push(Pauli::X),
                'Y' | 'y' => paulis.push(Pauli::Y),
                'Z' | 'z' => paulis.push(Pauli::Z),
                other => return Err(ParsePauliError { offending: other }),
            }
        }
        let mut out = PauliString::from_paulis(&paulis);
        if neg {
            out.negate();
        }
        Ok(out)
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", if self.neg { "-" } else { "+" })?;
        for q in 0..self.n {
            write!(f, "{}", self.get(q))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pauli_commutation() {
        assert!(Pauli::X.commutes_with(Pauli::X));
        assert!(Pauli::X.commutes_with(Pauli::I));
        assert!(!Pauli::X.commutes_with(Pauli::Z));
        assert!(!Pauli::Y.commutes_with(Pauli::Z));
        assert!(!Pauli::X.commutes_with(Pauli::Y));
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["+XYZI", "-ZZXX", "+IIII"] {
            let p: PauliString = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("XQZ".parse::<PauliString>().is_err());
    }

    #[test]
    fn weight_counts_non_identity() {
        let p: PauliString = "XIZIY".parse().unwrap();
        assert_eq!(p.weight(), 3);
        assert_eq!(p.num_qubits(), 5);
        assert!(!p.is_identity());
        assert!(PauliString::identity(5).is_identity());
    }

    #[test]
    fn string_commutation_matches_symplectic_rule() {
        let xx: PauliString = "XX".parse().unwrap();
        let zz: PauliString = "ZZ".parse().unwrap();
        let zi: PauliString = "ZI".parse().unwrap();
        assert!(xx.commutes_with(&zz));
        assert!(!xx.commutes_with(&zi));
        let yy: PauliString = "YY".parse().unwrap();
        assert!(xx.commutes_with(&yy));
    }

    #[test]
    fn product_of_stabilizers() {
        // XX * ZZ = -YY (XZ = -iY per site: (-i)^2 = -1).
        let xx: PauliString = "XX".parse().unwrap();
        let zz: PauliString = "ZZ".parse().unwrap();
        let prod = xx.mul(&zz);
        let expect: PauliString = "-YY".parse().unwrap();
        assert_eq!(prod, expect);
    }

    #[test]
    fn product_with_identity_is_unchanged() {
        let p: PauliString = "XZY".parse().unwrap();
        let id = PauliString::identity(3);
        assert_eq!(p.mul(&id), p);
    }

    #[test]
    fn self_product_is_identity() {
        let p: PauliString = "-XZYX".parse().unwrap();
        let sq = p.mul(&p);
        assert!(sq.is_identity());
        assert!(!sq.is_negative(), "P·P = +I for Hermitian P, got {sq}");
    }

    #[test]
    #[should_panic(expected = "anticommuting")]
    fn anticommuting_product_panics() {
        let x: PauliString = "X".parse().unwrap();
        let z: PauliString = "Z".parse().unwrap();
        let _ = x.mul(&z);
    }

    #[test]
    fn sparse_construction() {
        let p = PauliString::from_sparse(70, &[(0, Pauli::X), (65, Pauli::Z)]);
        assert_eq!(p.get(0), Pauli::X);
        assert_eq!(p.get(65), Pauli::Z);
        assert_eq!(p.weight(), 2);
        let support: Vec<_> = p.iter_support().collect();
        assert_eq!(support, vec![(0, Pauli::X), (65, Pauli::Z)]);
    }

    #[test]
    fn cross_word_commutation() {
        let a = PauliString::from_sparse(130, &[(100, Pauli::X)]);
        let b = PauliString::from_sparse(130, &[(100, Pauli::Z)]);
        let c = PauliString::from_sparse(130, &[(99, Pauli::Z)]);
        assert!(!a.commutes_with(&b));
        assert!(a.commutes_with(&c));
    }
}
