//! # hetarch-stab
//!
//! Stabilizer-circuit substrate for the HetArch workspace: a CHP tableau
//! simulator, a batched Pauli-frame Monte-Carlo sampler with circuit-level
//! noise (the role Stim plays in the paper), QEC code definitions, and
//! decoders.
//!
//! # Example
//!
//! ```
//! use hetarch_stab::codes::{SurfaceMemory, SurfaceNoise};
//!
//! // A small distance-3 memory experiment with the paper's noise defaults.
//! let mem = SurfaceMemory::new(3, 3, SurfaceNoise::default());
//! let (per_shot, per_round) = mem.logical_error_rate(2_000, 42);
//! assert!(per_shot < 0.5);
//! assert!(per_round <= per_shot);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod circuit;
pub mod codes;
pub mod decoder;
pub mod detector;
pub mod frame;
pub mod pauli;
pub mod tableau;
