//! Exact minimum-weight lookup-table decoding for small codes.
//!
//! The UEC module (paper §4.2.2) evaluates codes of ≤ 30 qubits; for those,
//! a table mapping each syndrome to its minimum-weight Pauli correction is
//! both exact and fast. Tables are built breadth-first in error weight, so
//! the first correction recorded for a syndrome is guaranteed minimal.

use std::collections::HashMap;

use crate::codes::StabilizerCode;
use crate::pauli::{Pauli, PauliString};

/// A minimum-weight lookup decoder for one [`StabilizerCode`].
///
/// # Examples
///
/// ```
/// use hetarch_stab::codes::steane;
/// use hetarch_stab::decoder::lookup::LookupDecoder;
/// use hetarch_stab::pauli::{Pauli, PauliString};
///
/// let code = steane();
/// let decoder = LookupDecoder::new(&code, 2);
/// let err = PauliString::from_sparse(7, &[(3, Pauli::X)]);
/// let syndrome = code.syndrome_of(&err);
/// let correction = decoder.decode(&syndrome);
/// // Correction restores the codespace without a logical flip.
/// let residual = err.xor(&correction);
/// assert!(code.in_normalizer(&residual));
/// assert!(!code.is_logical_error(&residual));
/// ```
#[derive(Clone, Debug)]
pub struct LookupDecoder {
    num_qubits: usize,
    num_stabilizers: usize,
    table: HashMap<u64, PauliString>,
    max_weight: usize,
}

impl LookupDecoder {
    /// Builds a table over all errors of weight ≤ `max_weight`.
    ///
    /// `max_weight = ⌊(d−1)/2⌋` suffices for correcting below distance;
    /// larger values fill more of the syndrome space (better behaviour above
    /// threshold) at exponential build cost.
    ///
    /// # Panics
    ///
    /// Panics if the code has more than 63 stabilizer generators.
    pub fn new(code: &StabilizerCode, max_weight: usize) -> Self {
        let n = code.num_qubits();
        let r = code.stabilizers().len();
        assert!(r < 64, "syndrome must fit in 64 bits");
        let mut table: HashMap<u64, PauliString> = HashMap::new();
        table.insert(0, PauliString::identity(n));
        let mut frontier: Vec<PauliString> = vec![PauliString::identity(n)];
        for _w in 1..=max_weight {
            let mut next = Vec::new();
            for base in &frontier {
                // Extend support beyond the last touched qubit to enumerate
                // each support set exactly once.
                let start = base.iter_support().last().map(|(q, _)| q + 1).unwrap_or(0);
                for q in start..n {
                    for p in [Pauli::X, Pauli::Y, Pauli::Z] {
                        let mut e = base.clone();
                        e.set(q, p);
                        let syn = syndrome_bits(code, &e);
                        table.entry(syn).or_insert_with(|| e.clone());
                        next.push(e);
                    }
                }
            }
            frontier = next;
        }
        LookupDecoder {
            num_qubits: n,
            num_stabilizers: r,
            table,
            max_weight,
        }
    }

    /// Number of syndromes with a recorded correction.
    pub fn coverage(&self) -> usize {
        self.table.len()
    }

    /// The weight cap used when building the table.
    pub fn max_weight(&self) -> usize {
        self.max_weight
    }

    /// Decodes a syndrome to a minimum-weight correction. Unknown syndromes
    /// (weight above the table cap) return the identity, i.e. "detected but
    /// uncorrected".
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length is wrong.
    pub fn decode(&self, syndrome: &[bool]) -> PauliString {
        assert_eq!(
            syndrome.len(),
            self.num_stabilizers,
            "syndrome length mismatch"
        );
        let bits = syndrome
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i));
        self.decode_bits(bits)
    }

    /// Decodes a syndrome given as packed bits.
    ///
    /// This is the hot entry point: the UEC shard loop extracts packed
    /// syndrome words straight from its [`crate::bits::BitTable`] and
    /// never materialises a `&[bool]` per shot, mirroring the sparse
    /// extraction discipline of the union-find batch path (DESIGN.md §5k).
    #[inline]
    pub fn decode_bits(&self, bits: u64) -> PauliString {
        self.table
            .get(&bits)
            .cloned()
            .unwrap_or_else(|| PauliString::identity(self.num_qubits))
    }
}

fn syndrome_bits(code: &StabilizerCode, error: &PauliString) -> u64 {
    code.stabilizers()
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, s)| {
            acc | ((!s.commutes_with(error) as u64) << i)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::{color_17, reed_muller_15, steane};

    #[test]
    fn all_single_errors_corrected_exactly() {
        for code in [steane(), color_17(), reed_muller_15()] {
            let dec = LookupDecoder::new(&code, 1);
            for q in 0..code.num_qubits() {
                for p in [Pauli::X, Pauli::Y, Pauli::Z] {
                    let e = PauliString::from_sparse(code.num_qubits(), &[(q, p)]);
                    let c = dec.decode(&code.syndrome_of(&e));
                    let residual = e.xor(&c);
                    assert!(code.in_normalizer(&residual), "{}: {e}", code.name());
                    assert!(
                        !code.is_logical_error(&residual),
                        "{}: single error {e} miscorrected",
                        code.name()
                    );
                }
            }
        }
    }

    #[test]
    fn color17_corrects_all_weight_two_errors() {
        let code = color_17();
        let dec = LookupDecoder::new(&code, 2);
        // Distance 5 => every weight-2 error must decode without logical
        // flip. Sample the full set.
        for q1 in 0..17 {
            for q2 in (q1 + 1)..17 {
                for p1 in [Pauli::X, Pauli::Z] {
                    for p2 in [Pauli::X, Pauli::Z] {
                        let e = PauliString::from_sparse(17, &[(q1, p1), (q2, p2)]);
                        let c = dec.decode(&code.syndrome_of(&e));
                        let residual = e.xor(&c);
                        assert!(code.in_normalizer(&residual));
                        assert!(
                            !code.is_logical_error(&residual),
                            "weight-2 error {e} miscorrected"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn steane_weight_two_errors_are_detected() {
        // Distance 3: weight-2 errors may be miscorrected but never produce
        // an *undetected* logical error (their syndrome is nonzero).
        let code = steane();
        for q1 in 0..7 {
            for q2 in (q1 + 1)..7 {
                let e = PauliString::from_sparse(7, &[(q1, Pauli::X), (q2, Pauli::X)]);
                assert!(!code.in_normalizer(&e));
            }
        }
    }

    #[test]
    fn unknown_syndrome_returns_identity() {
        let code = steane();
        let dec = LookupDecoder::new(&code, 0); // only the trivial entry
        let e = PauliString::from_sparse(7, &[(0, Pauli::X)]);
        let c = dec.decode(&code.syndrome_of(&e));
        assert!(c.is_identity());
    }

    #[test]
    fn coverage_grows_with_weight() {
        let code = steane();
        let c1 = LookupDecoder::new(&code, 1).coverage();
        let c2 = LookupDecoder::new(&code, 2).coverage();
        assert!(c2 > c1);
        assert_eq!(LookupDecoder::new(&code, 0).coverage(), 1);
        // Steane: weight ≤ 1 gives 1 + 21 = 22 syndromes, all distinct.
        assert_eq!(c1, 22);
    }
}
