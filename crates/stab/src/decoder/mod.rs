//! Decoders: space-time matching graphs, the union-find decoder for surface
//! codes, and exact lookup-table decoding for small codes.

pub mod graph;
pub mod greedy;
pub mod lookup;
pub mod unionfind;

pub use graph::{CsrAdjacency, MatchingGraph};
pub use greedy::GreedyMatchingDecoder;
pub use lookup::LookupDecoder;
pub use unionfind::{DecoderScratch, UnionFindDecoder};
